//! Microcontroller target descriptions.

use serde::{Deserialize, Serialize};

/// A deployment target: clock, memories, and the effective int8 MAC
/// throughput of its NN kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McuTarget {
    /// Human-readable part name.
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// Flash size in bytes.
    pub flash_bytes: usize,
    /// RAM size in bytes.
    pub ram_bytes: usize,
    /// Effective int8 multiply–accumulates per core cycle, *measured
    /// end-to-end* over CMSIS-NN-style kernels (loads, requantization
    /// and loop control included). The Cortex-M7 dual-issue SMLAD peak
    /// is 2.0; real kernels on conv/dense mixes average far lower.
    pub macs_per_cycle: f64,
    /// Fixed per-layer overhead in cycles (descriptor fetch, arena
    /// bookkeeping, im2col setup).
    pub layer_overhead_cycles: u64,
    /// Fixed per-inference overhead in cycles (invoke, I/O quantize).
    pub invoke_overhead_cycles: u64,
    /// Flash reserved by application code + NN runtime (not available
    /// for weights).
    pub runtime_flash_bytes: usize,
    /// RAM reserved by stack, runtime and sensor buffers (not available
    /// for the activation arena).
    pub runtime_ram_bytes: usize,
}

impl McuTarget {
    /// The paper's board: STM32F722RET6, Cortex-M7 @ 216 MHz, 256 KiB
    /// flash and RAM.
    ///
    /// `macs_per_cycle` (0.11) and the RAM/flash runtime reservations
    /// are calibrated so the paper's own 400 ms CNN reproduces its
    /// reported envelope (67.03 KiB model, 16.87 KiB RAM, ≈4 ms
    /// inference); see DESIGN.md for the calibration note.
    pub fn stm32f722() -> Self {
        Self {
            name: "STM32F722RET6",
            clock_hz: 216_000_000,
            flash_bytes: 256 * 1024,
            ram_bytes: 256 * 1024,
            macs_per_cycle: 0.11,
            layer_overhead_cycles: 6_000,
            invoke_overhead_cycles: 40_000,
            runtime_flash_bytes: 96 * 1024,
            runtime_ram_bytes: 12 * 1024,
        }
    }

    /// A smaller Cortex-M4 target (e.g. STM32L4), for what-if analyses.
    pub fn stm32l432() -> Self {
        Self {
            name: "STM32L432KC",
            clock_hz: 80_000_000,
            flash_bytes: 256 * 1024,
            ram_bytes: 64 * 1024,
            macs_per_cycle: 0.07,
            layer_overhead_cycles: 6_000,
            invoke_overhead_cycles: 40_000,
            runtime_flash_bytes: 80 * 1024,
            runtime_ram_bytes: 10 * 1024,
        }
    }

    /// Flash available for the model itself.
    pub fn model_flash_budget(&self) -> usize {
        self.flash_bytes.saturating_sub(self.runtime_flash_bytes)
    }

    /// RAM available for the activation arena.
    pub fn model_ram_budget(&self) -> usize {
        self.ram_bytes.saturating_sub(self.runtime_ram_bytes)
    }

    /// Converts a cycle count to milliseconds on this target.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64 * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stm32f722_matches_datasheet_basics() {
        let t = McuTarget::stm32f722();
        assert_eq!(t.clock_hz, 216_000_000);
        assert_eq!(t.flash_bytes, 262_144);
        assert_eq!(t.ram_bytes, 262_144);
        assert!(t.macs_per_cycle > 0.0 && t.macs_per_cycle <= 2.0);
    }

    #[test]
    fn budgets_subtract_runtime() {
        let t = McuTarget::stm32f722();
        assert!(t.model_flash_budget() < t.flash_bytes);
        assert!(t.model_ram_budget() < t.ram_bytes);
        assert!(t.model_flash_budget() > 100 * 1024);
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let t = McuTarget::stm32f722();
        assert!((t.cycles_to_ms(216_000) - 1.0).abs() < 1e-9);
        assert_eq!(t.cycles_to_ms(0), 0.0);
    }
}
