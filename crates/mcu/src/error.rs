use std::error::Error;
use std::fmt;

/// Errors produced while modelling a deployment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum McuError {
    /// The model does not fit in the target's flash.
    FlashOverflow {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
    /// The model's working set does not fit in the target's RAM.
    RamOverflow {
        /// Bytes required.
        required: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for McuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McuError::FlashOverflow {
                required,
                available,
            } => write!(
                f,
                "model needs {required} bytes of flash but only {available} are available"
            ),
            McuError::RamOverflow {
                required,
                available,
            } => write!(
                f,
                "model needs {required} bytes of ram but only {available} are available"
            ),
        }
    }
}

impl Error for McuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<McuError>();
        let e = McuError::FlashOverflow {
            required: 300_000,
            available: 262_144,
        };
        assert!(e.to_string().contains("300000"));
    }
}
