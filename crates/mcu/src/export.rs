//! C-array export of the quantized model (the artifact that gets linked
//! into the firmware image).

use prefall_nn::quant::QuantizedNetwork;
use std::fmt::Write as _;

/// Renders the quantized weight blob as a C header:
/// a `const uint8_t` array plus length and alignment attributes.
pub fn to_c_header(net: &QuantizedNetwork, symbol: &str) -> String {
    let blob = net.weight_blob();
    let guard: String = symbol
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_uppercase()
            } else {
                '_'
            }
        })
        .collect();
    let mut out = String::with_capacity(blob.len() * 6 + 512);
    let _ = writeln!(out, "/* Auto-generated quantized model blob. */");
    let _ = writeln!(out, "#ifndef {guard}_H");
    let _ = writeln!(out, "#define {guard}_H");
    let _ = writeln!(out, "#include <stdint.h>");
    let _ = writeln!(out, "#define {guard}_LEN {}u", blob.len());
    let _ = writeln!(
        out,
        "__attribute__((aligned(8))) static const uint8_t {symbol}[{guard}_LEN] = {{"
    );
    for chunk in blob.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|b| format!("0x{b:02x}")).collect();
        let _ = writeln!(out, "    {},", row.join(", "));
    }
    let _ = writeln!(out, "}};");
    let _ = writeln!(out, "#endif /* {guard}_H */");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_nn::network::Network;

    fn tiny_quantized() -> QuantizedNetwork {
        let mut net = Network::builder(vec![8])
            .dense(4)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(2);
        let calib: Vec<Vec<f32>> = (0..8)
            .map(|i| (0..8).map(|j| ((i + j) % 5) as f32 / 2.0 - 1.0).collect())
            .collect();
        QuantizedNetwork::from_network(&mut net, &calib).unwrap()
    }

    #[test]
    fn header_contains_blob_and_guards() {
        let q = tiny_quantized();
        let h = to_c_header(&q, "prefall_model");
        assert!(h.contains("#ifndef PREFALL_MODEL_H"));
        assert!(h.contains("static const uint8_t prefall_model["));
        assert!(h.contains(&format!("PREFALL_MODEL_LEN {}u", q.weight_blob().len())));
        assert!(h.trim_end().ends_with("#endif /* PREFALL_MODEL_H */"));
    }

    #[test]
    fn blob_length_matches_weight_accounting() {
        let q = tiny_quantized();
        // weights int8 (8·4 + 4·1) + biases i32 (4 + 1) · 4 bytes.
        assert_eq!(q.weight_blob().len(), 36 + 20);
        assert_eq!(q.weight_blob().len(), q.weight_bytes());
    }

    #[test]
    fn symbol_sanitisation() {
        let q = tiny_quantized();
        let h = to_c_header(&q, "my-model.v2");
        assert!(h.contains("#ifndef MY_MODEL_V2_H"));
    }
}
