//! Fitting a quantized network onto a target: memory budgeting and the
//! calibrated latency model (§IV-C of the paper).

use crate::target::McuTarget;
use crate::McuError;
use prefall_nn::quant::QuantizedNetwork;
use serde::{Deserialize, Serialize};

/// Fixed scratch the inference engine keeps per model (im2col strip,
/// requant tables), bytes.
const INFERENCE_SCRATCH_BYTES: usize = 2048;

/// Calibrated fixed cost of the pre-model pipeline per segment: data
/// marshaling, unit conversion and feature assembly in the firmware
/// (the dominant share of the paper's reported "3 ms sensor data fusion
/// phase"), in cycles.
const PREPROCESS_BASE_CYCLES: u64 = 520_000;

/// Cycles per biquad section per sample (Direct Form II on the M7 FPU).
const CYCLES_PER_BIQUAD: u64 = 24;

/// Cycles per sample of complementary-filter fusion (two `atan2f`, one
/// `sqrtf`, blend arithmetic).
const CYCLES_PER_FUSION_SAMPLE: u64 = 320;

/// The outcome of fitting a model onto a target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    /// The target the model was fitted to.
    pub target_name: String,
    /// Model flash footprint in bytes (weights + quantization metadata +
    /// graph structure) — the paper reports 67.03 KiB.
    pub model_flash_bytes: usize,
    /// Total RAM usage in bytes: runtime working memory + activation
    /// arena + input staging + scratch — the paper reports 16.87 KiB.
    pub ram_bytes: usize,
    /// Nominal single-inference latency in ms — the paper reports 4 ms.
    pub inference_ms: f64,
    /// Worst-case jitter around the nominal latency in ms (interrupt
    /// load, bus contention) — the paper reports ± 3 ms.
    pub inference_jitter_ms: f64,
    /// Pre-model pipeline (filtering + sensor fusion + segment
    /// assembly) latency in ms — the paper reports 3 ms.
    pub fusion_ms: f64,
    /// int8 MACs per inference.
    pub macs: usize,
}

impl Deployment {
    /// End-to-end latency budget per segment: fusion + nominal
    /// inference.
    pub fn total_latency_ms(&self) -> f64 {
        self.fusion_ms + self.inference_ms
    }

    /// Whether the detector meets a real-time deadline of one segment
    /// hop (e.g. 200 ms for the paper's 400 ms / 50 % configuration).
    pub fn meets_deadline(&self, hop_ms: f64) -> bool {
        self.total_latency_ms() + self.inference_jitter_ms <= hop_ms
    }
}

impl std::fmt::Display for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "deployment on {}", self.target_name)?;
        writeln!(
            f,
            "  model flash : {:8.2} KiB",
            self.model_flash_bytes as f64 / 1024.0
        )?;
        writeln!(
            f,
            "  total ram   : {:8.2} KiB",
            self.ram_bytes as f64 / 1024.0
        )?;
        writeln!(
            f,
            "  inference   : {:8.2} ms (± {:.2} ms), {} MACs",
            self.inference_ms, self.inference_jitter_ms, self.macs
        )?;
        write!(f, "  fusion      : {:8.2} ms", self.fusion_ms)
    }
}

/// Fits a quantized network onto a target.
///
/// `segment_samples` is the window length in samples (drives the
/// pre-model pipeline cost); `channels` the number of filtered channels.
///
/// # Errors
///
/// Returns [`McuError::FlashOverflow`] / [`McuError::RamOverflow`] when
/// the model does not fit the target.
pub fn deploy(
    net: &QuantizedNetwork,
    target: &McuTarget,
    segment_samples: usize,
    channels: usize,
) -> Result<Deployment, McuError> {
    let model_flash = net.flash_bytes();
    if model_flash > target.model_flash_budget() {
        return Err(McuError::FlashOverflow {
            required: model_flash + target.runtime_flash_bytes,
            available: target.flash_bytes,
        });
    }

    let arena = net.activation_arena_bytes();
    let staging = segment_samples * channels * 4; // f32 input window
    let ram = target.runtime_ram_bytes + arena + staging + INFERENCE_SCRATCH_BYTES;
    if ram > target.ram_bytes {
        return Err(McuError::RamOverflow {
            required: ram,
            available: target.ram_bytes,
        });
    }

    // Latency model: calibrated effective MAC rate + per-layer and
    // per-invoke overheads.
    let mac_cycles = (net.macs() as f64 / target.macs_per_cycle) as u64;
    let layer_cycles = target.layer_overhead_cycles * net.layers().len() as u64;
    let inference_cycles = mac_cycles + layer_cycles + target.invoke_overhead_cycles;
    let inference_ms = target.cycles_to_ms(inference_cycles);

    // Pre-model pipeline: 4th-order Butterworth (2 biquads) on every
    // channel, complementary-filter fusion, fixed marshaling cost.
    let filter_cycles = segment_samples as u64 * channels as u64 * 2 * CYCLES_PER_BIQUAD;
    let fusion_cycles = segment_samples as u64 * CYCLES_PER_FUSION_SAMPLE;
    let fusion_ms = target.cycles_to_ms(PREPROCESS_BASE_CYCLES + filter_cycles + fusion_cycles);

    Ok(Deployment {
        target_name: target.name.to_string(),
        model_flash_bytes: model_flash,
        ram_bytes: ram,
        inference_ms,
        // The paper observes ±3 ms on a ~4 ms nominal: model jitter as
        // 75 % of nominal (interrupt/DMA contention on a busy firmware).
        inference_jitter_ms: inference_ms * 0.75,
        fusion_ms,
        macs: net.macs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_nn::network::Network;
    use prefall_nn::quant::QuantizedNetwork;

    fn calib(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 7) % 17) as f32 / 8.0 - 1.0)
                    .collect()
            })
            .collect()
    }

    /// The paper's 400 ms architecture (18 filters, kernel 5, pool 2).
    fn paper_cnn() -> QuantizedNetwork {
        let branch = |sel: Vec<usize>| {
            (
                sel,
                Network::builder(vec![40, 3])
                    .conv1d(18, 5)
                    .unwrap()
                    .relu()
                    .maxpool(2)
                    .unwrap(),
            )
        };
        let mut net = Network::builder(vec![40, 9])
            .split(vec![
                branch(vec![0, 1, 2]),
                branch(vec![3, 4, 5]),
                branch(vec![6, 7, 8]),
            ])
            .unwrap()
            .dense(64)
            .unwrap()
            .relu()
            .dense(32)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(3);
        QuantizedNetwork::from_network(&mut net, &calib(32, 360)).unwrap()
    }

    #[test]
    fn paper_model_lands_in_reported_envelope() {
        let q = paper_cnn();
        let d = deploy(&q, &McuTarget::stm32f722(), 40, 9).unwrap();
        let flash_kib = d.model_flash_bytes as f64 / 1024.0;
        let ram_kib = d.ram_bytes as f64 / 1024.0;
        // Paper: 67.03 KiB flash, 16.87 KiB RAM, 4 ms ± 3 ms + 3 ms.
        assert!((60.0..=74.0).contains(&flash_kib), "flash {flash_kib} KiB");
        assert!((14.0..=20.0).contains(&ram_kib), "ram {ram_kib} KiB");
        assert!(
            (3.0..=5.5).contains(&d.inference_ms),
            "inference {} ms",
            d.inference_ms
        );
        assert!(
            (2.0..=4.0).contains(&d.fusion_ms),
            "fusion {} ms",
            d.fusion_ms
        );
    }

    #[test]
    fn meets_the_segment_hop_deadline() {
        let q = paper_cnn();
        let d = deploy(&q, &McuTarget::stm32f722(), 40, 9).unwrap();
        // 400 ms window at 50% overlap → a new segment every 200 ms.
        assert!(d.meets_deadline(200.0));
        assert!(!d.meets_deadline(5.0));
    }

    #[test]
    fn oversized_model_rejected() {
        // A dense monster that cannot fit 256 KiB flash.
        let mut net = Network::builder(vec![400])
            .dense(512)
            .unwrap()
            .relu()
            .dense(1)
            .unwrap()
            .build(1);
        let q = QuantizedNetwork::from_network(&mut net, &calib(8, 400)).unwrap();
        let err = deploy(&q, &McuTarget::stm32f722(), 40, 9).unwrap_err();
        assert!(matches!(err, McuError::FlashOverflow { .. }), "{err:?}");
    }

    #[test]
    fn smaller_windows_are_faster_and_smaller() {
        let branch_t = |t: usize, sel: Vec<usize>| {
            (
                sel,
                Network::builder(vec![t, 3])
                    .conv1d(18, 5)
                    .unwrap()
                    .relu()
                    .maxpool(2)
                    .unwrap(),
            )
        };
        let build = |t: usize| {
            let mut net = Network::builder(vec![t, 9])
                .split(vec![
                    branch_t(t, vec![0, 1, 2]),
                    branch_t(t, vec![3, 4, 5]),
                    branch_t(t, vec![6, 7, 8]),
                ])
                .unwrap()
                .dense(64)
                .unwrap()
                .relu()
                .dense(32)
                .unwrap()
                .relu()
                .dense(1)
                .unwrap()
                .build(3);
            QuantizedNetwork::from_network(&mut net, &calib(16, t * 9)).unwrap()
        };
        let q20 = build(20);
        let q40 = build(40);
        let t = McuTarget::stm32f722();
        let d20 = deploy(&q20, &t, 20, 9).unwrap();
        let d40 = deploy(&q40, &t, 40, 9).unwrap();
        assert!(d20.model_flash_bytes < d40.model_flash_bytes);
        assert!(d20.inference_ms < d40.inference_ms);
        assert!(d20.fusion_ms < d40.fusion_ms);
    }

    #[test]
    fn display_contains_key_numbers() {
        let q = paper_cnn();
        let d = deploy(&q, &McuTarget::stm32f722(), 40, 9).unwrap();
        let s = d.to_string();
        assert!(s.contains("STM32F722"));
        assert!(s.contains("KiB"));
        assert!(s.contains("ms"));
    }
}
