//! STM32F722 / Cortex-M7 deployment model.
//!
//! The paper deploys its quantized CNN on a custom board with an
//! STM32F722RET6 (ARM Cortex-M7 @ 216 MHz, 256 KiB flash + 256 KiB RAM)
//! and reports: model 67.03 KiB, RAM 16.87 KiB, inference 4 ms ± 3 ms
//! plus 3 ms of sensor fusion per segment. We cannot run on silicon, so
//! this crate models the deployment instead:
//!
//! * [`target`] — the microcontroller description (clock, memories,
//!   MAC throughput);
//! * [`deploy`] — fits a [`prefall_nn::quant::QuantizedNetwork`] onto a
//!   target: flash/RAM budgeting and a calibrated cycle model for
//!   inference latency;
//! * [`export`] — emits the quantized weights as a C array, the format
//!   actually flashed onto such boards.
//!
//! The cycle model is deliberately simple and *calibrated*: int8 MACs
//! retire at a configurable rate (Cortex-M7 dual-issues `SMLAD`, but
//! real CMSIS-NN kernels average far below the theoretical 2 MAC/cycle
//! once load/store, requantization and loop overhead are in), plus
//! per-layer fixed overhead. The default efficiency constant is chosen
//! so the paper's own model lands at its reported ~4 ms; *relative*
//! latencies across architectures and window sizes then follow real
//! MAC/byte counts.

#![deny(missing_docs)]

pub mod deploy;
pub mod export;
pub mod target;

mod error;

pub use error::McuError;
