//! Butterworth low-pass filter design.
//!
//! The paper pre-processes every inertial channel with a **4th-order
//! Butterworth low-pass filter at 5 Hz** (100 Hz sampling). This module
//! designs such filters for arbitrary order and cutoff using the classic
//! analog-prototype + bilinear-transform procedure and factors the result
//! into second-order sections for robust execution.
//!
//! Design procedure:
//!
//! 1. Place the `n` analog Butterworth poles uniformly on the left half of
//!    a circle of radius `ω_c` (the *prewarped* cutoff
//!    `ω_c = 2·fs·tan(π·fc/fs)`).
//! 2. Pair complex-conjugate poles into analog second-order sections with
//!    unity DC gain (odd orders get one first-order section).
//! 3. Apply the bilinear transform `s = 2·fs·(1−z⁻¹)/(1+z⁻¹)` to each
//!    section.

use crate::biquad::{BiquadCoeffs, SosFilter};
use crate::complex::Complex;
use crate::DspError;
use serde::{Deserialize, Serialize};

/// A designed Butterworth low-pass filter, represented as second-order
/// sections.
///
/// # Example
///
/// ```
/// use prefall_dsp::butterworth::Butterworth;
///
/// # fn main() -> Result<(), prefall_dsp::DspError> {
/// let design = Butterworth::lowpass(4, 5.0, 100.0)?;
/// // Butterworth magnitude is 1/√2 at the cutoff frequency.
/// let filter = design.into_filter();
/// let mag = filter.magnitude_at(5.0, 100.0);
/// assert!((mag - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Butterworth {
    order: usize,
    cutoff_hz: f64,
    sample_rate_hz: f64,
    sections: Vec<BiquadCoeffs>,
}

impl Butterworth {
    /// Designs a low-pass Butterworth filter.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidOrder`] for `order == 0`,
    /// [`DspError::InvalidSampleRate`] for non-positive or non-finite
    /// rates, and [`DspError::InvalidCutoff`] unless
    /// `0 < cutoff_hz < sample_rate_hz / 2`.
    pub fn lowpass(order: usize, cutoff_hz: f64, sample_rate_hz: f64) -> Result<Self, DspError> {
        if order == 0 {
            return Err(DspError::InvalidOrder { order });
        }
        if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
            return Err(DspError::InvalidSampleRate { sample_rate_hz });
        }
        if !(cutoff_hz.is_finite() && cutoff_hz > 0.0 && cutoff_hz < sample_rate_hz / 2.0) {
            return Err(DspError::InvalidCutoff {
                cutoff_hz,
                sample_rate_hz,
            });
        }

        let fs = sample_rate_hz;
        let k = 2.0 * fs; // bilinear-transform constant
                          // Prewarped analog cutoff so the digital filter hits -3 dB exactly
                          // at `cutoff_hz`.
        let wc = k * (std::f64::consts::PI * cutoff_hz / fs).tan();

        let mut sections = Vec::with_capacity(order.div_ceil(2));

        // Conjugate pole pairs. Pole angles for a Butterworth prototype:
        // θ_m = π/2 + π(2m+1)/(2n), m = 0..n/2 (upper-half-plane poles).
        let n = order as f64;
        for m in 0..order / 2 {
            let theta = std::f64::consts::FRAC_PI_2
                + std::f64::consts::PI * (2.0 * m as f64 + 1.0) / (2.0 * n);
            let pole = Complex::cis(theta).scale(wc);
            // Analog section: H(s) = wc² / (s² + a1·s + a0),
            // a1 = -2·Re(p), a0 = |p|² = wc².
            let a1 = -2.0 * pole.re;
            let a0 = pole.norm_sqr();
            sections.push(bilinear_second_order(wc * wc, a1, a0, k));
        }

        // Odd order: one real pole at s = -wc.
        if order % 2 == 1 {
            sections.push(bilinear_first_order(wc, k));
        }

        Ok(Self {
            order,
            cutoff_hz,
            sample_rate_hz,
            sections,
        })
    }

    /// Filter order.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Cutoff frequency in Hz (-3 dB point).
    pub fn cutoff_hz(&self) -> f64 {
        self.cutoff_hz
    }

    /// Sampling rate in Hz the filter was designed for.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The second-order-section coefficients, in processing order.
    pub fn sections(&self) -> &[BiquadCoeffs] {
        &self.sections
    }

    /// Consumes the design, producing a streaming [`SosFilter`].
    pub fn into_filter(self) -> SosFilter {
        SosFilter::new(self.sections)
    }

    /// Builds a streaming filter without consuming the design.
    pub fn to_filter(&self) -> SosFilter {
        SosFilter::new(self.sections.iter().copied())
    }
}

/// Bilinear transform of `H(s) = num / (s² + a1·s + a0)`.
fn bilinear_second_order(num: f64, a1: f64, a0: f64, k: f64) -> BiquadCoeffs {
    let d0 = k * k + a1 * k + a0;
    BiquadCoeffs {
        b0: num / d0,
        b1: 2.0 * num / d0,
        b2: num / d0,
        a1: (2.0 * a0 - 2.0 * k * k) / d0,
        a2: (k * k - a1 * k + a0) / d0,
    }
}

/// Bilinear transform of the first-order section `H(s) = wc / (s + wc)`,
/// expressed as a degenerate biquad.
fn bilinear_first_order(wc: f64, k: f64) -> BiquadCoeffs {
    let d0 = k + wc;
    BiquadCoeffs {
        b0: wc / d0,
        b1: wc / d0,
        b2: 0.0,
        a1: (wc - k) / d0,
        a2: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 100.0;

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            Butterworth::lowpass(0, 5.0, FS),
            Err(DspError::InvalidOrder { .. })
        ));
        assert!(matches!(
            Butterworth::lowpass(4, 0.0, FS),
            Err(DspError::InvalidCutoff { .. })
        ));
        assert!(matches!(
            Butterworth::lowpass(4, 50.0, FS),
            Err(DspError::InvalidCutoff { .. })
        ));
        assert!(matches!(
            Butterworth::lowpass(4, 60.0, FS),
            Err(DspError::InvalidCutoff { .. })
        ));
        assert!(matches!(
            Butterworth::lowpass(4, 5.0, 0.0),
            Err(DspError::InvalidSampleRate { .. })
        ));
        assert!(matches!(
            Butterworth::lowpass(4, 5.0, f64::NAN),
            Err(DspError::InvalidSampleRate { .. })
        ));
    }

    #[test]
    fn section_count_matches_order() {
        for order in 1..=8 {
            let d = Butterworth::lowpass(order, 5.0, FS).unwrap();
            assert_eq!(d.sections().len(), order.div_ceil(2), "order {order}");
        }
    }

    #[test]
    fn dc_gain_is_unity() {
        for order in 1..=8 {
            let f = Butterworth::lowpass(order, 5.0, FS).unwrap().into_filter();
            let g = f.magnitude_at(0.0, FS);
            assert!((g - 1.0).abs() < 1e-12, "order {order}: dc gain {g}");
        }
    }

    #[test]
    fn minus_three_db_at_cutoff() {
        for order in 1..=8 {
            for cutoff in [2.0, 5.0, 10.0, 20.0] {
                let f = Butterworth::lowpass(order, cutoff, FS)
                    .unwrap()
                    .into_filter();
                let g = f.magnitude_at(cutoff, FS);
                assert!(
                    (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9,
                    "order {order} cutoff {cutoff}: gain {g}"
                );
            }
        }
    }

    #[test]
    fn magnitude_is_monotonically_decreasing() {
        let f = Butterworth::lowpass(4, 5.0, FS).unwrap().into_filter();
        let mut prev = f.magnitude_at(0.0, FS);
        for i in 1..50 {
            let g = f.magnitude_at(i as f64, FS);
            assert!(g <= prev + 1e-12, "not monotone at {i} Hz: {g} > {prev}");
            prev = g;
        }
    }

    #[test]
    fn rolloff_rate_matches_order() {
        // An n-th order Butterworth rolls off ~6n dB/octave far above the
        // cutoff. Compare the gain at 20 Hz and 40 Hz for the 4th-order
        // 5 Hz design: expect close to 24 dB of additional attenuation
        // (the bilinear transform compresses toward Nyquist, so allow
        // extra attenuation but not less).
        let f = Butterworth::lowpass(4, 5.0, 400.0).unwrap().into_filter();
        let g20 = f.magnitude_at(20.0, 400.0);
        let g40 = f.magnitude_at(40.0, 400.0);
        let db = 20.0 * (g20 / g40).log10();
        assert!(db > 22.0 && db < 27.0, "rolloff {db} dB/octave");
    }

    #[test]
    fn all_sections_stable() {
        for order in 1..=10 {
            for cutoff in [0.5, 5.0, 30.0, 49.0] {
                let f = Butterworth::lowpass(order, cutoff, FS)
                    .unwrap()
                    .into_filter();
                assert!(f.is_stable(), "order {order}, cutoff {cutoff}");
            }
        }
    }

    #[test]
    fn impulse_response_decays() {
        let mut f = Butterworth::lowpass(4, 5.0, FS).unwrap().into_filter();
        let mut impulse = vec![0.0f32; 600];
        impulse[0] = 1.0;
        let h = f.process_slice(&impulse);
        let head: f32 = h[..300].iter().map(|x| x.abs()).sum();
        let tail: f32 = h[300..].iter().map(|x| x.abs()).sum();
        assert!(tail < 1e-6 * head.max(1e-12), "tail energy {tail}");
    }

    #[test]
    fn step_response_settles_to_one() {
        let mut f = Butterworth::lowpass(4, 5.0, FS).unwrap().into_filter();
        let step = vec![1.0f32; 500];
        let y = f.process_slice(&step);
        assert!((y[499] - 1.0).abs() < 1e-4, "settled to {}", y[499]);
    }

    #[test]
    fn removes_high_frequency_noise_preserves_low() {
        // 1 Hz signal + 30 Hz noise; the 5 Hz LP must keep the former and
        // kill the latter.
        let mut f = Butterworth::lowpass(4, 5.0, FS).unwrap().into_filter();
        let xs: Vec<f32> = (0..1000)
            .map(|i| {
                let t = i as f32 / FS as f32;
                (2.0 * std::f32::consts::PI * 1.0 * t).sin()
                    + 0.5 * (2.0 * std::f32::consts::PI * 30.0 * t).sin()
            })
            .collect();
        let ys = f.process_slice(&xs);
        // Compare against the clean 1 Hz component, allowing the filter's
        // small passband delay (~ a few samples at 1 Hz).
        let clean: Vec<f32> = (0..1000)
            .map(|i| (2.0 * std::f32::consts::PI * 1.0 * (i as f32 / FS as f32)).sin())
            .collect();
        let err_rms = {
            let mut best = f32::MAX;
            for delay in 0..12 {
                let e: f32 = (200..900)
                    .map(|i| (ys[i] - clean[i - delay]).powi(2))
                    .sum::<f32>()
                    / 700.0;
                best = best.min(e.sqrt());
            }
            best
        };
        assert!(err_rms < 0.05, "residual rms {err_rms}");
    }

    #[test]
    fn to_filter_equals_into_filter() {
        let d = Butterworth::lowpass(4, 5.0, FS).unwrap();
        let f1 = d.to_filter();
        let f2 = d.into_filter();
        assert_eq!(f1.coeffs(), f2.coeffs());
    }

    #[test]
    fn design_metadata_preserved() {
        let d = Butterworth::lowpass(4, 5.0, FS).unwrap();
        assert_eq!(d.order(), 4);
        assert_eq!(d.cutoff_hz(), 5.0);
        assert_eq!(d.sample_rate_hz(), FS);
    }
}
