//! Signal-processing substrate for the pre-impact fall-detection
//! reproduction.
//!
//! This crate implements, from scratch, every signal-processing primitive
//! the paper's methodology section relies on:
//!
//! * [`butterworth`] — IIR Butterworth low-pass design via the bilinear
//!   transform (the paper uses a 4th-order, 5 Hz low-pass at 100 Hz).
//! * [`biquad`] — second-order-section cascades for streaming, numerically
//!   robust filtering, plus zero-phase offline filtering.
//! * [`segment`] — sliding-window segmentation with configurable overlap
//!   (the paper sweeps 100–400 ms windows and 0–75 % overlap).
//! * [`fusion`] — complementary-filter sensor fusion computing Euler angles
//!   (pitch, roll, yaw) from accelerometer + gyroscope, as done "on the
//!   edge" in the paper's acquisition system.
//! * [`rotation`] — 3-D vectors/matrices and Rodrigues' rotation formula,
//!   used to align the KFall sensor frame with the self-collected frame.
//! * [`interp`] — linear and Catmull–Rom resampling shared by the
//!   time-warping augmentations.
//! * [`stats`] — summary statistics and z-score normalisation.
//!
//! # Example
//!
//! ```
//! use prefall_dsp::butterworth::Butterworth;
//!
//! # fn main() -> Result<(), prefall_dsp::DspError> {
//! // The paper's pre-processing filter: 4th order, 5 Hz cutoff, 100 Hz rate.
//! let design = Butterworth::lowpass(4, 5.0, 100.0)?;
//! let mut filter = design.into_filter();
//! let noisy: Vec<f32> = (0..200).map(|i| (i as f32 * 0.1).sin()).collect();
//! let smooth: Vec<f32> = noisy.iter().map(|&x| filter.process(x)).collect();
//! assert_eq!(smooth.len(), noisy.len());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod biquad;
pub mod butterworth;
pub mod complex;
pub mod fusion;
pub mod interp;
pub mod rotation;
pub mod segment;
pub mod stats;

mod error;

pub use error::DspError;
