use std::error::Error;
use std::fmt;

/// Errors produced by signal-processing routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DspError {
    /// A filter order of zero (or otherwise unusable) was requested.
    InvalidOrder {
        /// The rejected order.
        order: usize,
    },
    /// The cutoff frequency is not strictly between 0 and the Nyquist rate.
    InvalidCutoff {
        /// The rejected cutoff frequency in Hz.
        cutoff_hz: f64,
        /// The sampling rate in Hz the cutoff was checked against.
        sample_rate_hz: f64,
    },
    /// The sampling rate is not a positive finite number.
    InvalidSampleRate {
        /// The rejected sampling rate in Hz.
        sample_rate_hz: f64,
    },
    /// A segmentation configuration was rejected.
    InvalidSegmentation {
        /// Human-readable reason the configuration is unusable.
        reason: String,
    },
    /// An input signal was too short or empty for the requested operation.
    SignalTooShort {
        /// Number of samples required.
        required: usize,
        /// Number of samples provided.
        actual: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::InvalidOrder { order } => {
                write!(f, "invalid filter order {order}; order must be at least 1")
            }
            DspError::InvalidCutoff {
                cutoff_hz,
                sample_rate_hz,
            } => write!(
                f,
                "cutoff {cutoff_hz} Hz must lie strictly between 0 and the Nyquist \
                 frequency {} Hz",
                sample_rate_hz / 2.0
            ),
            DspError::InvalidSampleRate { sample_rate_hz } => {
                write!(
                    f,
                    "sample rate {sample_rate_hz} Hz must be positive and finite"
                )
            }
            DspError::InvalidSegmentation { reason } => {
                write!(f, "invalid segmentation configuration: {reason}")
            }
            DspError::SignalTooShort { required, actual } => write!(
                f,
                "signal too short: {actual} samples provided, {required} required"
            ),
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DspError::InvalidOrder { order: 0 };
        let msg = e.to_string();
        assert!(msg.contains("order"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }

    #[test]
    fn cutoff_error_mentions_nyquist() {
        let e = DspError::InvalidCutoff {
            cutoff_hz: 60.0,
            sample_rate_hz: 100.0,
        };
        assert!(e.to_string().contains("50"));
    }
}
