//! Second-order IIR sections (biquads) and cascades of them.
//!
//! Filters designed by [`crate::butterworth`] are factored into
//! second-order sections, which are far more numerically robust than a
//! single high-order direct-form filter. Each [`Biquad`] runs in
//! transposed direct form II, the standard choice for streaming float
//! filters.

use crate::complex::Complex;
use serde::{Deserialize, Serialize};

/// Coefficients of one second-order section.
///
/// Transfer function (with `a0` normalised to 1):
///
/// ```text
///          b0 + b1 z⁻¹ + b2 z⁻²
/// H(z) = ------------------------
///          1 + a1 z⁻¹ + a2 z⁻²
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiquadCoeffs {
    /// Feed-forward coefficient `b0`.
    pub b0: f64,
    /// Feed-forward coefficient `b1`.
    pub b1: f64,
    /// Feed-forward coefficient `b2`.
    pub b2: f64,
    /// Feedback coefficient `a1`.
    pub a1: f64,
    /// Feedback coefficient `a2`.
    pub a2: f64,
}

impl BiquadCoeffs {
    /// The identity (pass-through) section.
    pub const IDENTITY: BiquadCoeffs = BiquadCoeffs {
        b0: 1.0,
        b1: 0.0,
        b2: 0.0,
        a1: 0.0,
        a2: 0.0,
    };

    /// Returns `true` when both poles lie strictly inside the unit circle.
    ///
    /// Uses the triangle stability criterion: `|a2| < 1` and
    /// `|a1| < 1 + a2`.
    pub fn is_stable(&self) -> bool {
        self.a2.abs() < 1.0 && self.a1.abs() < 1.0 + self.a2
    }

    /// Complex frequency response at normalised angular frequency
    /// `omega` (radians/sample, `0..=π`).
    pub fn response(&self, omega: f64) -> Complex {
        let z1 = Complex::cis(-omega);
        let z2 = Complex::cis(-2.0 * omega);
        let num = Complex::from_real(self.b0) + z1.scale(self.b1) + z2.scale(self.b2);
        let den = Complex::from_real(1.0) + z1.scale(self.a1) + z2.scale(self.a2);
        num / den
    }

    /// DC gain of the section (`H(z)` at `z = 1`).
    pub fn dc_gain(&self) -> f64 {
        (self.b0 + self.b1 + self.b2) / (1.0 + self.a1 + self.a2)
    }
}

/// A streaming biquad in transposed direct form II.
///
/// # Example
///
/// ```
/// use prefall_dsp::biquad::{Biquad, BiquadCoeffs};
///
/// let mut bq = Biquad::new(BiquadCoeffs::IDENTITY);
/// assert_eq!(bq.process(0.5), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    coeffs: BiquadCoeffs,
    s1: f64,
    s2: f64,
}

impl Biquad {
    /// Creates a biquad with zeroed internal state.
    pub fn new(coeffs: BiquadCoeffs) -> Self {
        Self {
            coeffs,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// The section coefficients.
    pub fn coeffs(&self) -> &BiquadCoeffs {
        &self.coeffs
    }

    /// Filters one sample.
    pub fn process(&mut self, x: f32) -> f32 {
        let x = f64::from(x);
        let c = &self.coeffs;
        let y = c.b0 * x + self.s1;
        self.s1 = c.b1 * x - c.a1 * y + self.s2;
        self.s2 = c.b2 * x - c.a2 * y;
        y as f32
    }

    /// Resets the internal delay line to zero.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// The internal delay-line state `(s1, s2)`.
    ///
    /// Together with [`Biquad::set_state`] this lets a streaming filter
    /// be checkpointed mid-stream and resumed bit-identically (e.g. a
    /// detector session that survives a reconnect with a warm window).
    pub fn state(&self) -> (f64, f64) {
        (self.s1, self.s2)
    }

    /// Restores the internal delay line captured by [`Biquad::state`].
    pub fn set_state(&mut self, s1: f64, s2: f64) {
        self.s1 = s1;
        self.s2 = s2;
    }
}

/// A cascade of second-order sections forming one higher-order filter.
///
/// Produced by [`crate::butterworth::Butterworth::into_filter`].
#[derive(Debug, Clone, PartialEq)]
pub struct SosFilter {
    sections: Vec<Biquad>,
}

impl SosFilter {
    /// Builds a cascade from section coefficients.
    pub fn new<I>(sections: I) -> Self
    where
        I: IntoIterator<Item = BiquadCoeffs>,
    {
        Self {
            sections: sections.into_iter().map(Biquad::new).collect(),
        }
    }

    /// Number of second-order sections in the cascade.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// The coefficient list, in processing order.
    pub fn coeffs(&self) -> Vec<BiquadCoeffs> {
        self.sections.iter().map(|s| *s.coeffs()).collect()
    }

    /// Filters one sample through every section.
    pub fn process(&mut self, x: f32) -> f32 {
        self.sections.iter_mut().fold(x, |acc, s| s.process(acc))
    }

    /// Filters an entire slice, returning a new vector (causal, stateful).
    pub fn process_slice(&mut self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.process(x)).collect()
    }

    /// Resets the state of every section.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// `true` when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(|s| s.coeffs().is_stable())
    }

    /// Appends every section's delay-line state `(s1, s2)` to `out`, in
    /// processing order. Pairs with [`SosFilter::restore_state`] for
    /// bit-exact mid-stream checkpoint/resume.
    pub fn export_state(&self, out: &mut Vec<(f64, f64)>) {
        out.extend(self.sections.iter().map(|s| s.state()));
    }

    /// Restores delay-line state captured by [`SosFilter::export_state`].
    /// Returns `false` (leaving the filter untouched) when `state` does
    /// not hold exactly one pair per section.
    pub fn restore_state(&mut self, state: &[(f64, f64)]) -> bool {
        if state.len() != self.sections.len() {
            return false;
        }
        for (s, &(s1, s2)) in self.sections.iter_mut().zip(state) {
            s.set_state(s1, s2);
        }
        true
    }

    /// Cascade frequency response at normalised angular frequency `omega`.
    pub fn response(&self, omega: f64) -> Complex {
        self.sections
            .iter()
            .fold(Complex::from_real(1.0), |acc, s| {
                acc * s.coeffs().response(omega)
            })
    }

    /// Magnitude response at a physical frequency, given the sampling rate.
    pub fn magnitude_at(&self, freq_hz: f64, sample_rate_hz: f64) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate_hz;
        self.response(omega).norm()
    }

    /// Zero-phase filtering: runs the cascade forward, then backward.
    ///
    /// Doubles the effective attenuation and cancels group delay; only
    /// usable offline (the whole signal must be available). The filter's
    /// streaming state is left reset afterwards.
    ///
    /// The signal edges are extended by odd reflection (the same strategy
    /// as SciPy's `filtfilt`) to reduce startup transients.
    pub fn filtfilt(&mut self, xs: &[f32]) -> Vec<f32> {
        if xs.is_empty() {
            return Vec::new();
        }
        let pad = (3 * 2 * self.num_sections().max(1)).min(xs.len().saturating_sub(1));
        // Odd reflection about the first and last samples.
        let first = xs[0];
        let last = xs[xs.len() - 1];
        let mut extended = Vec::with_capacity(xs.len() + 2 * pad);
        for i in (1..=pad).rev() {
            extended.push(2.0 * first - xs[i]);
        }
        extended.extend_from_slice(xs);
        for i in 1..=pad {
            extended.push(2.0 * last - xs[xs.len() - 1 - i]);
        }

        self.reset();
        let mut fwd = self.process_slice(&extended);
        self.reset();
        fwd.reverse();
        let mut bwd = self.process_slice(&fwd);
        self.reset();
        bwd.reverse();
        bwd[pad..pad + xs.len()].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterworth::Butterworth;

    #[test]
    fn identity_biquad_passes_through() {
        let mut bq = Biquad::new(BiquadCoeffs::IDENTITY);
        for i in 0..10 {
            let x = i as f32 * 0.25 - 1.0;
            assert_eq!(bq.process(x), x);
        }
    }

    #[test]
    fn identity_coeffs_properties() {
        let c = BiquadCoeffs::IDENTITY;
        assert!(c.is_stable());
        assert!((c.dc_gain() - 1.0).abs() < 1e-15);
        assert!((c.response(1.0).norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unstable_section_detected() {
        let c = BiquadCoeffs {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: 0.0,
            a2: 1.5, // pole outside the unit circle
        };
        assert!(!c.is_stable());
    }

    #[test]
    fn reset_clears_state() {
        let design = Butterworth::lowpass(2, 5.0, 100.0).unwrap();
        let mut f = design.into_filter();
        let a: Vec<f32> = (0..50).map(|i| (i as f32 * 0.2).sin()).collect();
        let y1 = f.process_slice(&a);
        f.reset();
        let y2 = f.process_slice(&a);
        assert_eq!(y1, y2);
    }

    #[test]
    fn cascade_response_is_product_of_sections() {
        let design = Butterworth::lowpass(4, 5.0, 100.0).unwrap();
        let f = design.into_filter();
        let omega = 0.4;
        let prod = f
            .coeffs()
            .iter()
            .fold(1.0, |acc, c| acc * c.response(omega).norm());
        assert!((f.response(omega).norm() - prod).abs() < 1e-12);
    }

    #[test]
    fn filtfilt_has_zero_phase_on_low_frequency_sine() {
        let design = Butterworth::lowpass(4, 5.0, 100.0).unwrap();
        let mut f = design.into_filter();
        // 1 Hz sine at 100 Hz: well inside the passband.
        let xs: Vec<f32> = (0..400)
            .map(|i| (2.0 * std::f32::consts::PI * 1.0 * i as f32 / 100.0).sin())
            .collect();
        let ys = f.filtfilt(&xs);
        // Compare mid-section samples: no delay, amplitude preserved.
        for i in 100..300 {
            assert!(
                (ys[i] - xs[i]).abs() < 0.02,
                "sample {i}: {} vs {}",
                ys[i],
                xs[i]
            );
        }
    }

    #[test]
    fn filtfilt_empty_input() {
        let design = Butterworth::lowpass(4, 5.0, 100.0).unwrap();
        let mut f = design.into_filter();
        assert!(f.filtfilt(&[]).is_empty());
    }

    #[test]
    fn filtfilt_short_input_does_not_panic() {
        let design = Butterworth::lowpass(4, 5.0, 100.0).unwrap();
        let mut f = design.into_filter();
        let out = f.filtfilt(&[1.0, 2.0, 3.0]);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn filtfilt_attenuates_high_frequency_more_than_single_pass() {
        let design = Butterworth::lowpass(4, 5.0, 100.0).unwrap();
        let mut f = design.into_filter();
        // 25 Hz sine: deep in the stopband.
        let xs: Vec<f32> = (0..500)
            .map(|i| (2.0 * std::f32::consts::PI * 25.0 * i as f32 / 100.0).sin())
            .collect();
        let ys = f.filtfilt(&xs);
        let rms = |v: &[f32]| (v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32).sqrt();
        assert!(rms(&ys[100..400]) < 1e-4 * rms(&xs[100..400]));
    }
}
