//! A minimal complex-number type used by filter design and frequency
//! response evaluation.
//!
//! Only the operations the crate actually needs are provided; this is not a
//! general-purpose complex library.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use prefall_dsp::complex::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert!((i * i - Complex::new(-1.0, 0.0)).norm() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `re + 0i`.
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — a point on the unit circle at angle `theta` radians.
    pub fn cis(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`, cheaper than [`Complex::norm`].
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiplies by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::default(), z));
        assert!(close(z * Complex::from_real(1.0), z));
        assert!(close(z - z, Complex::default()));
        assert!(close(z / z, Complex::from_real(1.0)));
    }

    #[test]
    fn norm_of_3_4_is_5() {
        assert!((Complex::new(3.0, 4.0).norm() - 5.0).abs() < 1e-15);
        assert!((Complex::new(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let z = Complex::cis(k as f64 * 0.39);
            assert!((z.norm() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conjugate_product_is_norm_squared() {
        let z = Complex::new(1.5, -2.5);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(-1.0, 0.5);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn neg_and_from_real() {
        let z: Complex = 2.5f64.into();
        assert_eq!(-z, Complex::new(-2.5, 0.0));
    }
}
