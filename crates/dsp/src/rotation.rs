//! 3-D vectors, rotation matrices and Rodrigues' rotation formula.
//!
//! The paper aligns the sensor orientation of the KFall dataset with the
//! self-collected dataset "using a rotation matrix computed through
//! Rodrigues' rotation formula". This module provides exactly that
//! machinery: axis–angle rotations and the rotation taking one unit vector
//! onto another.

use serde::{Deserialize, Serialize};

/// A 3-D vector of `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);
    /// Unit X.
    pub const X: Vec3 = Vec3::new(1.0, 0.0, 0.0);
    /// Unit Y.
    pub const Y: Vec3 = Vec3::new(0.0, 1.0, 0.0);
    /// Unit Z.
    pub const Z: Vec3 = Vec3::new(0.0, 0.0, 1.0);

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the unit vector in the same direction, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }

    /// Multiplies every component by `k`.
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(v: [f64; 3]) -> Self {
        Vec3::new(v[0], v[1], v[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

/// A 3×3 rotation (or general linear) matrix in row-major order.
///
/// # Example
///
/// ```
/// use prefall_dsp::rotation::{Mat3, Vec3};
///
/// // Rotate X onto Y around Z by 90°.
/// let r = Mat3::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2).unwrap();
/// let y = r.apply(Vec3::X);
/// assert!((y - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries `m[row][col]`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Rodrigues' rotation formula: the rotation of `angle` radians about
    /// the given axis.
    ///
    /// `R = I + sin(θ)·K + (1 − cos(θ))·K²` where `K` is the cross-product
    /// matrix of the unit axis.
    ///
    /// Returns `None` when `axis` is (near-)zero.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Option<Mat3> {
        let u = axis.normalized()?;
        let (s, c) = angle.sin_cos();
        let k = Mat3 {
            m: [[0.0, -u.z, u.y], [u.z, 0.0, -u.x], [-u.y, u.x, 0.0]],
        };
        let k2 = k.mul(&k);
        let mut r = Mat3::IDENTITY;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] += s * k.m[i][j] + (1.0 - c) * k2.m[i][j];
            }
        }
        Some(r)
    }

    /// The rotation that takes unit direction `from` onto unit direction
    /// `to` (inputs are normalised internally).
    ///
    /// This is how the KFall sensor frame is aligned to the self-collected
    /// frame: `from` is KFall's gravity/placement axis, `to` ours.
    ///
    /// Returns `None` when either vector is (near-)zero. Antiparallel
    /// vectors are handled by rotating π about an arbitrary perpendicular
    /// axis.
    pub fn rotation_between(from: Vec3, to: Vec3) -> Option<Mat3> {
        let a = from.normalized()?;
        let b = to.normalized()?;
        let c = a.dot(b);
        let axis = a.cross(b);
        if axis.norm() < 1e-12 {
            if c > 0.0 {
                return Some(Mat3::IDENTITY);
            }
            // Antiparallel: rotate π about any axis perpendicular to `a`.
            let perp = if a.x.abs() < 0.9 {
                a.cross(Vec3::X)
            } else {
                a.cross(Vec3::Y)
            };
            return Mat3::from_axis_angle(perp, std::f64::consts::PI);
        }
        let angle = axis.norm().atan2(c);
        Mat3::from_axis_angle(axis, angle)
    }

    /// Matrix–matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        Mat3 { m: out }
    }

    /// Matrix–vector product.
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Transpose (the inverse, for a rotation matrix).
    pub fn transpose(&self) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in self.m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out[j][i] = v;
            }
        }
        Mat3 { m: out }
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// `true` when the matrix is orthonormal with determinant +1 (a proper
    /// rotation), within `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let rt = self.transpose();
        let id = self.mul(&rt);
        let mut ok = (self.det() - 1.0).abs() < tol;
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                ok &= (id.m[i][j] - expect).abs() < tol;
            }
        }
        ok
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vec3_basics() {
        let v = Vec3::new(1.0, 2.0, 2.0);
        assert!((v.norm() - 3.0).abs() < 1e-14);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert!(Vec3::ZERO.normalized().is_none());
        let arr: [f64; 3] = v.into();
        assert_eq!(Vec3::from(arr), v);
    }

    #[test]
    fn axis_angle_quarter_turns() {
        let r = Mat3::from_axis_angle(Vec3::Z, FRAC_PI_2).unwrap();
        assert!((r.apply(Vec3::X) - Vec3::Y).norm() < 1e-12);
        assert!((r.apply(Vec3::Y) - Vec3::new(-1.0, 0.0, 0.0)).norm() < 1e-12);
        // Z is invariant.
        assert!((r.apply(Vec3::Z) - Vec3::Z).norm() < 1e-12);
    }

    #[test]
    fn zero_angle_is_identity() {
        let r = Mat3::from_axis_angle(Vec3::new(0.3, -0.4, 0.86), 0.0).unwrap();
        assert!(r.is_rotation(1e-12));
        for i in 0..3 {
            for j in 0..3 {
                assert!((r.m[i][j] - Mat3::IDENTITY.m[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_axis_rejected() {
        assert!(Mat3::from_axis_angle(Vec3::ZERO, 1.0).is_none());
    }

    #[test]
    fn rodrigues_matrices_are_proper_rotations() {
        for (axis, angle) in [
            (Vec3::new(1.0, 1.0, 1.0), 0.7),
            (Vec3::new(-2.0, 0.5, 0.1), 2.9),
            (Vec3::Y, PI),
            (Vec3::new(0.0, 0.0, -3.0), -1.3),
        ] {
            let r = Mat3::from_axis_angle(axis, angle).unwrap();
            assert!(r.is_rotation(1e-10), "axis {axis:?} angle {angle}");
        }
    }

    #[test]
    fn rotation_preserves_norm_and_angles() {
        let r = Mat3::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 1.1).unwrap();
        let a = Vec3::new(0.2, -0.5, 0.8);
        let b = Vec3::new(1.0, 0.3, -0.7);
        assert!((r.apply(a).norm() - a.norm()).abs() < 1e-12);
        assert!((r.apply(a).dot(r.apply(b)) - a.dot(b)).abs() < 1e-12);
    }

    #[test]
    fn rotation_between_aligns_vectors() {
        let cases = [
            (Vec3::X, Vec3::Y),
            (Vec3::new(1.0, 1.0, 0.0), Vec3::Z),
            (Vec3::new(0.1, -0.2, 0.97), Vec3::new(-0.5, 0.5, 0.3)),
        ];
        for (from, to) in cases {
            let r = Mat3::rotation_between(from, to).unwrap();
            let got = r.apply(from.normalized().unwrap());
            let want = to.normalized().unwrap();
            assert!((got - want).norm() < 1e-10, "{from:?} -> {to:?}");
            assert!(r.is_rotation(1e-10));
        }
    }

    #[test]
    fn rotation_between_parallel_is_identity() {
        let r = Mat3::rotation_between(Vec3::X, Vec3::X.scale(5.0)).unwrap();
        assert!((r.apply(Vec3::Y) - Vec3::Y).norm() < 1e-12);
    }

    #[test]
    fn rotation_between_antiparallel() {
        for v in [Vec3::X, Vec3::Y, Vec3::Z, Vec3::new(0.6, -0.3, 0.74)] {
            let r = Mat3::rotation_between(v, v.scale(-1.0)).unwrap();
            let u = v.normalized().unwrap();
            assert!((r.apply(u) + u).norm() < 1e-10, "{v:?}");
            assert!(r.is_rotation(1e-10));
        }
    }

    #[test]
    fn rotation_between_zero_rejected() {
        assert!(Mat3::rotation_between(Vec3::ZERO, Vec3::X).is_none());
        assert!(Mat3::rotation_between(Vec3::X, Vec3::ZERO).is_none());
    }

    #[test]
    fn transpose_inverts_rotation() {
        let r = Mat3::from_axis_angle(Vec3::new(0.3, 0.5, -1.0), 0.9).unwrap();
        let v = Vec3::new(1.0, -2.0, 0.5);
        let back = r.transpose().apply(r.apply(v));
        assert!((back - v).norm() < 1e-12);
    }

    #[test]
    fn kfall_alignment_scenario() {
        // KFall wears the sensor with +X pointing down the spine; ours has
        // +Z pointing down. Aligning gravity readings across datasets:
        let kfall_gravity = Vec3::new(1.0, 0.0, 0.0);
        let ours_gravity = Vec3::new(0.0, 0.0, 1.0);
        let r = Mat3::rotation_between(kfall_gravity, ours_gravity).unwrap();
        // A pure-gravity KFall accelerometer sample maps onto ours.
        let mapped = r.apply(Vec3::new(9.81, 0.0, 0.0));
        assert!((mapped - Vec3::new(0.0, 0.0, 9.81)).norm() < 1e-9);
    }
}
