//! Interpolation and resampling primitives.
//!
//! These back the paper's two augmentations: *time warping* (resample a
//! series along a smoothly distorted time axis) and *window warping*
//! (speed a random sub-window up or down). Both need fractional-index
//! sampling of a discrete series, provided here as linear and Catmull–Rom
//! interpolation.

/// Samples a series at a fractional index by linear interpolation.
///
/// Indices are clamped to the valid range, so callers may pass slightly
/// out-of-bounds positions produced by warping functions.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn sample_linear(xs: &[f32], pos: f64) -> f32 {
    assert!(!xs.is_empty(), "cannot sample an empty series");
    let last = (xs.len() - 1) as f64;
    let p = pos.clamp(0.0, last);
    let i = p.floor() as usize;
    let frac = (p - i as f64) as f32;
    if i + 1 >= xs.len() {
        xs[xs.len() - 1]
    } else {
        xs[i] * (1.0 - frac) + xs[i + 1] * frac
    }
}

/// Samples a series at a fractional index by Catmull–Rom cubic
/// interpolation (smoother than linear; used by time warping so warped
/// falls keep their curvature).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn sample_catmull_rom(xs: &[f32], pos: f64) -> f32 {
    assert!(!xs.is_empty(), "cannot sample an empty series");
    if xs.len() < 4 {
        return sample_linear(xs, pos);
    }
    let last = (xs.len() - 1) as f64;
    let p = pos.clamp(0.0, last);
    let i = (p.floor() as usize).min(xs.len() - 2);
    let t = (p - i as f64) as f32;

    let p1 = xs[i];
    let p2 = xs[i + 1];
    // Ghost points beyond the ends are linearly extrapolated so the spline
    // reproduces linear data exactly, including the edge segments.
    let p0 = if i == 0 { 2.0 * p1 - p2 } else { xs[i - 1] };
    let p3 = if i + 2 >= xs.len() {
        2.0 * p2 - p1
    } else {
        xs[i + 2]
    };

    let t2 = t * t;
    let t3 = t2 * t;
    0.5 * ((2.0 * p1)
        + (-p0 + p2) * t
        + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
        + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3)
}

/// Resamples a series to a new length with linear interpolation, mapping
/// endpoints onto endpoints.
///
/// Returns an empty vector when `new_len == 0`.
///
/// # Panics
///
/// Panics if `xs` is empty and `new_len > 0`.
pub fn resample_linear(xs: &[f32], new_len: usize) -> Vec<f32> {
    resample_with(xs, new_len, sample_linear)
}

/// Resamples a series to a new length with Catmull–Rom interpolation.
///
/// Returns an empty vector when `new_len == 0`.
///
/// # Panics
///
/// Panics if `xs` is empty and `new_len > 0`.
pub fn resample_catmull_rom(xs: &[f32], new_len: usize) -> Vec<f32> {
    resample_with(xs, new_len, sample_catmull_rom)
}

fn resample_with(xs: &[f32], new_len: usize, f: fn(&[f32], f64) -> f32) -> Vec<f32> {
    if new_len == 0 {
        return Vec::new();
    }
    assert!(!xs.is_empty(), "cannot resample an empty series");
    if new_len == 1 {
        return vec![xs[0]];
    }
    let scale = (xs.len() - 1) as f64 / (new_len - 1) as f64;
    (0..new_len).map(|i| f(xs, i as f64 * scale)).collect()
}

/// Resamples a series along an arbitrary monotone time map: output sample
/// `i` is the input sampled at `positions[i]` (fractional indices into
/// `xs`).
///
/// This is the core of *time warping*: the caller supplies the distorted
/// time axis.
///
/// # Panics
///
/// Panics if `xs` is empty and `positions` is not.
pub fn warp(xs: &[f32], positions: &[f64]) -> Vec<f32> {
    positions
        .iter()
        .map(|&p| sample_catmull_rom(xs, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_sampling_basics() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(sample_linear(&xs, 0.0), 0.0);
        assert_eq!(sample_linear(&xs, 3.0), 3.0);
        assert!((sample_linear(&xs, 1.5) - 1.5).abs() < 1e-7);
        // Clamping.
        assert_eq!(sample_linear(&xs, -2.0), 0.0);
        assert_eq!(sample_linear(&xs, 9.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn linear_empty_panics() {
        let _ = sample_linear(&[], 0.0);
    }

    #[test]
    fn catmull_rom_interpolates_knots_exactly() {
        let xs = [0.0, 2.0, 1.0, 3.0, -1.0, 0.5];
        for (i, &x) in xs.iter().enumerate() {
            let y = sample_catmull_rom(&xs, i as f64);
            assert!((y - x).abs() < 1e-6, "knot {i}: {y} vs {x}");
        }
    }

    #[test]
    fn catmull_rom_reproduces_linear_data() {
        let xs: Vec<f32> = (0..10).map(|i| 2.0 * i as f32 + 1.0).collect();
        for k in 0..90 {
            let p = k as f64 * 0.1;
            let y = sample_catmull_rom(&xs, p);
            assert!((f64::from(y) - (2.0 * p + 1.0)).abs() < 1e-5, "at {p}: {y}");
        }
    }

    #[test]
    fn catmull_rom_short_series_falls_back_to_linear() {
        let xs = [1.0, 3.0];
        assert!((sample_catmull_rom(&xs, 0.5) - 2.0).abs() < 1e-7);
    }

    #[test]
    fn resample_identity_length() {
        let xs: Vec<f32> = (0..20).map(|i| (i as f32 * 0.37).sin()).collect();
        let ys = resample_linear(&xs, 20);
        for (a, b) in xs.iter().zip(&ys) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn resample_preserves_endpoints() {
        let xs = [5.0, 1.0, -3.0, 8.0, 2.0];
        for len in [2, 3, 7, 50] {
            for f in [resample_linear, resample_catmull_rom] {
                let ys = f(&xs, len);
                assert_eq!(ys.len(), len);
                assert!((ys[0] - 5.0).abs() < 1e-6);
                assert!((ys[len - 1] - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn resample_degenerate_lengths() {
        let xs = [1.0, 2.0, 3.0];
        assert!(resample_linear(&xs, 0).is_empty());
        assert_eq!(resample_linear(&xs, 1), vec![1.0]);
    }

    #[test]
    fn upsample_then_downsample_roundtrips_smooth_signal() {
        let xs: Vec<f32> = (0..50)
            .map(|i| (2.0 * std::f32::consts::PI * i as f32 / 50.0).sin())
            .collect();
        let up = resample_catmull_rom(&xs, 200);
        let down = resample_catmull_rom(&up, 50);
        for (a, b) in xs.iter().zip(&down) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn warp_with_identity_positions_is_identity() {
        let xs: Vec<f32> = (0..30).map(|i| (i as f32).cos()).collect();
        let pos: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys = warp(&xs, &pos);
        for (a, b) in xs.iter().zip(&ys) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn warp_speedup_halves_length() {
        let xs: Vec<f32> = (0..40).map(|i| i as f32).collect();
        // 2x speedup: sample every other index.
        let pos: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let ys = warp(&xs, &pos);
        assert_eq!(ys.len(), 20);
        assert!((ys[5] - 10.0).abs() < 1e-5);
    }
}
