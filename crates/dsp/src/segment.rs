//! Sliding-window segmentation with configurable overlap.
//!
//! The paper segments the filtered 9-channel stream into fixed-length
//! windows ("segments"), sweeping window sizes from 100 ms to 400 ms and
//! overlaps from 0 % to 75 % in 25 % steps. A segment of `n` snapshots and
//! `m` features is an `n × m` matrix; the best configuration reported is
//! 400 ms with 50 % overlap.

use crate::DspError;
use serde::{Deserialize, Serialize};

/// Overlap between consecutive windows, expressed as a fraction of the
/// window length.
///
/// Only the paper's grid values are representable, which keeps every
/// downstream configuration honest about what was actually evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Overlap {
    /// No overlap: the hop equals the window length.
    None,
    /// 25 % overlap.
    Quarter,
    /// 50 % overlap (the paper's chosen configuration).
    Half,
    /// 75 % overlap.
    ThreeQuarters,
}

impl Overlap {
    /// All grid values, in increasing order.
    pub const ALL: [Overlap; 4] = [
        Overlap::None,
        Overlap::Quarter,
        Overlap::Half,
        Overlap::ThreeQuarters,
    ];

    /// The overlap as a fraction in `[0, 1)`.
    pub fn fraction(self) -> f64 {
        match self {
            Overlap::None => 0.0,
            Overlap::Quarter => 0.25,
            Overlap::Half => 0.5,
            Overlap::ThreeQuarters => 0.75,
        }
    }

    /// Hop size (stride) in samples for a given window length.
    ///
    /// Always at least 1.
    pub fn hop(self, window: usize) -> usize {
        let kept = (window as f64 * (1.0 - self.fraction())).round() as usize;
        kept.max(1)
    }
}

impl std::fmt::Display for Overlap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.fraction() * 100.0)
    }
}

/// Segmentation configuration: window length and overlap.
///
/// # Example
///
/// ```
/// use prefall_dsp::segment::{Overlap, Segmentation};
///
/// # fn main() -> Result<(), prefall_dsp::DspError> {
/// // The paper's best configuration: 400 ms at 100 Hz, 50 % overlap.
/// let seg = Segmentation::new(40, Overlap::Half)?;
/// assert_eq!(seg.hop(), 20);
/// let windows: Vec<_> = seg.windows(100).collect();
/// assert_eq!(windows.first(), Some(&(0..40)));
/// assert_eq!(windows.last(), Some(&(60..100)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segmentation {
    window: usize,
    overlap: Overlap,
}

impl Segmentation {
    /// Creates a segmentation configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSegmentation`] when `window == 0`.
    pub fn new(window: usize, overlap: Overlap) -> Result<Self, DspError> {
        if window == 0 {
            return Err(DspError::InvalidSegmentation {
                reason: "window length must be at least 1 sample".to_string(),
            });
        }
        Ok(Self { window, overlap })
    }

    /// Convenience constructor from a duration in milliseconds and a
    /// sampling rate.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidSegmentation`] when the duration rounds
    /// to zero samples, and [`DspError::InvalidSampleRate`] for a
    /// non-positive rate.
    pub fn from_millis(
        window_ms: f64,
        sample_rate_hz: f64,
        overlap: Overlap,
    ) -> Result<Self, DspError> {
        if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
            return Err(DspError::InvalidSampleRate { sample_rate_hz });
        }
        let window = (window_ms * sample_rate_hz / 1000.0).round() as usize;
        Self::new(window, overlap)
    }

    /// Window length in samples.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Overlap setting.
    pub fn overlap(&self) -> Overlap {
        self.overlap
    }

    /// Hop (stride) between consecutive window starts, in samples.
    pub fn hop(&self) -> usize {
        self.overlap.hop(self.window)
    }

    /// Window duration in milliseconds for a given sampling rate.
    pub fn window_ms(&self, sample_rate_hz: f64) -> f64 {
        self.window as f64 * 1000.0 / sample_rate_hz
    }

    /// Number of complete windows available in a signal of `len` samples.
    pub fn num_windows(&self, len: usize) -> usize {
        if len < self.window {
            0
        } else {
            (len - self.window) / self.hop() + 1
        }
    }

    /// Iterator over the sample ranges of every complete window.
    pub fn windows(&self, len: usize) -> Windows {
        Windows {
            next_start: 0,
            window: self.window,
            hop: self.hop(),
            len,
        }
    }

    /// Extracts segments from a multi-channel signal laid out as one
    /// `Vec<f32>` per channel, returning `[window × channels]` row-major
    /// matrices (the paper's `n × m` segment matrices).
    ///
    /// # Panics
    ///
    /// Panics if the channels have different lengths.
    pub fn extract(&self, channels: &[Vec<f32>]) -> Vec<Vec<f32>> {
        if channels.is_empty() {
            return Vec::new();
        }
        let len = channels[0].len();
        assert!(
            channels.iter().all(|c| c.len() == len),
            "all channels must have equal length"
        );
        self.windows(len)
            .map(|range| {
                let mut seg = Vec::with_capacity(self.window * channels.len());
                for t in range {
                    for ch in channels {
                        seg.push(ch[t]);
                    }
                }
                seg
            })
            .collect()
    }
}

/// Iterator over window sample ranges produced by
/// [`Segmentation::windows`].
#[derive(Debug, Clone)]
pub struct Windows {
    next_start: usize,
    window: usize,
    hop: usize,
    len: usize,
}

impl Iterator for Windows {
    type Item = std::ops::Range<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_start + self.window > self.len {
            return None;
        }
        let r = self.next_start..self.next_start + self.window;
        self.next_start += self.hop;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.next_start + self.window > self.len {
            0
        } else {
            (self.len - self.window - self.next_start) / self.hop + 1
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Windows {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_window() {
        assert!(Segmentation::new(0, Overlap::None).is_err());
    }

    #[test]
    fn from_millis_matches_paper_configurations() {
        let fs = 100.0;
        for (ms, expect) in [(100.0, 10), (200.0, 20), (300.0, 30), (400.0, 40)] {
            let s = Segmentation::from_millis(ms, fs, Overlap::Half).unwrap();
            assert_eq!(s.window(), expect, "{ms} ms");
            assert!((s.window_ms(fs) - ms).abs() < 1e-9);
        }
    }

    #[test]
    fn from_millis_rejects_zero_duration_and_bad_rate() {
        assert!(Segmentation::from_millis(1.0, 100.0, Overlap::None).is_err());
        assert!(Segmentation::from_millis(100.0, 0.0, Overlap::None).is_err());
    }

    #[test]
    fn hop_for_each_overlap() {
        assert_eq!(Overlap::None.hop(40), 40);
        assert_eq!(Overlap::Quarter.hop(40), 30);
        assert_eq!(Overlap::Half.hop(40), 20);
        assert_eq!(Overlap::ThreeQuarters.hop(40), 10);
        // Hop never collapses to zero even for tiny windows.
        assert_eq!(Overlap::ThreeQuarters.hop(1), 1);
    }

    #[test]
    fn window_count_formula() {
        let s = Segmentation::new(40, Overlap::Half).unwrap();
        assert_eq!(s.num_windows(39), 0);
        assert_eq!(s.num_windows(40), 1);
        assert_eq!(s.num_windows(59), 1);
        assert_eq!(s.num_windows(60), 2);
        assert_eq!(s.num_windows(100), 4);
    }

    #[test]
    fn windows_iterator_matches_num_windows() {
        for window in [10, 20, 30, 40] {
            for overlap in Overlap::ALL {
                let s = Segmentation::new(window, overlap).unwrap();
                for len in [0, 5, 40, 63, 100, 997] {
                    let n = s.windows(len).count();
                    assert_eq!(n, s.num_windows(len), "w={window} o={overlap} len={len}");
                    assert_eq!(s.windows(len).len(), n, "ExactSizeIterator");
                }
            }
        }
    }

    #[test]
    fn windows_are_in_bounds_and_strided() {
        let s = Segmentation::new(30, Overlap::Half).unwrap();
        let ranges: Vec<_> = s.windows(200).collect();
        for (i, r) in ranges.iter().enumerate() {
            assert_eq!(r.len(), 30);
            assert!(r.end <= 200);
            assert_eq!(r.start, i * 15);
        }
    }

    #[test]
    fn extract_is_row_major_time_by_channel() {
        let ch0: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let ch1: Vec<f32> = (0..10).map(|i| 100.0 + i as f32).collect();
        let s = Segmentation::new(4, Overlap::Half).unwrap();
        let segs = s.extract(&[ch0, ch1]);
        assert_eq!(segs.len(), 4);
        // First segment rows: t=0..4, columns: [ch0, ch1].
        assert_eq!(segs[0][0], 0.0);
        assert_eq!(segs[0][1], 100.0);
        assert_eq!(segs[0][2], 1.0);
        assert_eq!(segs[0][3], 101.0);
        // Second segment starts at t=2.
        assert_eq!(segs[1][0], 2.0);
    }

    #[test]
    fn extract_empty_channels() {
        let s = Segmentation::new(4, Overlap::None).unwrap();
        assert!(s.extract(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn extract_panics_on_ragged_channels() {
        let s = Segmentation::new(4, Overlap::None).unwrap();
        let _ = s.extract(&[vec![0.0; 10], vec![0.0; 9]]);
    }

    #[test]
    fn display_overlap() {
        assert_eq!(Overlap::Half.to_string(), "50%");
        assert_eq!(Overlap::None.to_string(), "0%");
    }
}
