//! Summary statistics and normalisation helpers.
//!
//! Used by the preprocessing pipeline (per-channel z-score normalisation
//! fitted on training data only) and by the threshold baseline detector
//! (vector magnitudes, rolling extrema).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32;
    var.sqrt()
}

/// Root mean square; `0.0` for an empty slice.
pub fn rms(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x * x).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Euclidean magnitude of a 3-axis sample.
pub fn magnitude3(x: f32, y: f32, z: f32) -> f32 {
    (x * x + y * y + z * z).sqrt()
}

/// Element-wise magnitude series of three equally long channels.
///
/// # Panics
///
/// Panics if the channels have different lengths.
pub fn magnitude_series(x: &[f32], y: &[f32], z: &[f32]) -> Vec<f32> {
    assert!(
        x.len() == y.len() && y.len() == z.len(),
        "all channels must have equal length"
    );
    x.iter()
        .zip(y)
        .zip(z)
        .map(|((&a, &b), &c)| magnitude3(a, b, c))
        .collect()
}

/// Per-channel z-score normalisation parameters, fitted on training data
/// and then frozen (so the test fold never leaks statistics).
///
/// # Example
///
/// ```
/// use prefall_dsp::stats::Normalizer;
///
/// // Three rows of two channels: channel 0 has mean 2, channel 1 mean 20.
/// let train = vec![vec![1.0f32, 10.0, 2.0, 20.0, 3.0, 30.0]];
/// let norm = Normalizer::fit(&train, 2);
/// let z = norm.apply(&[2.0, 20.0]);
/// assert!(z[0].abs() < 1e-6 && z[1].abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Normalizer {
    /// Fits per-channel mean and standard deviation over row-major
    /// `[rows × channels]` samples. Rows may come from many segments
    /// concatenated together.
    ///
    /// Channels with zero variance get `std = 1` so normalisation is a
    /// no-op rather than a division by zero.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or any sample length is not a multiple
    /// of `channels`.
    pub fn fit(samples: &[Vec<f32>], channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        let mut sums = vec![0.0f64; channels];
        let mut sq_sums = vec![0.0f64; channels];
        let mut count = 0usize;
        for s in samples {
            assert!(
                s.len().is_multiple_of(channels),
                "sample length {} is not a multiple of {channels}",
                s.len()
            );
            for row in s.chunks_exact(channels) {
                for (c, &v) in row.iter().enumerate() {
                    sums[c] += f64::from(v);
                    sq_sums[c] += f64::from(v) * f64::from(v);
                }
                count += 1;
            }
        }
        let n = count.max(1) as f64;
        let means: Vec<f32> = sums.iter().map(|&s| (s / n) as f32).collect();
        let stds: Vec<f32> = sq_sums
            .iter()
            .zip(&sums)
            .map(|(&sq, &s)| {
                let var = (sq / n - (s / n) * (s / n)).max(0.0);
                let sd = var.sqrt() as f32;
                if sd < 1e-6 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Self { means, stds }
    }

    /// An identity normaliser (zero mean, unit std) for `channels`
    /// channels.
    pub fn identity(channels: usize) -> Self {
        Self {
            means: vec![0.0; channels],
            stds: vec![1.0; channels],
        }
    }

    /// Reassembles a normaliser from stored parameters (deserialisation).
    ///
    /// # Errors
    ///
    /// Returns a description when lengths differ, the channel count is
    /// zero, or any std is not strictly positive and finite.
    pub fn from_parts(means: Vec<f32>, stds: Vec<f32>) -> Result<Self, String> {
        if means.is_empty() || means.len() != stds.len() {
            return Err(format!(
                "means/stds length mismatch: {} vs {}",
                means.len(),
                stds.len()
            ));
        }
        if let Some(bad) = stds.iter().find(|s| !(s.is_finite() && **s > 0.0)) {
            return Err(format!("invalid standard deviation {bad}"));
        }
        Ok(Self { means, stds })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.means.len()
    }

    /// Per-channel means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Per-channel standard deviations.
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }

    /// Normalises one row-major `[rows × channels]` sample into a new
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if the sample length is not a multiple of the channel count.
    pub fn apply(&self, sample: &[f32]) -> Vec<f32> {
        let mut out = sample.to_vec();
        self.apply_in_place(&mut out);
        out
    }

    /// Normalises a sample in place.
    ///
    /// # Panics
    ///
    /// Panics if the sample length is not a multiple of the channel count.
    pub fn apply_in_place(&self, sample: &mut [f32]) {
        let c = self.channels();
        assert!(
            sample.len().is_multiple_of(c),
            "sample length {} is not a multiple of {c}",
            sample.len()
        );
        for row in sample.chunks_exact_mut(c) {
            for (i, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[i]) / self.stds[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_rms_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
        assert!((rms(&[3.0, 4.0]) - (12.5f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn magnitude_pythagoras() {
        assert!((magnitude3(3.0, 4.0, 0.0) - 5.0).abs() < 1e-6);
        assert!((magnitude3(1.0, 2.0, 2.0) - 3.0).abs() < 1e-6);
        let m = magnitude_series(&[3.0, 0.0], &[4.0, 0.0], &[0.0, 1.0]);
        assert_eq!(m, vec![5.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn magnitude_series_ragged_panics() {
        let _ = magnitude_series(&[1.0], &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let samples = vec![
            vec![1.0f32, 100.0, 2.0, 200.0],
            vec![3.0, 300.0, 4.0, 400.0],
        ];
        let norm = Normalizer::fit(&samples, 2);
        // Apply to the training data itself and verify statistics.
        let mut all = Vec::new();
        for s in &samples {
            all.extend(norm.apply(s));
        }
        let ch0: Vec<f32> = all.iter().step_by(2).copied().collect();
        let ch1: Vec<f32> = all.iter().skip(1).step_by(2).copied().collect();
        assert!(mean(&ch0).abs() < 1e-5);
        assert!(mean(&ch1).abs() < 1e-5);
        assert!((std_dev(&ch0) - 1.0).abs() < 1e-4);
        assert!((std_dev(&ch1) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalizer_constant_channel_is_noop_scaled() {
        let samples = vec![vec![5.0f32, 1.0, 5.0, 2.0, 5.0, 3.0]];
        let norm = Normalizer::fit(&samples, 2);
        assert_eq!(norm.stds()[0], 1.0); // degenerate std clamped
        let z = norm.apply(&[5.0, 2.0]);
        assert!(z[0].abs() < 1e-6);
    }

    #[test]
    fn identity_normalizer_is_identity() {
        let norm = Normalizer::identity(3);
        let x = vec![1.0f32, -2.0, 3.5];
        assert_eq!(norm.apply(&x), x);
        assert_eq!(norm.channels(), 3);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn normalizer_apply_wrong_width_panics() {
        let norm = Normalizer::identity(3);
        let _ = norm.apply(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn normalizer_fit_wrong_width_panics() {
        let _ = Normalizer::fit(&[vec![1.0, 2.0, 3.0]], 2);
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let norm = Normalizer::fit(&[vec![1.0f32, 2.0, 3.0, 4.0]], 2);
        let x = vec![2.5f32, 3.5];
        let a = norm.apply(&x);
        let mut b = x.clone();
        norm.apply_in_place(&mut b);
        assert_eq!(a, b);
    }
}
