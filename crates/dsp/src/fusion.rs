//! Complementary-filter sensor fusion: Euler angles from accelerometer and
//! gyroscope.
//!
//! The paper's acquisition firmware "computed on the edge the Eulerian
//! angle data (pitch, roll, yaw)" from the accelerometer and gyroscope at
//! every 10 ms snapshot. A complementary filter is the standard
//! lightweight way to do this on a Cortex-M class device: the gyroscope is
//! integrated for short-term accuracy and blended with the
//! accelerometer-derived gravity direction for long-term stability; yaw is
//! gyro-only (no magnetometer on the board).

use serde::{Deserialize, Serialize};

/// Euler angles in radians.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EulerAngles {
    /// Rotation about the lateral axis (nose up/down), radians.
    pub pitch: f64,
    /// Rotation about the longitudinal axis (lean left/right), radians.
    pub roll: f64,
    /// Rotation about the vertical axis (heading), radians.
    pub yaw: f64,
}

impl EulerAngles {
    /// Creates Euler angles from components, in radians.
    pub const fn new(pitch: f64, roll: f64, yaw: f64) -> Self {
        Self { pitch, roll, yaw }
    }
}

/// A complementary attitude filter.
///
/// # Example
///
/// ```
/// use prefall_dsp::fusion::ComplementaryFilter;
///
/// let mut fusion = ComplementaryFilter::new(100.0, 0.98);
/// // A body at rest with gravity on +Z: pitch and roll converge to 0.
/// let mut angles = Default::default();
/// for _ in 0..200 {
///     angles = fusion.update([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
/// }
/// assert!(angles.pitch.abs() < 1e-6);
/// assert!(angles.roll.abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComplementaryFilter {
    dt: f64,
    alpha: f64,
    state: EulerAngles,
    initialised: bool,
}

impl ComplementaryFilter {
    /// Creates a filter for the given sampling rate.
    ///
    /// `alpha` is the gyro-trust coefficient in `[0, 1]`; `0.98` is a
    /// common choice at 100 Hz (gyro time constant ≈ 0.5 s).
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not positive and finite, or `alpha`
    /// is outside `[0, 1]`.
    pub fn new(sample_rate_hz: f64, alpha: f64) -> Self {
        assert!(
            sample_rate_hz.is_finite() && sample_rate_hz > 0.0,
            "sample rate must be positive and finite"
        );
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self {
            dt: 1.0 / sample_rate_hz,
            alpha,
            state: EulerAngles::default(),
            initialised: false,
        }
    }

    /// Current attitude estimate.
    pub fn angles(&self) -> EulerAngles {
        self.state
    }

    /// Resets the filter to the uninitialised state.
    pub fn reset(&mut self) {
        self.state = EulerAngles::default();
        self.initialised = false;
    }

    /// Captures the fusion state for mid-stream checkpointing: the
    /// current attitude and whether the accel bootstrap has happened.
    pub fn state(&self) -> (EulerAngles, bool) {
        (self.state, self.initialised)
    }

    /// Restores state captured by [`ComplementaryFilter::state`]; the
    /// next [`ComplementaryFilter::update`] continues bit-identically.
    pub fn restore(&mut self, angles: EulerAngles, initialised: bool) {
        self.state = angles;
        self.initialised = initialised;
    }

    /// Processes one snapshot.
    ///
    /// `accel` is the specific force in any consistent unit (only the
    /// direction matters); `gyro` is the angular rate in rad/s, both in
    /// the body frame `[x, y, z]` with `+z` nominally opposing gravity
    /// when upright.
    pub fn update(&mut self, accel: [f64; 3], gyro: [f64; 3]) -> EulerAngles {
        let [ax, ay, az] = accel;
        let [gx, gy, gz] = gyro;

        // Attitude from the accelerometer alone (valid when the specific
        // force is dominated by gravity).
        let acc_pitch = (-ax).atan2((ay * ay + az * az).sqrt());
        let acc_roll = ay.atan2(az);

        if !self.initialised {
            // Bootstrap directly from the accelerometer.
            self.state = EulerAngles::new(acc_pitch, acc_roll, 0.0);
            self.initialised = true;
            return self.state;
        }

        // Gyro integration, then blend with the accelerometer estimate.
        let gyro_pitch = self.state.pitch + gy * self.dt;
        let gyro_roll = self.state.roll + gx * self.dt;
        let a = self.alpha;
        self.state.pitch = a * gyro_pitch + (1.0 - a) * acc_pitch;
        self.state.roll = a * gyro_roll + (1.0 - a) * acc_roll;
        // No magnetometer: yaw is pure integration (drifts slowly, which
        // is acceptable for sub-second fall windows).
        self.state.yaw += gz * self.dt;
        self.state
    }

    /// Runs the filter over whole channels, returning
    /// `(pitch, roll, yaw)` series. All six input channels must share one
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if channel lengths differ.
    #[allow(clippy::type_complexity)]
    pub fn process_channels(
        &mut self,
        accel: [&[f32]; 3],
        gyro: [&[f32]; 3],
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let len = accel[0].len();
        assert!(
            accel.iter().chain(gyro.iter()).all(|c| c.len() == len),
            "all channels must have equal length"
        );
        let mut pitch = Vec::with_capacity(len);
        let mut roll = Vec::with_capacity(len);
        let mut yaw = Vec::with_capacity(len);
        for t in 0..len {
            let a = [
                f64::from(accel[0][t]),
                f64::from(accel[1][t]),
                f64::from(accel[2][t]),
            ];
            let g = [
                f64::from(gyro[0][t]),
                f64::from(gyro[1][t]),
                f64::from(gyro[2][t]),
            ];
            let e = self.update(a, g);
            pitch.push(e.pitch as f32);
            roll.push(e.roll as f32);
            yaw.push(e.yaw as f32);
        }
        (pitch, roll, yaw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = ComplementaryFilter::new(100.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_bad_rate() {
        let _ = ComplementaryFilter::new(-1.0, 0.98);
    }

    #[test]
    fn level_at_rest() {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        let mut e = EulerAngles::default();
        for _ in 0..500 {
            e = f.update([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
        }
        assert!(e.pitch.abs() < 1e-9);
        assert!(e.roll.abs() < 1e-9);
        assert!(e.yaw.abs() < 1e-9);
    }

    #[test]
    fn static_tilt_converges_to_accel_attitude() {
        // Gravity seen along +X means the body pitched nose-down by 90°.
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        let mut e = EulerAngles::default();
        for _ in 0..2000 {
            e = f.update([-1.0, 0.0, 0.0], [0.0, 0.0, 0.0]);
        }
        assert!((e.pitch - FRAC_PI_2).abs() < 1e-3, "pitch {}", e.pitch);
    }

    #[test]
    fn first_sample_bootstraps_from_accel() {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        let e = f.update([0.0, 1.0, 1.0], [0.0, 0.0, 0.0]);
        // roll = atan2(1, 1) = 45° immediately, no slow convergence.
        assert!((e.roll - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn gyro_integration_tracks_fast_rotation() {
        // Constant 90°/s pitch rate for 1 s with accel staying put: the
        // high-alpha filter should report close to the integrated value.
        let mut f = ComplementaryFilter::new(100.0, 0.995);
        f.update([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]); // bootstrap level
        let mut e = EulerAngles::default();
        for _ in 0..100 {
            e = f.update([0.0, 0.0, 1.0], [0.0, FRAC_PI_2, 0.0]);
        }
        assert!(
            e.pitch > 0.5 * FRAC_PI_2,
            "integrated pitch too small: {}",
            e.pitch
        );
    }

    #[test]
    fn yaw_integrates_gyro_z() {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        f.update([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
        let mut e = EulerAngles::default();
        for _ in 0..100 {
            e = f.update([0.0, 0.0, 1.0], [0.0, 0.0, 1.0]); // 1 rad/s
        }
        assert!((e.yaw - 1.0).abs() < 1e-9, "yaw {}", e.yaw);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        f.update([0.5, 0.5, 0.7], [1.0, 1.0, 1.0]);
        f.reset();
        assert_eq!(f.angles(), EulerAngles::default());
    }

    #[test]
    fn process_channels_shapes() {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        let a = vec![0.0f32; 50];
        let z = vec![1.0f32; 50];
        let g = vec![0.0f32; 50];
        let (p, r, y) = f.process_channels([&a, &a, &z], [&g, &g, &g]);
        assert_eq!(p.len(), 50);
        assert_eq!(r.len(), 50);
        assert_eq!(y.len(), 50);
        assert!(p.iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn process_channels_ragged_panics() {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        let a = vec![0.0f32; 50];
        let b = vec![0.0f32; 49];
        let _ = f.process_channels([&a, &a, &a], [&a, &a, &b]);
    }

    #[test]
    fn angles_bounded_under_noisy_input() {
        // Even with erratic inputs pitch/roll remain bounded (they are
        // blends of bounded accel estimates and short integrations).
        let mut f = ComplementaryFilter::new(100.0, 0.9);
        let mut x = 0.123f64;
        for _ in 0..5000 {
            x = (x * 9301.0 + 49297.0) % 233280.0;
            let r1 = x / 233280.0 - 0.5;
            let e = f.update([r1, -r1, 0.5 + r1], [r1 * 5.0, -r1 * 3.0, r1]);
            assert!(e.pitch.abs() < std::f64::consts::PI);
            assert!(e.roll.abs() < std::f64::consts::PI + 1.0);
        }
    }
}
