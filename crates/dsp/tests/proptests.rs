//! Crate-local property tests for the DSP primitives.

use prefall_dsp::biquad::SosFilter;
use prefall_dsp::butterworth::Butterworth;
use prefall_dsp::fusion::ComplementaryFilter;
use prefall_dsp::interp::{resample_catmull_rom, resample_linear};
use prefall_dsp::rotation::{Mat3, Vec3};
use prefall_dsp::segment::{Overlap, Segmentation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A bounded input through a stable low-pass filter stays bounded
    /// (BIBO stability, with DC gain 1 the bound is the input bound plus
    /// transient overshoot headroom).
    #[test]
    fn filter_output_is_bounded(
        order in 1usize..7,
        cutoff in 1.0f64..40.0,
        xs in prop::collection::vec(-5.0f32..5.0, 10..400),
    ) {
        let mut f: SosFilter = Butterworth::lowpass(order, cutoff, 100.0).unwrap().into_filter();
        let ys = f.process_slice(&xs);
        prop_assert!(ys.iter().all(|y| y.is_finite() && y.abs() < 50.0));
    }

    /// filtfilt output has the same length and is also bounded.
    #[test]
    fn filtfilt_matches_length(xs in prop::collection::vec(-3.0f32..3.0, 0..200)) {
        let mut f = Butterworth::lowpass(4, 5.0, 100.0).unwrap().into_filter();
        let ys = f.filtfilt(&xs);
        prop_assert_eq!(ys.len(), xs.len());
        prop_assert!(ys.iter().all(|y| y.is_finite()));
    }

    /// A constant input settles to itself (DC gain 1).
    #[test]
    fn constant_input_settles(level in -4.0f32..4.0, order in 1usize..6) {
        let mut f = Butterworth::lowpass(order, 5.0, 100.0).unwrap().into_filter();
        let xs = vec![level; 600];
        let ys = f.process_slice(&xs);
        prop_assert!((ys[599] - level).abs() < 1e-3 + level.abs() * 1e-3);
    }

    /// Segmentation + extraction agree on counts for multi-channel data.
    #[test]
    fn extract_count_matches_windows(
        window in 1usize..50,
        len in 0usize..300,
        overlap_idx in 0usize..4,
        channels in 1usize..6,
    ) {
        let seg = Segmentation::new(window, Overlap::ALL[overlap_idx]).unwrap();
        let data: Vec<Vec<f32>> = (0..channels)
            .map(|c| (0..len).map(|i| (i + c) as f32).collect())
            .collect();
        let out = seg.extract(&data);
        prop_assert_eq!(out.len(), seg.num_windows(len));
        for s in &out {
            prop_assert_eq!(s.len(), window * channels);
        }
    }

    /// Composing a rotation with its transpose is the identity.
    #[test]
    fn rotation_times_transpose_is_identity(
        ax in -1.0f64..1.0, ay in -1.0f64..1.0, az in -1.0f64..1.0, angle in -6.0f64..6.0,
    ) {
        let axis = Vec3::new(ax, ay, az);
        prop_assume!(axis.norm() > 1e-3);
        let r = Mat3::from_axis_angle(axis, angle).unwrap();
        let id = r.mul(&r.transpose());
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((id.m[i][j] - expect).abs() < 1e-10);
            }
        }
    }

    /// Resampling to any length then back to the original approximates
    /// the original for smooth inputs.
    #[test]
    fn resample_roundtrip_smooth(n in 8usize..60, m in 8usize..200) {
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 / n as f32 * 3.0).sin()).collect();
        for f in [resample_linear, resample_catmull_rom] {
            let there = f(&xs, m);
            let back = f(&there, n);
            prop_assert_eq!(back.len(), n);
            // Tolerance loosens when the intermediate grid is coarser.
            let tol = if m >= n { 0.08 } else { 0.6 };
            for (a, b) in xs.iter().zip(&back) {
                prop_assert!((a - b).abs() < tol, "{a} vs {b} (n={n}, m={m})");
            }
        }
    }

    /// The complementary filter's pitch/roll never exceed the physical
    /// range, whatever the inputs.
    #[test]
    fn fusion_angles_bounded(
        samples in prop::collection::vec((-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0), 1..200),
    ) {
        let mut f = ComplementaryFilter::new(100.0, 0.98);
        for (a, b, c) in samples {
            let e = f.update([a, b, c], [b, c, a]);
            prop_assert!(e.pitch.is_finite() && e.roll.is_finite() && e.yaw.is_finite());
            prop_assert!(e.pitch.abs() <= std::f64::consts::PI + 0.6);
            prop_assert!(e.roll.abs() <= std::f64::consts::PI + 0.6);
        }
    }
}
