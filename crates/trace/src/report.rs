//! Wall-clock attribution: folds a drained [`Timeline`] into per-name
//! and per-thread aggregates.
//!
//! Per thread, begin/end events are matched with a span stack. Each
//! matched span contributes to its name's **total** time; **self** time
//! subtracts the time spent in nested spans, so a `par.task` that
//! spends most of its life inside `nn.dense` shows the overhead, not
//! the kernel, as its self time. Unmatched events — a begin whose end
//! was never written, or an end whose begin was overwritten by ring
//! wraparound — are counted and skipped rather than guessed at, so a
//! wrapped ring degrades attribution coverage, never correctness.

use crate::{EventKind, Timeline};
use std::collections::BTreeMap;

/// Aggregate of one span name on one thread (or globally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Completed (matched) spans, or marks for instants.
    pub count: u64,
    /// Total nanoseconds inside the span, nested spans included.
    pub total_ns: u64,
    /// Total nanoseconds minus time spent in nested spans.
    pub self_ns: u64,
}

impl SpanAgg {
    fn add(&mut self, total_ns: u64, self_ns: u64) {
        self.count += 1;
        self.total_ns += total_ns;
        self.self_ns += self_ns;
    }
}

/// One thread's attribution.
#[derive(Debug, Clone)]
pub struct ThreadReport {
    /// Thread id as drained.
    pub tid: u32,
    /// Thread label as drained.
    pub label: String,
    /// Timestamp of the thread's first drained event.
    pub first_ts_ns: u64,
    /// Timestamp of the thread's last drained event.
    pub last_ts_ns: u64,
    /// Nanoseconds covered by *top-level* spans (depth 1), i.e. time
    /// the thread was demonstrably inside traced work.
    pub top_level_ns: u64,
    /// Per-name aggregates (spans and instants).
    pub spans: BTreeMap<String, SpanAgg>,
    /// Begin events whose end never arrived plus end events whose begin
    /// was lost (wraparound, disarm mid-span).
    pub unmatched: u64,
}

/// The full attribution report.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Wall-clock span of the drained window: latest event minus
    /// earliest event across all threads, in nanoseconds.
    pub wall_ns: u64,
    /// Per-thread breakdowns, in tid order.
    pub threads: Vec<ThreadReport>,
}

impl Attribution {
    /// Sums one name's aggregate across all threads.
    pub fn total(&self, name: &str) -> SpanAgg {
        let mut agg = SpanAgg::default();
        for t in &self.threads {
            if let Some(s) = t.spans.get(name) {
                agg.count += s.count;
                agg.total_ns += s.total_ns;
                agg.self_ns += s.self_ns;
            }
        }
        agg
    }

    /// Sums the aggregates of every name for which `pred` holds.
    pub fn total_matching(&self, pred: impl Fn(&str) -> bool) -> SpanAgg {
        let mut agg = SpanAgg::default();
        for t in &self.threads {
            for (name, s) in &t.spans {
                if pred(name) {
                    agg.count += s.count;
                    agg.total_ns += s.total_ns;
                    agg.self_ns += s.self_ns;
                }
            }
        }
        agg
    }

    /// Every distinct span name seen, with its global aggregate, sorted
    /// by descending total time.
    pub fn by_total(&self) -> Vec<(String, SpanAgg)> {
        let mut merged: BTreeMap<&str, SpanAgg> = BTreeMap::new();
        for t in &self.threads {
            for (name, s) in &t.spans {
                let e = merged.entry(name.as_str()).or_default();
                e.count += s.count;
                e.total_ns += s.total_ns;
                e.self_ns += s.self_ns;
            }
        }
        let mut out: Vec<(String, SpanAgg)> = merged
            .into_iter()
            .map(|(n, a)| (n.to_string(), a))
            .collect();
        out.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(&b.0)));
        out
    }
}

struct Open {
    name: u32,
    start_ns: u64,
    child_ns: u64,
}

/// Computes the attribution of a drained timeline.
pub fn attribute(timeline: &Timeline) -> Attribution {
    let name_of = |id: u32| {
        timeline
            .names
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("?")
    };
    let mut threads = Vec::with_capacity(timeline.threads.len());
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    for t in &timeline.threads {
        let mut spans: BTreeMap<String, SpanAgg> = BTreeMap::new();
        let mut stack: Vec<Open> = Vec::new();
        let mut top_level_ns = 0u64;
        let mut unmatched = 0u64;
        for e in &t.events {
            min_ts = min_ts.min(e.ts_ns);
            max_ts = max_ts.max(e.ts_ns);
            match e.kind {
                EventKind::Begin => stack.push(Open {
                    name: e.name,
                    start_ns: e.ts_ns,
                    child_ns: 0,
                }),
                EventKind::End => {
                    // Pop until the matching begin: an unmatched inner
                    // begin (its end lost to wraparound or disarm) is
                    // discarded rather than letting the stack skew every
                    // later span.
                    let at = stack.iter().rposition(|o| o.name == e.name);
                    match at {
                        Some(pos) => {
                            unmatched += (stack.len() - pos - 1) as u64;
                            stack.truncate(pos + 1);
                            let open = stack.pop().expect("pos is in range");
                            let dur = e.ts_ns.saturating_sub(open.start_ns);
                            spans
                                .entry(name_of(open.name).to_string())
                                .or_default()
                                .add(dur, dur.saturating_sub(open.child_ns));
                            match stack.last_mut() {
                                Some(parent) => parent.child_ns += dur,
                                None => top_level_ns += dur,
                            }
                        }
                        None => unmatched += 1,
                    }
                }
                EventKind::Instant => {
                    spans.entry(name_of(e.name).to_string()).or_default().count += 1;
                }
            }
        }
        unmatched += stack.len() as u64;
        let (first, last) = match (t.events.first(), t.events.last()) {
            (Some(f), Some(l)) => (f.ts_ns, l.ts_ns),
            _ => (0, 0),
        };
        threads.push(ThreadReport {
            tid: t.tid,
            label: t.label.clone(),
            first_ts_ns: first,
            last_ts_ns: last,
            top_level_ns,
            spans,
            unmatched,
        });
    }
    Attribution {
        wall_ns: max_ts.saturating_sub(if min_ts == u64::MAX { 0 } else { min_ts }),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadTimeline, TraceEvent};

    fn ev(ts_ns: u64, name: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { ts_ns, name, kind }
    }

    fn tl(names: &[&str], events: Vec<TraceEvent>) -> Timeline {
        Timeline {
            names: names.iter().map(|s| s.to_string()).collect(),
            threads: vec![ThreadTimeline {
                tid: 1,
                label: "main".to_string(),
                events,
                dropped: 0,
            }],
        }
    }

    #[test]
    fn nested_spans_split_total_and_self() {
        // task [0, 100] containing kernel [20, 80].
        let timeline = tl(
            &["task", "kernel"],
            vec![
                ev(0, 0, EventKind::Begin),
                ev(20, 1, EventKind::Begin),
                ev(80, 1, EventKind::End),
                ev(100, 0, EventKind::End),
            ],
        );
        let attr = attribute(&timeline);
        let task = attr.total("task");
        let kernel = attr.total("kernel");
        assert_eq!(task.total_ns, 100);
        assert_eq!(task.self_ns, 40);
        assert_eq!(kernel.total_ns, 60);
        assert_eq!(kernel.self_ns, 60);
        assert_eq!(attr.threads[0].top_level_ns, 100);
        assert_eq!(attr.wall_ns, 100);
        assert_eq!(attr.threads[0].unmatched, 0);
    }

    #[test]
    fn unmatched_events_are_skipped_not_guessed() {
        // An end with no begin (wrapped away) and a begin with no end.
        let timeline = tl(
            &["a", "b"],
            vec![
                ev(10, 0, EventKind::End),
                ev(20, 1, EventKind::Begin),
                ev(30, 1, EventKind::End),
                ev(40, 0, EventKind::Begin),
            ],
        );
        let attr = attribute(&timeline);
        assert_eq!(attr.total("a").count, 0, "torn span never counted");
        assert_eq!(attr.total("b").total_ns, 10);
        assert_eq!(attr.threads[0].unmatched, 2);
    }

    #[test]
    fn interleaved_lost_end_does_not_skew_parent() {
        // outer begins, inner begins (its end lost), outer ends: the
        // inner open is discarded, outer still closes correctly.
        let timeline = tl(
            &["outer", "inner"],
            vec![
                ev(0, 0, EventKind::Begin),
                ev(10, 1, EventKind::Begin),
                ev(50, 0, EventKind::End),
            ],
        );
        let attr = attribute(&timeline);
        assert_eq!(attr.total("outer").total_ns, 50);
        assert_eq!(attr.total("inner").count, 0);
        assert_eq!(attr.threads[0].unmatched, 1);
    }

    #[test]
    fn instants_count_without_duration() {
        let timeline = tl(
            &["mark"],
            vec![ev(5, 0, EventKind::Instant), ev(9, 0, EventKind::Instant)],
        );
        let attr = attribute(&timeline);
        let mark = attr.total("mark");
        assert_eq!(mark.count, 2);
        assert_eq!(mark.total_ns, 0);
    }

    #[test]
    fn by_total_orders_descending() {
        let timeline = tl(
            &["short", "long"],
            vec![
                ev(0, 1, EventKind::Begin),
                ev(100, 1, EventKind::End),
                ev(100, 0, EventKind::Begin),
                ev(110, 0, EventKind::End),
            ],
        );
        let order = attribute(&timeline).by_total();
        assert_eq!(order[0].0, "long");
        assert_eq!(order[1].0, "short");
    }
}
