//! Chrome trace-event JSON rendering.
//!
//! Emits the object form (`{"traceEvents": […]}`) of the [trace event
//! format] that Perfetto and `chrome://tracing` load directly: `B`/`E`
//! duration events, thread-scoped `i` instants, and one `M` metadata
//! record per thread carrying its label. Timestamps are microseconds
//! (fractional, from the nanosecond ring timestamps).
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{EventKind, Timeline};

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders `timeline` as a Chrome trace-event JSON document.
pub fn to_chrome_json(timeline: &Timeline) -> String {
    let mut out = String::with_capacity(64 + timeline.event_count() * 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };
    for thread in &timeline.threads {
        push_sep(&mut out);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&thread.tid.to_string());
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, &thread.label);
        out.push_str("\"}}");
        for event in &thread.events {
            let name = timeline
                .names
                .get(event.name as usize)
                .map(String::as_str)
                .unwrap_or("?");
            let ph = match event.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            push_sep(&mut out);
            out.push_str("{\"name\":\"");
            escape_into(&mut out, name);
            out.push_str("\",\"ph\":\"");
            out.push_str(ph);
            out.push_str("\",\"pid\":1,\"tid\":");
            out.push_str(&thread.tid.to_string());
            out.push_str(",\"ts\":");
            // Microseconds with nanosecond precision preserved.
            let us = event.ts_ns / 1_000;
            let frac = event.ts_ns % 1_000;
            out.push_str(&us.to_string());
            out.push('.');
            out.push_str(&format!("{frac:03}"));
            if event.kind == EventKind::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ThreadTimeline, TraceEvent};

    fn timeline() -> Timeline {
        Timeline {
            names: vec!["nn.conv".to_string(), "mark\"x\"".to_string()],
            threads: vec![ThreadTimeline {
                tid: 3,
                label: "worker-1".to_string(),
                events: vec![
                    TraceEvent {
                        ts_ns: 1_234_567,
                        name: 0,
                        kind: EventKind::Begin,
                    },
                    TraceEvent {
                        ts_ns: 2_000_001,
                        name: 1,
                        kind: EventKind::Instant,
                    },
                    TraceEvent {
                        ts_ns: 2_500_000,
                        name: 0,
                        kind: EventKind::End,
                    },
                ],
                dropped: 0,
            }],
        }
    }

    #[test]
    fn renders_all_phases_with_metadata() {
        let json = to_chrome_json(&timeline());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"args\":{\"name\":\"worker-1\"}"));
        assert!(
            json.contains("\"name\":\"nn.conv\",\"ph\":\"B\",\"pid\":1,\"tid\":3,\"ts\":1234.567}")
        );
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"ph\":\"E\""));
        // Name escaping survives.
        assert!(json.contains("mark\\\"x\\\""));
    }

    #[test]
    fn empty_timeline_is_valid() {
        let tl = Timeline {
            names: Vec::new(),
            threads: Vec::new(),
        };
        assert_eq!(
            to_chrome_json(&tl),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
