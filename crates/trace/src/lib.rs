//! # prefall-trace — always-on timeline tracing
//!
//! The telemetry crate answers *what happened* (counters, histograms);
//! this crate answers *where the time went*. It is a std-only,
//! allocation-free-after-warmup timeline tracer:
//!
//! * **Fixed-size events** — every [`begin`] / [`end`] / [`instant`]
//!   writes one 16-byte record (monotonic nanosecond timestamp, interned
//!   `u32` name, event kind) into a **thread-local ring buffer** that is
//!   pre-allocated when the thread first traces. After that warm-up, an
//!   armed event performs **zero heap allocations** — the workspace-root
//!   counting-allocator test (`tests/noop_overhead.rs`) proves it on the
//!   streaming detector path.
//! * **Interned names** — span names are interned once (usually at
//!   module init through a `OnceLock`) into [`NameId`]s; the hot path
//!   never hashes or copies strings.
//! * **Disarmed is nearly free** — when [`armed`] is `false` (the
//!   default), every tracing entry point is one relaxed atomic load and
//!   a branch. Arm with [`arm`], stop with [`disarm`].
//! * **Two granularities** — coarse spans (experiment cells, CV folds,
//!   pool tasks, whole forward passes) record whenever armed; per-kernel
//!   spans sit behind the opt-in **detail level** ([`set_detail`],
//!   [`trace_detail_span!`]). An emitted event costs ~2× a monotonic
//!   clock read, which is real money inside a 30 µs forward pass —
//!   coarse mode keeps the armed streaming detector within its ≤ 3 %
//!   overhead budget, detail mode buys the per-layer decomposition when
//!   you ask for it.
//! * **Drain, don't stream** — [`drain`] snapshots every thread's ring
//!   (oldest event first), clears them, and returns a [`Timeline`] that
//!   renders to Chrome trace-event JSON ([`Timeline::to_chrome_json`],
//!   loadable in Perfetto or `chrome://tracing`) or folds into a
//!   wall-clock [`report::Attribution`].
//!
//! Rings are bounded: when a thread outruns its capacity the oldest
//! events are overwritten and counted in [`ThreadTimeline::dropped`] —
//! tracing never stalls or grows the heap mid-flight.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod report;

use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events) when [`arm`] is given zero.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// An interned span name. Obtain via [`intern`]; cheap to copy and
/// compare, and the only name form the hot path touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(u32);

impl NameId {
    /// The raw interning index (an index into [`Timeline::names`]).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// What one trace event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point in time with no duration.
    Instant,
}

const KIND_BEGIN: u8 = 0;
const KIND_END: u8 = 1;
const KIND_INSTANT: u8 = 2;

/// One fixed-size ring record.
#[derive(Debug, Clone, Copy)]
struct Event {
    ts_ns: u64,
    name: u32,
    kind: u8,
}

/// A drained event (kind decoded, timestamps relative to the process
/// trace epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch (first traced event of the
    /// process).
    pub ts_ns: u64,
    /// Interned name; index into [`Timeline::names`].
    pub name: u32,
    /// Begin / end / instant.
    pub kind: EventKind,
}

/// One thread's drained slice of the timeline, oldest event first.
#[derive(Debug, Clone)]
pub struct ThreadTimeline {
    /// Stable per-thread id (registration order, starting at 1).
    pub tid: u32,
    /// The thread's name at registration, or `thread-{tid}`.
    pub label: String,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten by ring wraparound since the last drain.
    pub dropped: u64,
}

/// A drained snapshot of every traced thread.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Per-thread event streams (threads with no events are omitted).
    pub threads: Vec<ThreadTimeline>,
    /// The interned-name table; `TraceEvent::name` indexes into it.
    pub names: Vec<String>,
}

impl Timeline {
    /// Total drained events across threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Total events lost to ring wraparound across threads.
    pub fn dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Renders the timeline as Chrome trace-event JSON (the
    /// `{"traceEvents": […]}` object form), loadable in Perfetto and
    /// `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Folds the timeline into a per-name / per-thread wall-clock
    /// attribution report.
    pub fn attribution(&self) -> report::Attribution {
        report::attribute(self)
    }
}

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

static ARMED: AtomicBool = AtomicBool::new(false);
static DETAIL: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Default)]
struct Interner {
    index: HashMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::default()))
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

#[derive(Debug)]
struct RingBuf {
    events: Vec<Event>,
    /// Next overwrite position once the buffer is full.
    head: usize,
    /// Events overwritten since the last drain.
    dropped: u64,
}

impl RingBuf {
    fn with_capacity(cap: usize) -> Self {
        Self {
            events: Vec::with_capacity(cap.max(1)),
            head: 0,
            dropped: 0,
        }
    }

    #[inline]
    fn push(&mut self, e: Event) {
        if self.events.len() < self.events.capacity() {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % self.events.len();
            self.dropped += 1;
        }
    }

    /// Copies the buffered events oldest-first and resets the ring,
    /// keeping its allocation.
    fn drain_ordered(&mut self) -> (Vec<TraceEvent>, u64) {
        let decode = |e: &Event| TraceEvent {
            ts_ns: e.ts_ns,
            name: e.name,
            kind: match e.kind {
                KIND_BEGIN => EventKind::Begin,
                KIND_END => EventKind::End,
                _ => EventKind::Instant,
            },
        };
        let mut out = Vec::with_capacity(self.events.len());
        if self.events.len() == self.events.capacity() && self.head > 0 {
            out.extend(self.events[self.head..].iter().map(decode));
            out.extend(self.events[..self.head].iter().map(decode));
        } else {
            out.extend(self.events.iter().map(decode));
        }
        let dropped = self.dropped;
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
        (out, dropped)
    }
}

#[derive(Debug)]
struct ThreadRing {
    tid: u32,
    label: String,
    buf: Mutex<RingBuf>,
}

thread_local! {
    static RING: OnceCell<Arc<ThreadRing>> = const { OnceCell::new() };
}

fn register_current_thread() -> Arc<ThreadRing> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(ThreadRing {
        tid,
        label,
        buf: Mutex::new(RingBuf::with_capacity(CAPACITY.load(Ordering::Relaxed))),
    });
    registry()
        .lock()
        .expect("trace registry poisoned")
        .push(Arc::clone(&ring));
    ring
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Whether events are currently being recorded. The disarmed fast path
/// of every tracing entry point is this load plus a branch.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Starts recording. `capacity_per_thread` sizes each thread's ring in
/// events (`0` keeps [`DEFAULT_CAPACITY`]); rings of already-registered
/// threads are cleared and resized, so arming is also a reset.
pub fn arm(capacity_per_thread: usize) {
    let cap = if capacity_per_thread == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity_per_thread
    };
    CAPACITY.store(cap, Ordering::Relaxed);
    for ring in registry().lock().expect("trace registry poisoned").iter() {
        let mut buf = ring.buf.lock().expect("trace ring poisoned");
        *buf = RingBuf::with_capacity(cap);
    }
    // Initialise the epoch before the first event so early timestamps
    // don't race the OnceLock.
    let _ = epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// Stops recording (and drops back out of detail mode). Buffered
/// events stay drainable.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    DETAIL.store(false, Ordering::Relaxed);
}

/// Whether per-kernel detail spans ([`trace_detail_span!`]) are
/// currently recording. Always `false` while disarmed.
#[inline]
pub fn detailed() -> bool {
    DETAIL.load(Ordering::Relaxed) && armed()
}

/// Switches per-kernel detail spans on or off (requires [`arm`] to have
/// any effect). Coarse armed mode costs ~2 spans per classified window
/// on the streaming detector; detail mode adds a span per layer/kernel
/// inside the forward pass — an order of magnitude more events and the
/// reason it is opt-in.
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Relaxed);
}

/// Interns `name`, returning a stable [`NameId`]. Repeated calls with
/// the same string return the same id. This allocates — call it at
/// setup (e.g. from a `OnceLock` initialiser), not per event.
pub fn intern(name: &str) -> NameId {
    let mut inner = interner().lock().expect("trace interner poisoned");
    if let Some(&id) = inner.index.get(name) {
        return NameId(id);
    }
    let id = u32::try_from(inner.names.len()).expect("interned name table overflow");
    inner.names.push(name.to_owned());
    inner.index.insert(name.to_owned(), id);
    NameId(id)
}

#[inline]
fn emit(name: NameId, kind: u8) {
    if !armed() {
        return;
    }
    let ts_ns = epoch().elapsed().as_nanos() as u64;
    RING.with(|cell| {
        let ring = cell.get_or_init(register_current_thread);
        ring.buf.lock().expect("trace ring poisoned").push(Event {
            ts_ns,
            name: name.index(),
            kind,
        });
    });
}

/// Marks the start of a span on the current thread.
#[inline]
pub fn begin(name: NameId) {
    emit(name, KIND_BEGIN);
}

/// Marks the end of a span on the current thread.
#[inline]
pub fn end(name: NameId) {
    emit(name, KIND_END);
}

/// Marks an instantaneous point on the current thread.
#[inline]
pub fn instant(name: NameId) {
    emit(name, KIND_INSTANT);
}

/// RAII span: emits a begin on construction and the matching end on
/// drop. If tracing is disarmed between the two, the end is still
/// suppressed by the armed check, so a later drain sees at worst an
/// unmatched begin — which [`report::attribute`] tolerates.
#[must_use = "a trace span ends on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    name: NameId,
    live: bool,
}

impl SpanGuard {
    /// Opens a span (no-op when disarmed).
    #[inline]
    pub fn enter(name: NameId) -> Self {
        let live = armed();
        if live {
            begin(name);
        }
        Self { name, live }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if self.live {
            end(self.name);
        }
    }
}

/// Opens a [`SpanGuard`] without evaluating the name expression when
/// tracing is disarmed — use this on hot paths where even the lazy
/// `OnceLock` name lookup should be skipped:
///
/// ```ignore
/// let _g = prefall_trace::trace_span!(names().conv);
/// ```
#[macro_export]
macro_rules! trace_span {
    ($id:expr) => {
        if $crate::armed() {
            Some($crate::SpanGuard::enter($id))
        } else {
            None
        }
    };
}

/// Like [`trace_span!`], but the span only records in detail mode
/// ([`set_detail`]) — use it for per-kernel spans inside hot loops
/// where coarse armed tracing must stay within its overhead budget.
#[macro_export]
macro_rules! trace_detail_span {
    ($id:expr) => {
        if $crate::detailed() {
            Some($crate::SpanGuard::enter($id))
        } else {
            None
        }
    };
}

/// Drains every thread's ring: events are returned oldest-first per
/// thread, rings are cleared (capacity kept), and threads that recorded
/// nothing since the last drain are omitted. Safe to call while armed —
/// events racing the drain land in the next one.
pub fn drain() -> Timeline {
    let names = interner()
        .lock()
        .expect("trace interner poisoned")
        .names
        .clone();
    let mut threads = Vec::new();
    for ring in registry().lock().expect("trace registry poisoned").iter() {
        let (events, dropped) = ring
            .buf
            .lock()
            .expect("trace ring poisoned")
            .drain_ordered();
        if events.is_empty() && dropped == 0 {
            continue;
        }
        threads.push(ThreadTimeline {
            tid: ring.tid,
            label: ring.label.clone(),
            events,
            dropped,
        });
    }
    threads.sort_by_key(|t| t.tid);
    Timeline { threads, names }
}

/// The most recently drained trace, rendered as Chrome JSON — the
/// hand-off point between whatever drains (a profile run, an example)
/// and the `prefall-obsd` `/trace` endpoint that serves it.
#[derive(Debug, Default)]
pub struct LastTrace {
    json: Mutex<Option<String>>,
}

impl LastTrace {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the stored trace.
    pub fn store(&self, chrome_json: String) {
        *self.json.lock().expect("last-trace poisoned") = Some(chrome_json);
    }

    /// The stored trace, if any drain has been published yet.
    pub fn latest(&self) -> Option<String> {
        self.json.lock().expect("last-trace poisoned").clone()
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_records_nothing() {
        let _guard = test_lock();
        disarm();
        let before = drain().event_count();
        assert_eq!(before, 0, "pre-drain leaves rings empty");
        let a = intern("noop.span");
        begin(a);
        end(a);
        instant(a);
        let _g = trace_span!(intern("noop.guard"));
        assert_eq!(drain().event_count(), 0);
    }

    #[test]
    fn begin_end_round_trips_through_drain() {
        let _guard = test_lock();
        arm(1024);
        let work = intern("test.work");
        let mark = intern("test.mark");
        begin(work);
        instant(mark);
        end(work);
        disarm();
        let tl = drain();
        let my: Vec<&TraceEvent> = tl
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.name == work.index() || e.name == mark.index())
            .collect();
        assert_eq!(my.len(), 3);
        assert_eq!(my[0].kind, EventKind::Begin);
        assert_eq!(my[1].kind, EventKind::Instant);
        assert_eq!(my[2].kind, EventKind::End);
        assert!(my[0].ts_ns <= my[1].ts_ns && my[1].ts_ns <= my[2].ts_ns);
        assert_eq!(tl.names[work.index() as usize], "test.work");
        // A second drain is empty.
        assert_eq!(drain().event_count(), 0);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let _guard = test_lock();
        arm(8);
        let name = intern("test.wrap");
        for _ in 0..20 {
            instant(name);
        }
        disarm();
        let tl = drain();
        let t = tl
            .threads
            .iter()
            .find(|t| t.events.iter().any(|e| e.name == name.index()))
            .expect("this thread drained");
        assert_eq!(t.events.len(), 8, "ring keeps exactly its capacity");
        assert_eq!(t.dropped, 12);
        for pair in t.events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns, "oldest-first order");
        }
    }

    #[test]
    fn detail_spans_gate_on_the_detail_level() {
        let _guard = test_lock();
        arm(256);
        let fine = intern("test.detail");
        {
            let _g = trace_detail_span!(fine);
        }
        assert!(!detailed(), "arming alone must not enable detail");
        set_detail(true);
        assert!(detailed());
        {
            let _g = trace_detail_span!(fine);
        }
        disarm();
        assert!(!detailed(), "disarm drops detail too");
        let tl = drain();
        let fine_events = tl
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.name == fine.index())
            .count();
        assert_eq!(fine_events, 2, "only the detail-enabled span recorded");
    }

    #[test]
    fn intern_is_stable_and_deduplicating() {
        let a = intern("stable.name");
        let b = intern("stable.name");
        let c = intern("stable.other");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn last_trace_stores_and_serves() {
        let store = LastTrace::new();
        assert!(store.latest().is_none());
        store.store("{\"traceEvents\":[]}".to_string());
        assert_eq!(store.latest().as_deref(), Some("{\"traceEvents\":[]}"));
    }
}
