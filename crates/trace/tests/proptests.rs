//! Property tests for the trace ring buffer and name interner.
//!
//! The tracer's global arm/disarm state is shared across test threads,
//! so every case that arms takes `test_guard()` first; `arm()` clears
//! all registered rings, which also isolates cases from each other.

use prefall_trace::{arm, begin, disarm, drain, end, instant, intern, EventKind, NameId};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A fixed pool of names so the interner table stays bounded across
/// proptest cases.
fn name_pool() -> &'static [NameId; 8] {
    static POOL: OnceLock<[NameId; 8]> = OnceLock::new();
    POOL.get_or_init(|| {
        [
            intern("prop.n0"),
            intern("prop.n1"),
            intern("prop.n2"),
            intern("prop.n3"),
            intern("prop.n4"),
            intern("prop.n5"),
            intern("prop.n6"),
            intern("prop.n7"),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the capacity and however far the writer outruns it, a
    /// drain returns exactly the newest `min(emitted, capacity)` events
    /// in emission order (oldest first) and counts the rest as dropped.
    #[test]
    fn wraparound_drains_newest_suffix_oldest_first(
        cap in 1usize..64,
        emitted in 0usize..200,
        name_seed in 0u64..1000,
    ) {
        let _guard = test_guard();
        arm(cap);
        let pool = name_pool();
        let mut sequence: Vec<NameId> = Vec::with_capacity(emitted);
        let mut s = name_seed.wrapping_mul(2654435761).wrapping_add(1);
        for _ in 0..emitted {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let id = pool[(s % 8) as usize];
            sequence.push(id);
            instant(id);
        }
        disarm();
        let tl = drain();
        let kept = emitted.min(cap);
        if emitted == 0 {
            prop_assert_eq!(tl.event_count(), 0);
        } else {
            prop_assert_eq!(tl.threads.len(), 1, "only this thread recorded");
            let t = &tl.threads[0];
            prop_assert_eq!(t.events.len(), kept);
            prop_assert_eq!(t.dropped, (emitted - kept) as u64);
            // The drained slice is exactly the tail of the emitted
            // sequence, in order, with monotonic timestamps.
            let tail = &sequence[emitted - kept..];
            for (ev, expect) in t.events.iter().zip(tail) {
                prop_assert_eq!(ev.name, expect.index());
                prop_assert_eq!(ev.kind, EventKind::Instant);
            }
            for pair in t.events.windows(2) {
                prop_assert!(pair[0].ts_ns <= pair[1].ts_ns);
            }
        }
    }

    /// Well-nested spans survive wraparound without tearing: every
    /// span the attribution counts is fully matched, and the unmatched
    /// tally accounts exactly for the events wraparound chopped off.
    #[test]
    fn spans_are_never_torn_across_wraparound(
        cap in 2usize..48,
        depth in 1usize..6,
        repeats in 1usize..20,
    ) {
        let _guard = test_guard();
        arm(cap);
        let pool = name_pool();
        // `repeats` sequential stacks of `depth` nested spans.
        for _ in 0..repeats {
            for d in 0..depth {
                begin(pool[d % 8]);
            }
            for d in (0..depth).rev() {
                end(pool[d % 8]);
            }
        }
        disarm();
        let tl = drain();
        let attr = tl.attribution();
        let emitted = 2 * depth * repeats;
        let kept = emitted.min(cap);
        let matched: u64 = attr
            .threads
            .iter()
            .flat_map(|t| t.spans.values())
            .map(|s| s.count)
            .sum();
        let unmatched: u64 = attr.threads.iter().map(|t| t.unmatched).sum();
        // Every kept event is either half of a matched pair or counted
        // unmatched — nothing is silently invented or lost.
        prop_assert_eq!(2 * matched + unmatched, kept as u64);
        // Totals are internally consistent.
        for t in &attr.threads {
            for agg in t.spans.values() {
                prop_assert!(agg.self_ns <= agg.total_ns);
            }
        }
    }

    /// Interning is a pure function of the string: any interleaving of
    /// lookups (including from several threads) maps equal strings to
    /// equal ids and distinct strings to distinct ids, and the drained
    /// name table resolves every id back to its string.
    #[test]
    fn interning_is_stable_under_concurrency(seed in 0u64..10_000) {
        let names: Vec<String> = (0..6).map(|i| format!("prop.stable{}", (seed % 97) * 6 + i)).collect();
        let first: Vec<NameId> = names.iter().map(|n| intern(n)).collect();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || names.iter().map(|n| intern(n)).collect::<Vec<_>>())
            })
            .collect();
        for h in handles {
            let ids = h.join().expect("intern thread panicked");
            prop_assert_eq!(&ids, &first, "same strings, same ids, every thread");
        }
        for i in 0..first.len() {
            for j in (i + 1)..first.len() {
                prop_assert_ne!(first[i], first[j], "distinct strings, distinct ids");
            }
        }
        let table = {
            let _guard = test_guard();
            drain().names
        };
        for (id, name) in first.iter().zip(&names) {
            prop_assert_eq!(&table[id.index() as usize], name);
        }
    }
}
