//! Property: no interleaving of acquire (ingest), release (reap) and
//! resume across shards ever leaks a session or lets one wearer
//! observe another's window contents.
//!
//! * **No leaks** — sessions only ever move between the active maps
//!   and the free lists, so `created == active + free` holds after
//!   every operation, and parked checkpoints never exceed their bound.
//! * **Isolation** — after an arbitrary interleaving (including reaps
//!   that recycle one wearer's buffers into another wearer's session),
//!   every wearer's accumulated probability stream is bit-identical to
//!   an uninterrupted run of that wearer alone. Any cross-session
//!   contamination (a shared window, a dirty recycled buffer, a
//!   misrouted batch) breaks the bit-equality.

use prefall_core::detector::{DetectorConfig, GuardConfig};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_core::session::ModelBundle;
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_fleet::{BatchSample, Fleet, FleetConfig, IngestBatch, IngestStatus};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn bundle() -> ModelBundle {
    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 0.5,
        consecutive: 3,
        guard: GuardConfig::default(),
    };
    let net = ModelKind::ProposedCnn
        .build(cfg.pipeline.segmentation.window(), 9, 1)
        .unwrap();
    ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap()
}

/// Wearer-distinct deterministic motion: contamination between any two
/// wearers' windows changes someone's probabilities.
fn motion(wearer: u64, tick: u64) -> ([f32; 3], [f32; 3]) {
    let w = wearer as f32 + 1.0;
    let t = tick as f32 * 0.06;
    (
        [0.05 * (t * w).sin(), -0.04 * (t + w).cos(), 1.0],
        [15.0 * (t + w).sin(), 6.0 * (t * w * 0.5).cos(), w],
    )
}

fn batch(wearer: u64, seq: u64, len: u64) -> IngestBatch {
    IngestBatch {
        wearer,
        seq,
        samples: (0..len)
            .map(|i| {
                let (accel, gyro) = motion(wearer, seq + i);
                BatchSample::Sample { accel, gyro }
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_acquire_release_reap_never_leaks_or_cross_contaminates(
        ops in prop::collection::vec((0u64..4, 0usize..5), 4..28),
        batch_len in 8u64..22,
    ) {
        let fleet = Fleet::new(bundle(), FleetConfig {
            shards: 3,
            max_parked: 8,
            ..FleetConfig::default()
        });

        let mut next_seq: HashMap<u64, u64> = HashMap::new();
        let mut probs: HashMap<u64, Vec<u32>> = HashMap::new();

        for &(wearer, action) in &ops {
            if action == 4 {
                // Release: park every session and recycle its buffers.
                fleet.reap_idle(Duration::ZERO);
            } else {
                let seq = *next_seq.get(&wearer).unwrap_or(&0);
                let reply = fleet.ingest_one(&batch(wearer, seq, batch_len));
                prop_assert_eq!(reply.status, IngestStatus::Accepted);
                prop_assert!(!reply.regressed);
                next_seq.insert(wearer, seq + batch_len);
                probs.entry(wearer).or_default().extend(reply.probs_bits);
            }

            // Leak invariant after every single operation.
            let s = fleet.stats();
            prop_assert_eq!(
                s.sessions_created,
                (s.sessions_active + s.sessions_free) as u64,
                "sessions leaked or double-counted"
            );
            prop_assert!(s.sessions_parked as u64 <= 8, "parked store unbounded");
        }

        // Isolation: each wearer alone, uninterrupted, must produce the
        // identical bit stream.
        for (&wearer, interleaved) in &probs {
            let alone = Fleet::new(bundle(), FleetConfig::default());
            let mut solo: Vec<u32> = Vec::new();
            let mut seq = 0u64;
            while seq < *next_seq.get(&wearer).unwrap_or(&0) {
                solo.extend(alone.ingest_one(&batch(wearer, seq, batch_len)).probs_bits);
                seq += batch_len;
            }
            prop_assert_eq!(
                interleaved,
                &solo,
                "wearer {} observed another session's state",
                wearer
            );
        }
    }
}
