//! Sharded fleet ingest must never change results: batches fan out
//! over the `prefall-par` pool, and every shard serves its wearers in
//! input order against the immutable shared bundle — so replies are
//! **bit-identical** for any thread count, and every clean stream
//! matches the serial single-stream detector exactly. This extends the
//! workspace-parallelism guarantee of `crates/core`'s
//! `thread_determinism.rs` to the fleet serving layer.

use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_core::session::ModelBundle;
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_fleet::{BatchSample, Fleet, FleetConfig, IngestBatch, IngestReply};

fn detector_config() -> DetectorConfig {
    DetectorConfig {
        pipeline: PipelineConfig::paper(400.0, Overlap::Half),
        threshold: 0.5,
        consecutive: 3,
        guard: GuardConfig::default(),
    }
}

fn bundle() -> ModelBundle {
    let cfg = detector_config();
    let net = ModelKind::ProposedCnn
        .build(cfg.pipeline.segmentation.window(), 9, 1)
        .unwrap();
    ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap()
}

/// Deterministic, wearer-distinct motion.
fn motion(wearer: u64, tick: u64) -> ([f32; 3], [f32; 3]) {
    let w = wearer as f32;
    let t = tick as f32 * 0.05;
    (
        [0.04 * (t + w).sin(), 0.02 * (t * 1.7).cos(), 1.0],
        [
            12.0 * (t + w * 0.3).sin(),
            -7.0 * t.cos(),
            3.0 * (w + 1.0).recip(),
        ],
    )
}

/// The interleaved workload: `wearers` streams, each `total` ticks,
/// uplinked in `batch_len`-tick batches, all wearers mixed per round.
fn workload(wearers: u64, total: u64, batch_len: u64) -> Vec<Vec<IngestBatch>> {
    (0..total)
        .step_by(batch_len as usize)
        .map(|start| {
            (0..wearers)
                .map(|w| IngestBatch {
                    wearer: w,
                    seq: start,
                    samples: (0..batch_len.min(total - start))
                        .map(|i| {
                            let (accel, gyro) = motion(w, start + i);
                            BatchSample::Sample { accel, gyro }
                        })
                        .collect(),
                })
                .collect()
        })
        .collect()
}

/// Runs the workload on a fresh fleet with the given thread override
/// and returns every reply round.
fn run(threads: Option<usize>, rounds: &[Vec<IngestBatch>]) -> Vec<Vec<IngestReply>> {
    let fleet = Fleet::new(
        bundle(),
        FleetConfig {
            threads,
            shards: 4,
            ..FleetConfig::default()
        },
    );
    rounds.iter().map(|r| fleet.ingest_many(r)).collect()
}

#[test]
fn sharded_ingest_is_bit_identical_for_any_thread_count() {
    let rounds = workload(8, 240, 30);
    let serial = run(Some(1), &rounds);
    let two = run(Some(2), &rounds);
    let eight = run(Some(8), &rounds);
    // `IngestReply: PartialEq` compares statuses, counts and the
    // bit-exact `probs_bits` of every window of every wearer.
    assert_eq!(serial, two, "2 threads changed fleet replies");
    assert_eq!(serial, eight, "8 threads changed fleet replies");
}

#[test]
fn every_clean_stream_matches_the_serial_detector_bitwise() {
    let wearers = 5u64;
    let total = 200u64;
    let rounds = workload(wearers, total, 25);
    let replies = run(Some(4), &rounds);

    for w in 0..wearers {
        let fleet_probs: Vec<u32> = replies
            .iter()
            .flatten()
            .filter(|r| r.wearer == w)
            .flat_map(|r| r.probs_bits.iter().copied())
            .collect();

        let net = ModelKind::ProposedCnn
            .build(detector_config().pipeline.segmentation.window(), 9, 1)
            .unwrap();
        let mut det =
            StreamingDetector::new(net, Normalizer::identity(9), detector_config()).unwrap();
        let mut serial = Vec::new();
        for t in 0..total {
            let (a, g) = motion(w, t);
            if let Some(p) = det.push_sample(a, g) {
                serial.push(p.to_bits());
            }
        }
        assert!(!serial.is_empty());
        assert_eq!(fleet_probs, serial, "wearer {w} diverged from serial path");
    }
}
