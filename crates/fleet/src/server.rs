//! The TCP ingest endpoint: a hand-rolled HTTP/1.1 server over the
//! shared `prefall-obsd` plumbing, hardened the way the fleet needs.
//!
//! ```text
//! accept thread ──try_send──▶ bounded queue ──recv──▶ conn workers
//!       │ (queue full)                                     │
//!       ▼                                                  ▼
//!  429 + Retry-After                       keep-alive request loop,
//!  straight on the socket                  per-request wall deadline
//! ```
//!
//! Robustness contract, in order of degradation:
//!
//! 1. **Deadlines** — every request read is armed with the time left
//!    until [`FleetConfig::conn_deadline`]; a stalled or trickling
//!    client is cut off and counted (`fleet.conn_timeouts`).
//! 2. **Backpressure** — when in-flight pressure reaches
//!    [`FleetConfig::reject_at`], or the accept queue is full, the
//!    server answers `429 Too Many Requests` with a `Retry-After`
//!    hint. Consecutive rejections on one connection double the hint
//!    (exponential backoff, capped at 64× the base) so a storm of
//!    retries spreads out instead of thundering back.
//! 3. **Shedding** — between [`FleetConfig::shed_at`] and `reject_at`
//!    the fleet still serves every batch but skips inference,
//!    degrading triggering to the accel-confirmed-only policy; the
//!    reply carries `"shed": true` so clients know.
//! 4. Only past all of that are requests refused — never silently
//!    dropped.
//!
//! [`FleetConfig::conn_deadline`]: crate::FleetConfig::conn_deadline
//! [`FleetConfig::reject_at`]: crate::FleetConfig::reject_at
//! [`FleetConfig::shed_at`]: crate::FleetConfig::shed_at

use crate::protocol::{IngestBatch, IngestStatus};
use crate::Fleet;
use prefall_obsd::http;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running ingest server. Dropping it (or calling
/// [`FleetServer::shutdown`]) stops the accept thread, drains the
/// workers and joins them.
#[derive(Debug)]
pub struct FleetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FleetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving the
    /// fleet's ingest protocol on it.
    ///
    /// # Errors
    ///
    /// Propagates bind/listen failures.
    pub fn start(addr: &str, fleet: Arc<Fleet>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let cfg = fleet.config();
        let queue_cap = cfg.queue_cap.max(1);
        let n_workers = cfg.conn_workers.max(1);
        let base_retry_ms = cfg.retry_after_ms.max(1);

        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_cap);
        let rx = Arc::new(Mutex::new(rx));
        let queued = Arc::new(AtomicUsize::new(0));

        let accept = {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            let queued = Arc::clone(&queued);
            std::thread::Builder::new()
                .name("prefall-fleet-accept".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                // Streams are served (and armed with
                                // deadlines) in blocking mode.
                                let _ = stream.set_nonblocking(false);
                                fleet.pressure_inc();
                                let depth = queued.fetch_add(1, Ordering::Relaxed) + 1;
                                fleet.note_queue_depth(depth);
                                if let Err(TrySendError::Full(mut stream))
                                | Err(TrySendError::Disconnected(mut stream)) =
                                    tx.try_send(stream)
                                {
                                    // Queue full: refuse at the door
                                    // with a retry hint rather than
                                    // letting the connection rot.
                                    queued.fetch_sub(1, Ordering::Relaxed);
                                    fleet.pressure_dec();
                                    let _ = respond_429(&mut stream, base_retry_ms, false);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    // `tx` drops here; workers drain and see the
                    // channel disconnect.
                })
                .expect("spawn fleet accept thread")
        };

        let workers = (0..n_workers)
            .map(|i| {
                let fleet = Arc::clone(&fleet);
                let stop = Arc::clone(&stop);
                let rx = Arc::clone(&rx);
                let queued = Arc::clone(&queued);
                std::thread::Builder::new()
                    .name(format!("prefall-fleet-conn-{i}"))
                    .spawn(move || loop {
                        let next = rx
                            .lock()
                            .expect("ingest queue lock")
                            .recv_timeout(Duration::from_millis(100));
                        match next {
                            Ok(stream) => {
                                let depth = queued.fetch_sub(1, Ordering::Relaxed) - 1;
                                fleet.note_queue_depth(depth);
                                serve_connection(&fleet, stream);
                                fleet.pressure_dec();
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .expect("spawn fleet connection worker")
            })
            .collect();

        Ok(Self {
            addr: local,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight connections and joins every
    /// thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Exponential backoff hint: consecutive rejections on one connection
/// double the base, capped at 64×.
fn backoff_ms(base_ms: u64, consecutive_rejects: u32) -> u64 {
    base_ms.saturating_mul(1u64 << consecutive_rejects.saturating_sub(1).min(6))
}

/// Writes a `429 Too Many Requests` with `Retry-After` (whole seconds,
/// rounded up, as HTTP wants) and the precise `Retry-After-Ms` hint.
fn respond_429(stream: &mut TcpStream, retry_ms: u64, keep_alive: bool) -> io::Result<()> {
    let retry_s = retry_ms.div_ceil(1000).max(1);
    http::respond_with(
        stream,
        429,
        "Too Many Requests",
        "text/plain; charset=utf-8",
        b"overloaded; retry after backoff\n",
        false,
        keep_alive,
        &[
            ("Retry-After", retry_s.to_string()),
            ("Retry-After-Ms", retry_ms.to_string()),
        ],
    )
}

/// Serves one connection's keep-alive request loop.
fn serve_connection(fleet: &Fleet, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let cfg = fleet.config();
    let mut consecutive_rejects: u32 = 0;

    loop {
        let deadline = Instant::now() + cfg.conn_deadline;
        let request = match http::read_request(&mut reader, deadline, cfg.max_body) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) => {
                if http::is_timeout(&e) {
                    fleet.note_conn_timeout();
                } else if e.kind() == io::ErrorKind::InvalidData {
                    let _ = http::respond_with(
                        &mut stream,
                        400,
                        "Bad Request",
                        "text/plain; charset=utf-8",
                        format!("{e}\n").as_bytes(),
                        false,
                        false,
                        &[],
                    );
                }
                return;
            }
        };

        let keep_alive = request.keep_alive;
        let served = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/ingest") => serve_ingest(fleet, &mut stream, &request.body, keep_alive, {
                &mut consecutive_rejects
            }),
            ("GET" | "HEAD", "/fleet") => http::respond_with(
                &mut stream,
                200,
                "OK",
                "application/json",
                fleet.stats().to_json().to_string().as_bytes(),
                request.method == "HEAD",
                keep_alive,
                &[],
            ),
            ("GET" | "HEAD", "/healthz") => http::respond_with(
                &mut stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                b"ok\n",
                request.method == "HEAD",
                keep_alive,
                &[],
            ),
            ("GET" | "HEAD", "/") => http::respond_with(
                &mut stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                b"prefall-fleet ingest: POST /ingest, GET /fleet /healthz\n",
                request.method == "HEAD",
                keep_alive,
                &[],
            ),
            _ => http::respond_with(
                &mut stream,
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                b"not found\n",
                false,
                keep_alive,
                &[],
            ),
        };
        if served.is_err() || !keep_alive {
            return;
        }
    }
}

/// Serves one `POST /ingest` request, applying the backpressure ladder.
fn serve_ingest(
    fleet: &Fleet,
    stream: &mut TcpStream,
    body: &[u8],
    keep_alive: bool,
    consecutive_rejects: &mut u32,
) -> io::Result<()> {
    let cfg = fleet.config();
    if fleet.should_reject() {
        *consecutive_rejects += 1;
        return respond_429(
            stream,
            backoff_ms(cfg.retry_after_ms.max(1), *consecutive_rejects),
            keep_alive,
        );
    }
    let batch = match IngestBatch::from_bytes(body) {
        Ok(batch) => batch,
        Err(e) => {
            return http::respond_with(
                stream,
                400,
                "Bad Request",
                "text/plain; charset=utf-8",
                format!("{e}\n").as_bytes(),
                false,
                keep_alive,
                &[],
            );
        }
    };

    let start = Instant::now();
    let reply = fleet.ingest_one(&batch);
    fleet.observe_ingest(start.elapsed().as_secs_f64());

    if reply.status == IngestStatus::Rejected {
        // Session capacity, not transport pressure — same contract:
        // explicit refusal plus a backoff hint, reply body included.
        *consecutive_rejects += 1;
        let retry_ms = backoff_ms(cfg.retry_after_ms.max(1), *consecutive_rejects);
        let retry_s = retry_ms.div_ceil(1000).max(1);
        return http::respond_with(
            stream,
            429,
            "Too Many Requests",
            "application/json",
            reply.to_json().to_string().as_bytes(),
            false,
            keep_alive,
            &[
                ("Retry-After", retry_s.to_string()),
                ("Retry-After-Ms", retry_ms.to_string()),
            ],
        );
    }

    *consecutive_rejects = 0;
    http::respond_with(
        stream,
        200,
        "OK",
        "application/json",
        reply.to_json().to_string().as_bytes(),
        false,
        keep_alive,
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{BatchSample, IngestReply};
    use crate::FleetConfig;
    use prefall_core::detector::{DetectorConfig, GuardConfig};
    use prefall_core::models::ModelKind;
    use prefall_core::pipeline::PipelineConfig;
    use prefall_core::session::ModelBundle;
    use prefall_dsp::segment::Overlap;
    use prefall_dsp::stats::Normalizer;
    use prefall_telemetry::JsonValue;
    use std::io::{BufRead, Read, Write};

    fn bundle() -> ModelBundle {
        let cfg = DetectorConfig {
            pipeline: PipelineConfig::paper(400.0, Overlap::Half),
            threshold: 0.5,
            consecutive: 3,
            guard: GuardConfig::default(),
        };
        let window = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
        ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap()
    }

    fn start(cfg: FleetConfig) -> (Arc<Fleet>, FleetServer) {
        let fleet = Arc::new(Fleet::new(bundle(), cfg));
        let server = FleetServer::start("127.0.0.1:0", Arc::clone(&fleet)).unwrap();
        (fleet, server)
    }

    fn batch(wearer: u64, seq: u64, len: usize) -> IngestBatch {
        IngestBatch {
            wearer,
            seq,
            samples: (0..len)
                .map(|i| BatchSample::Sample {
                    accel: [0.01 * i as f32, -0.02, 1.0],
                    gyro: [0.3, -0.1 * i as f32, 0.0],
                })
                .collect(),
        }
    }

    struct Response {
        code: u16,
        headers: Vec<(String, String)>,
        body: Vec<u8>,
    }

    impl Response {
        fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }
        fn json(&self) -> JsonValue {
            JsonValue::parse(std::str::from_utf8(&self.body).unwrap()).unwrap()
        }
    }

    fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let code: u16 = status
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .unwrap();
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((n, v)) = line.split_once(':') {
                let (n, v) = (n.trim().to_string(), v.trim().to_string());
                if n.eq_ignore_ascii_case("content-length") {
                    content_length = v.parse().unwrap();
                }
                headers.push((n, v));
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        Response {
            code,
            headers,
            body,
        }
    }

    fn post_ingest(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        b: &IngestBatch,
    ) -> Response {
        let bytes = b.to_bytes();
        write!(
            stream,
            "POST /ingest HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            bytes.len()
        )
        .unwrap();
        stream.write_all(&bytes).unwrap();
        read_response(reader)
    }

    fn connect(server: &FleetServer) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(server.addr()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn ingest_round_trips_over_tcp_with_keep_alive() {
        let (fleet, server) = start(FleetConfig::default());
        let (mut stream, mut reader) = connect(&server);

        let first = post_ingest(&mut stream, &mut reader, &batch(7, 0, 60));
        assert_eq!(first.code, 200);
        let reply = IngestReply::from_json(&first.json()).unwrap();
        assert_eq!(reply.status, IngestStatus::Accepted);
        assert_eq!(reply.next_seq, 60);
        assert!(!reply.probs_bits.is_empty());

        // Second request on the same connection: keep-alive works, and
        // a duplicate is recognised, not re-applied.
        let dup = post_ingest(&mut stream, &mut reader, &batch(7, 0, 60));
        assert_eq!(dup.code, 200);
        let reply = IngestReply::from_json(&dup.json()).unwrap();
        assert_eq!(reply.status, IngestStatus::Duplicate);

        assert_eq!(fleet.stats().duplicates, 1);
        server.shutdown();
    }

    #[test]
    fn stats_and_health_endpoints_serve() {
        let (_fleet, server) = start(FleetConfig::default());
        let (mut stream, mut reader) = connect(&server);
        write!(stream, "GET /fleet HTTP/1.1\r\n\r\n").unwrap();
        let resp = read_response(&mut reader);
        assert_eq!(resp.code, 200);
        assert!(resp.json().get("sessions_active").is_some());
        write!(stream, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(read_response(&mut reader).code, 200);
        write!(stream, "GET /nope HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(read_response(&mut reader).code, 404);
        server.shutdown();
    }

    #[test]
    fn malformed_batches_get_400_and_the_connection_survives() {
        let (_fleet, server) = start(FleetConfig::default());
        let (mut stream, mut reader) = connect(&server);
        write!(stream, "POST /ingest HTTP/1.1\r\nContent-Length: 3\r\n\r\n").unwrap();
        stream.write_all(b"bad").unwrap();
        assert_eq!(read_response(&mut reader).code, 400);
        // Same connection still serves a good batch afterwards.
        let ok = post_ingest(&mut stream, &mut reader, &batch(1, 0, 10));
        assert_eq!(ok.code, 200);
        server.shutdown();
    }

    #[test]
    fn overload_rejections_carry_exponential_retry_hints() {
        // reject_at = 0: every ingest refuses, so the backoff ladder
        // is observable deterministically.
        let (_fleet, server) = start(FleetConfig {
            reject_at: 0,
            retry_after_ms: 250,
            ..FleetConfig::default()
        });
        let (mut stream, mut reader) = connect(&server);
        let mut hints = Vec::new();
        for _ in 0..4 {
            let resp = post_ingest(&mut stream, &mut reader, &batch(1, 0, 10));
            assert_eq!(resp.code, 429);
            assert!(resp.header("Retry-After").is_some());
            hints.push(
                resp.header("Retry-After-Ms")
                    .unwrap()
                    .parse::<u64>()
                    .unwrap(),
            );
        }
        assert_eq!(hints, vec![250, 500, 1000, 2000]);
        server.shutdown();
    }

    #[test]
    fn session_capacity_rejection_is_a_429_with_the_reply_body() {
        let (_fleet, server) = start(FleetConfig {
            shards: 1,
            max_sessions: 1,
            ..FleetConfig::default()
        });
        let (mut stream, mut reader) = connect(&server);
        assert_eq!(
            post_ingest(&mut stream, &mut reader, &batch(1, 0, 10)).code,
            200
        );
        let refused = post_ingest(&mut stream, &mut reader, &batch(2, 0, 10));
        assert_eq!(refused.code, 429);
        assert!(refused.header("Retry-After").is_some());
        let reply = IngestReply::from_json(&refused.json()).unwrap();
        assert_eq!(reply.status, IngestStatus::Rejected);
        // The accepted wearer is still served after the refusal.
        assert_eq!(
            post_ingest(&mut stream, &mut reader, &batch(1, 10, 10)).code,
            200
        );
        server.shutdown();
    }

    #[test]
    fn stalled_connections_are_cut_and_counted() {
        let (fleet, server) = start(FleetConfig {
            conn_deadline: Duration::from_millis(150),
            ..FleetConfig::default()
        });
        let (mut stream, _reader) = connect(&server);
        write!(stream, "POST /ing").unwrap();
        stream.flush().unwrap();
        let mut rest = Vec::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = stream.read_to_end(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "server closes a stalled connection silently");
        let deadline = Instant::now() + Duration::from_secs(2);
        while fleet.stats().conn_timeouts == 0 {
            assert!(Instant::now() < deadline, "timeout never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }
}
