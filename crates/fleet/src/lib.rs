//! Fault-tolerant multi-stream detector serving.
//!
//! One process, one immutable model, thousands of wearers: this crate
//! turns the single-stream detector of `prefall-core` into a fleet
//! server. The refactored core split —
//! [`ModelBundle`](prefall_core::session::ModelBundle) (shared,
//! immutable weights + normaliser + filter prototype) plus compact
//! poolable [`Session`](prefall_core::session::Session)s (per-wearer
//! filters, window, guard, workspace) — is what makes that cheap: a
//! session is a few kilobytes of reusable buffers, and inference runs
//! against the shared bundle without copying the network.
//!
//! * [`Fleet`] — the sharded session registry. Batches are grouped by
//!   shard and processed across the `prefall-par` pool
//!   ([`Fleet::ingest_many`]), each shard serving its wearers in input
//!   order so results are deterministic for any thread count.
//! * [`protocol`] — the ingest wire format: tick-sequenced binary
//!   batches whose sequence numbers make delivery idempotent
//!   (duplicates recognised, reorders tolerated, gaps bridged by the
//!   sample guard).
//! * [`server`] — a hand-rolled TCP ingest endpoint on the shared
//!   `prefall-obsd` HTTP plumbing: per-connection deadlines, a bounded
//!   accept queue, `429 + Retry-After` backpressure with exponential
//!   backoff hints.
//! * Load shedding: past [`FleetConfig::shed_at`] in-flight work the
//!   fleet keeps every session's guard, filters and window advancing
//!   but skips inference, and triggering degrades to the
//!   accel-confirmed-only policy
//!   ([`Session::shed_trigger`](prefall_core::session::Session::shed_trigger))
//!   — an honest degraded mode, counted per window, instead of
//!   silently dropping wearers.
//! * Supervision: [`Fleet::reap_idle`] (or the background
//!   [`Supervisor`]) parks stalled sessions as crash-safe
//!   [`SessionCheckpoint`](prefall_core::session::SessionCheckpoint)s
//!   and recycles their buffers through a per-shard free list — a
//!   reconnecting wearer resumes with a warm window, and steady-state
//!   churn allocates nothing.
//!
//! # Example
//!
//! ```
//! use prefall_core::detector::{DetectorConfig, GuardConfig};
//! use prefall_core::models::ModelKind;
//! use prefall_core::pipeline::PipelineConfig;
//! use prefall_core::session::ModelBundle;
//! use prefall_dsp::segment::Overlap;
//! use prefall_dsp::stats::Normalizer;
//! use prefall_fleet::{BatchSample, Fleet, FleetConfig, IngestBatch, IngestStatus};
//!
//! let cfg = DetectorConfig {
//!     pipeline: PipelineConfig::paper(400.0, Overlap::Half),
//!     threshold: 0.5,
//!     consecutive: 3,
//!     guard: GuardConfig::default(),
//! };
//! let window = cfg.pipeline.segmentation.window();
//! let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
//! let bundle = ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap();
//! let fleet = Fleet::new(bundle, FleetConfig::default());
//!
//! let batch = IngestBatch {
//!     wearer: 1,
//!     seq: 0,
//!     samples: (0..10)
//!         .map(|_| BatchSample::Sample {
//!             accel: [0.01, -0.02, 1.0],
//!             gyro: [0.0, 0.1, 0.0],
//!         })
//!         .collect(),
//! };
//! let reply = fleet.ingest_one(&batch);
//! assert_eq!(reply.status, IngestStatus::Accepted);
//! assert_eq!(reply.next_seq, 10);
//! // Re-delivering the same batch is recognised, not re-applied.
//! assert_eq!(fleet.ingest_one(&batch).status, IngestStatus::Duplicate);
//! ```

#![deny(missing_docs)]

pub mod protocol;
pub mod server;

pub use protocol::{BatchSample, IngestBatch, IngestReply, IngestStatus};
pub use server::FleetServer;

use prefall_core::session::{ModelBundle, Session, SessionCheckpoint};
use prefall_core::CoreError;
use prefall_drift::{compare, drift_doc, Fingerprint};
use prefall_obsd::{DriftSource, FleetSource};
use prefall_par::Pool;
use prefall_telemetry::{JsonValue, Recorder};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Fleet sizing, backpressure thresholds and supervision cadence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Session-registry shards (each its own lock + free list).
    pub shards: usize,
    /// Worker-thread override for [`Fleet::ingest_many`]; `None` reads
    /// `PREFALL_THREADS` / available parallelism (see `prefall-par`).
    pub threads: Option<usize>,
    /// Total active-session capacity; a new wearer past this is
    /// rejected with a retry hint instead of evicting someone else.
    pub max_sessions: usize,
    /// Total parked-checkpoint capacity; oldest checkpoints evict
    /// first, so memory stays bounded under reconnect churn.
    pub max_parked: usize,
    /// In-flight pressure at which ingest degrades to shed
    /// (accel-confirm-only) mode.
    pub shed_at: usize,
    /// In-flight pressure at which new requests are refused with
    /// `429 + Retry-After` rather than queued.
    pub reject_at: usize,
    /// Accepted-but-unserved connections the ingest server queues
    /// before answering `429` at accept time.
    pub queue_cap: usize,
    /// Connection-serving worker threads in the ingest server.
    pub conn_workers: usize,
    /// Wall-clock budget for one request/response exchange on an
    /// ingest connection (slowloris bound).
    pub conn_deadline: Duration,
    /// Base `Retry-After` hint in milliseconds; consecutive rejections
    /// on one connection double it (capped at 64×).
    pub retry_after_ms: u64,
    /// Largest request body the ingest server accepts.
    pub max_body: usize,
    /// Idle time after which the supervisor parks a session.
    pub idle_timeout: Duration,
    /// How often the supervisor sweeps.
    pub supervise_interval: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            threads: None,
            max_sessions: 1024,
            max_parked: 1024,
            shed_at: 8,
            reject_at: 64,
            queue_cap: 128,
            conn_workers: 4,
            conn_deadline: Duration::from_secs(5),
            retry_after_ms: 250,
            max_body: 256 * 1024,
            idle_timeout: Duration::from_secs(30),
            supervise_interval: Duration::from_secs(1),
        }
    }
}

/// One wearer's live session plus its supervision bookkeeping.
struct Slot {
    session: Session,
    last_used: Instant,
    /// Per-wearer drift fingerprint (raw inputs + window scores).
    /// Fleet sessions run untapped, so the attribution-share section
    /// stays empty and contributes zero PSI by design. The sketch is
    /// heap-free, so slots keep their zero-steady-state-allocation
    /// property.
    sketch: Fingerprint,
}

/// One registry shard: its own lock, active map, recycled-session free
/// list, and bounded parked-checkpoint store.
struct Shard {
    active: HashMap<u64, Slot>,
    free: Vec<Session>,
    parked: HashMap<u64, SessionCheckpoint>,
    parked_order: VecDeque<u64>,
    /// Reused per-batch probability scratch, so steady-state ingest
    /// does not allocate inside the shard lock.
    scratch: Vec<f32>,
    /// Drift evidence of wearers whose sessions were parked or
    /// recycled, merged in [`Fleet::reap_idle`] so the fleet-wide
    /// fingerprint never forgets samples it already saw.
    retired: Fingerprint,
}

impl Shard {
    fn new() -> Self {
        Self {
            active: HashMap::new(),
            free: Vec::new(),
            parked: HashMap::new(),
            parked_order: VecDeque::new(),
            scratch: Vec::new(),
            retired: Fingerprint::new(),
        }
    }
}

/// Monotone totals mirrored into the recorder as `fleet.*` counters.
#[derive(Default)]
struct Totals {
    batches: AtomicU64,
    windows: AtomicU64,
    shed_windows: AtomicU64,
    shed_batches: AtomicU64,
    duplicates: AtomicU64,
    rejected: AtomicU64,
    conn_timeouts: AtomicU64,
    reaped: AtomicU64,
    resumed: AtomicU64,
    created: AtomicU64,
    evicted: AtomicU64,
}

/// Aggregated fleet state for `/fleet` and the bench gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Wearers with a live session.
    pub sessions_active: usize,
    /// Recycled sessions waiting on free lists.
    pub sessions_free: usize,
    /// Parked checkpoints awaiting a reconnect.
    pub sessions_parked: usize,
    /// Sessions ever allocated (free-list misses).
    pub sessions_created: u64,
    /// Batches ingested.
    pub batches: u64,
    /// Windows classified.
    pub windows: u64,
    /// Window boundaries crossed without inference (shed mode).
    pub shed_windows: u64,
    /// Batches served in shed mode.
    pub shed_batches: u64,
    /// Batches recognised as idempotent re-deliveries.
    pub duplicates: u64,
    /// Batches refused for capacity (fleet-level, not transport 429s).
    pub rejected: u64,
    /// Ingest connections cut at the per-connection deadline.
    pub conn_timeouts: u64,
    /// Sessions parked by the supervisor.
    pub reaped: u64,
    /// Sessions resumed warm from a parked checkpoint.
    pub resumed: u64,
    /// Parked checkpoints evicted by the [`FleetConfig::max_parked`]
    /// bound.
    pub checkpoints_evicted: u64,
    /// High-water mark of the ingest server's accept queue.
    pub queue_depth_hw: usize,
    /// Current in-flight pressure.
    pub pressure: usize,
}

impl FleetStats {
    /// The stats as the `/fleet` JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "sessions_active".to_string(),
                JsonValue::U64(self.sessions_active as u64),
            ),
            (
                "sessions_free".to_string(),
                JsonValue::U64(self.sessions_free as u64),
            ),
            (
                "sessions_parked".to_string(),
                JsonValue::U64(self.sessions_parked as u64),
            ),
            (
                "sessions_created".to_string(),
                JsonValue::U64(self.sessions_created),
            ),
            ("batches".to_string(), JsonValue::U64(self.batches)),
            ("windows".to_string(), JsonValue::U64(self.windows)),
            (
                "shed_windows".to_string(),
                JsonValue::U64(self.shed_windows),
            ),
            (
                "shed_batches".to_string(),
                JsonValue::U64(self.shed_batches),
            ),
            ("duplicates".to_string(), JsonValue::U64(self.duplicates)),
            ("rejected".to_string(), JsonValue::U64(self.rejected)),
            (
                "conn_timeouts".to_string(),
                JsonValue::U64(self.conn_timeouts),
            ),
            ("reaped".to_string(), JsonValue::U64(self.reaped)),
            ("resumed".to_string(), JsonValue::U64(self.resumed)),
            (
                "checkpoints_evicted".to_string(),
                JsonValue::U64(self.checkpoints_evicted),
            ),
            (
                "queue_depth_hw".to_string(),
                JsonValue::U64(self.queue_depth_hw as u64),
            ),
            ("pressure".to_string(), JsonValue::U64(self.pressure as u64)),
        ])
    }
}

/// The sharded multi-stream session registry.
pub struct Fleet {
    bundle: ModelBundle,
    cfg: FleetConfig,
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    parked_per_shard: usize,
    pool: Pool,
    rec: Arc<dyn Recorder>,
    totals: Totals,
    pressure: AtomicUsize,
    queue_depth_hw: AtomicUsize,
    drift: Mutex<DriftRef>,
}

/// The committed drift reference (if any) and its alarm ceiling.
struct DriftRef {
    reference: Option<Fingerprint>,
    alarm_psi: f64,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.shards.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

/// Decrements the fleet's in-flight pressure on drop. Hold one across
/// each unit of externally-driven work (the ingest server holds one
/// per queued-or-serving request).
pub struct PressureGuard<'a> {
    fleet: &'a Fleet,
}

impl Drop for PressureGuard<'_> {
    fn drop(&mut self) {
        self.fleet.pressure.fetch_sub(1, Ordering::Relaxed);
    }
}

fn shard_hash(wearer: u64) -> u64 {
    // splitmix64 finaliser: wearer IDs are often sequential, and this
    // spreads them evenly over any shard count.
    let mut z = wearer.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Fleet {
    /// Builds a fleet over one shared model. Shard and capacity knobs
    /// are clamped to at least one.
    pub fn new(bundle: ModelBundle, cfg: FleetConfig) -> Self {
        let shards = cfg.shards.max(1);
        let per_shard_cap = cfg.max_sessions.max(1).div_ceil(shards);
        let parked_per_shard = cfg.max_parked / shards;
        Self {
            bundle,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_cap,
            parked_per_shard,
            pool: Pool::with_override(cfg.threads),
            rec: prefall_telemetry::noop(),
            totals: Totals::default(),
            pressure: AtomicUsize::new(0),
            queue_depth_hw: AtomicUsize::new(0),
            drift: Mutex::new(DriftRef {
                reference: None,
                alarm_psi: prefall_drift::DriftConfig::default().alarm_psi,
            }),
            cfg,
        }
    }

    /// Attaches a telemetry recorder; `fleet.*` counters and gauges
    /// mirror the internal totals from here on.
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.rec = rec;
    }

    /// The configuration the fleet was built with.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The shared model bundle.
    pub fn bundle(&self) -> &ModelBundle {
        &self.bundle
    }

    fn bump(&self, field: &AtomicU64, name: &str, delta: u64) {
        if delta > 0 {
            field.fetch_add(delta, Ordering::Relaxed);
            self.rec.counter_add(name, delta);
        }
    }

    /// Raises in-flight pressure by one until the guard drops.
    pub fn pressure_guard(&self) -> PressureGuard<'_> {
        self.pressure.fetch_add(1, Ordering::Relaxed);
        PressureGuard { fleet: self }
    }

    /// Manual pressure accounting for the ingest server, where the
    /// raise (accept thread) and release (worker after the connection
    /// closes) happen on different threads.
    pub(crate) fn pressure_inc(&self) {
        self.pressure.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn pressure_dec(&self) {
        self.pressure.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts an ingest connection cut at its deadline.
    pub fn note_conn_timeout(&self) {
        self.bump(&self.totals.conn_timeouts, "fleet.conn_timeouts", 1);
    }

    /// Records one request's ingest latency into the
    /// `fleet.ingest_seconds` histogram (the p99 SLO series).
    pub fn observe_ingest(&self, seconds: f64) {
        self.rec.observe("fleet.ingest_seconds", seconds);
    }

    /// Current in-flight pressure.
    pub fn pressure(&self) -> usize {
        self.pressure.load(Ordering::Relaxed)
    }

    /// Whether ingest should run in shed (accel-confirm-only) mode.
    pub fn should_shed(&self) -> bool {
        self.pressure() >= self.cfg.shed_at
    }

    /// Whether new work should be refused outright with a retry hint.
    pub fn should_reject(&self) -> bool {
        self.pressure() >= self.cfg.reject_at
    }

    /// Records the ingest server's current accept-queue depth
    /// (tracks the high-water mark and the `fleet.queue_depth` gauge).
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_depth_hw.fetch_max(depth, Ordering::Relaxed);
        self.rec.gauge_set("fleet.queue_depth", depth as f64);
    }

    fn shard_index(&self, wearer: u64) -> usize {
        (shard_hash(wearer) % self.shards.len() as u64) as usize
    }

    /// Ingests one batch on the calling thread (the ingest server's
    /// per-request path). Shed mode follows the current pressure.
    pub fn ingest_one(&self, batch: &IngestBatch) -> IngestReply {
        let shed = self.should_shed();
        let mut shard = self.shards[self.shard_index(batch.wearer)]
            .lock()
            .expect("shard lock");
        self.process_batch(&mut shard, batch, shed)
    }

    /// Ingests a slice of batches, sharded across the worker pool.
    ///
    /// Batches for the same wearer are served in slice order; replies
    /// come back in slice order; and because each shard's work is a
    /// pure function of its own sessions plus the immutable bundle,
    /// the replies are **identical for any thread count**.
    pub fn ingest_many(&self, batches: &[IngestBatch]) -> Vec<IngestReply> {
        self.ingest_many_with(batches, self.should_shed())
    }

    /// [`Fleet::ingest_many`] with shed mode forced on or off — the
    /// deterministic entry point for tests and benches.
    pub fn ingest_many_with(&self, batches: &[IngestBatch], shed: bool) -> Vec<IngestReply> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut by_shard: HashMap<usize, usize> = HashMap::new();
        for (i, b) in batches.iter().enumerate() {
            let s = self.shard_index(b.wearer);
            let g = *by_shard.entry(s).or_insert_with(|| {
                groups.push((s, Vec::new()));
                groups.len() - 1
            });
            groups[g].1.push(i);
        }
        let per_group: Vec<Vec<(usize, IngestReply)>> =
            self.pool.map(&groups, |_, (shard_idx, idxs)| {
                let mut shard = self.shards[*shard_idx].lock().expect("shard lock");
                idxs.iter()
                    .map(|&i| (i, self.process_batch(&mut shard, &batches[i], shed)))
                    .collect()
            });
        let mut out: Vec<Option<IngestReply>> = vec![None; batches.len()];
        for group in per_group {
            for (i, reply) in group {
                out[i] = Some(reply);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every batch processed"))
            .collect()
    }

    /// Serves one batch against one locked shard. All session
    /// acquisition (resume from parked, recycle from the free list,
    /// fresh allocation, capacity rejection) happens here.
    fn process_batch(&self, shard: &mut Shard, batch: &IngestBatch, shed: bool) -> IngestReply {
        let wearer = batch.wearer;
        self.bump(&self.totals.batches, "fleet.batches", 1);
        if shed {
            self.bump(&self.totals.shed_batches, "fleet.shed_batches", 1);
        }

        if !shard.active.contains_key(&wearer) {
            if let Some(ck) = shard.parked.remove(&wearer) {
                shard.parked_order.retain(|w| *w != wearer);
                let mut session = match shard.free.pop() {
                    Some(s) => s,
                    None => {
                        self.bump(&self.totals.created, "fleet.sessions_created", 1);
                        self.bundle.new_session()
                    }
                };
                if session.restore(&ck).is_ok() {
                    self.bump(&self.totals.resumed, "fleet.resumed", 1);
                } else {
                    // A checkpoint from an incompatible configuration:
                    // start the wearer cold rather than corrupt state.
                    session.reset();
                }
                shard.active.insert(
                    wearer,
                    Slot {
                        session,
                        last_used: Instant::now(),
                        sketch: Fingerprint::new(),
                    },
                );
            } else if shard.active.len() >= self.per_shard_cap {
                self.bump(&self.totals.rejected, "fleet.rejected", 1);
                return IngestReply {
                    wearer,
                    status: IngestStatus::Rejected,
                    next_seq: 0,
                    windows: 0,
                    shed_windows: 0,
                    shed,
                    trigger: false,
                    regressed: false,
                    probs_bits: Vec::new(),
                };
            } else {
                let session = match shard.free.pop() {
                    Some(s) => s,
                    None => {
                        self.bump(&self.totals.created, "fleet.sessions_created", 1);
                        self.bundle.new_session()
                    }
                };
                shard.active.insert(
                    wearer,
                    Slot {
                        session,
                        last_used: Instant::now(),
                        sketch: Fingerprint::new(),
                    },
                );
            }
        }

        let slot = shard.active.get_mut(&wearer).expect("session just ensured");
        slot.last_used = Instant::now();
        let session = &mut slot.session;

        let n = batch.samples.len() as u64;
        if n > 0 && batch.seq.saturating_add(n) <= session.next_tick() {
            // Every tick already consumed: idempotent re-delivery.
            self.bump(&self.totals.duplicates, "fleet.duplicates", 1);
            return IngestReply {
                wearer,
                status: IngestStatus::Duplicate,
                next_seq: session.next_tick(),
                windows: 0,
                shed_windows: 0,
                shed,
                trigger: if shed {
                    session.shed_trigger()
                } else {
                    session.trigger_decision()
                },
                regressed: false,
                probs_bits: Vec::new(),
            };
        }

        let mut windows = 0u64;
        let mut shed_windows = 0u64;
        let mut regressed = false;
        shard.scratch.clear();
        for (i, s) in batch.samples.iter().enumerate() {
            let tick = batch.seq + i as u64;
            match *s {
                BatchSample::Missing => {
                    // Explicit device-side gap markers are consumed in
                    // arrival order; the grid advances by one.
                    if let Some(p) = session.push_missing(&self.bundle) {
                        shard.scratch.push(p);
                        windows += 1;
                    }
                }
                BatchSample::Sample { accel, gyro } => {
                    // Fold only fresh ticks into the drift sketch:
                    // overlapping re-deliveries must not double-weight
                    // the distribution (decided *before* the push,
                    // which advances the grid).
                    let fresh = tick >= session.next_tick();
                    if shed {
                        let o = session.push_at_shed(&self.bundle, tick, accel, gyro);
                        windows += o.windows as u64;
                        shed_windows += o.shed_windows as u64;
                        regressed |= o.regressed;
                    } else {
                        let o =
                            session.push_at(&self.bundle, tick, accel, gyro, &mut shard.scratch);
                        windows += o.windows as u64;
                        shed_windows += o.shed_windows as u64;
                        regressed |= o.regressed;
                    }
                    if fresh {
                        slot.sketch.observe_sample(accel, gyro);
                    }
                }
            }
        }
        // Window scores (gap-fill windows included — they are real
        // classifier outputs) feed the score-distribution sketch.
        for &p in shard.scratch.iter() {
            slot.sketch.observe_score(p);
        }
        self.bump(&self.totals.windows, "fleet.windows", windows);
        self.bump(
            &self.totals.shed_windows,
            "fleet.shed_windows",
            shed_windows,
        );

        IngestReply {
            wearer,
            status: IngestStatus::Accepted,
            next_seq: session.next_tick(),
            windows,
            shed_windows,
            shed,
            trigger: if shed {
                session.shed_trigger()
            } else {
                session.trigger_decision()
            },
            regressed,
            probs_bits: shard.scratch.iter().map(|p| p.to_bits()).collect(),
        }
    }

    /// Parks every session idle for at least `idle_for`: the session's
    /// full state becomes a bounded parked checkpoint and its buffers
    /// return to the shard free list for reuse. Returns how many were
    /// parked.
    pub fn reap_idle(&self, idle_for: Duration) -> usize {
        let now = Instant::now();
        let mut reaped = 0usize;
        for shard in &self.shards {
            let mut s = shard.lock().expect("shard lock");
            let expired: Vec<u64> = s
                .active
                .iter()
                .filter(|(_, slot)| {
                    now.checked_duration_since(slot.last_used)
                        .is_some_and(|idle| idle >= idle_for)
                })
                .map(|(w, _)| *w)
                .collect();
            for wearer in expired {
                let mut slot = s.active.remove(&wearer).expect("listed above");
                // The wearer's drift evidence outlives the session:
                // merged into the shard accumulator before recycling.
                s.retired.merge(&slot.sketch);
                if self.parked_per_shard > 0 {
                    let ck = slot.session.checkpoint();
                    if s.parked.insert(wearer, ck).is_none() {
                        s.parked_order.push_back(wearer);
                    }
                    while s.parked.len() > self.parked_per_shard {
                        match s.parked_order.pop_front() {
                            Some(old) => {
                                if s.parked.remove(&old).is_some() {
                                    self.bump(&self.totals.evicted, "fleet.checkpoints_evicted", 1);
                                }
                            }
                            None => break,
                        }
                    }
                }
                slot.session.reset();
                s.free.push(slot.session);
                reaped += 1;
            }
        }
        self.bump(&self.totals.reaped, "fleet.reaped", reaped as u64);
        self.publish_gauges();
        reaped
    }

    /// Exports the wearer's current state (live session or parked
    /// checkpoint) as crash-safe bytes.
    pub fn export_checkpoint(&self, wearer: u64) -> Option<Vec<u8>> {
        let shard = self.shards[self.shard_index(wearer)]
            .lock()
            .expect("shard lock");
        if let Some(slot) = shard.active.get(&wearer) {
            return Some(slot.session.checkpoint().to_bytes());
        }
        shard.parked.get(&wearer).map(SessionCheckpoint::to_bytes)
    }

    /// Parks a previously exported checkpoint, so the wearer's next
    /// batch resumes warm (e.g. after a process restart). A live
    /// session for the wearer takes precedence over the import.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint validation failures (truncation, checksum
    /// mismatch, implausible shapes).
    pub fn import_checkpoint(&self, wearer: u64, bytes: &[u8]) -> Result<(), CoreError> {
        let ck = SessionCheckpoint::from_bytes(bytes)?;
        let mut shard = self.shards[self.shard_index(wearer)]
            .lock()
            .expect("shard lock");
        if self.parked_per_shard == 0 {
            return Ok(());
        }
        if shard.parked.insert(wearer, ck).is_none() {
            shard.parked_order.push_back(wearer);
        }
        while shard.parked.len() > self.parked_per_shard {
            match shard.parked_order.pop_front() {
                Some(old) => {
                    if shard.parked.remove(&old).is_some() {
                        self.bump(&self.totals.evicted, "fleet.checkpoints_evicted", 1);
                    }
                }
                None => break,
            }
        }
        Ok(())
    }

    /// A consistent-enough aggregate of the fleet's state (each shard
    /// is sampled under its own lock).
    pub fn stats(&self) -> FleetStats {
        let mut active = 0usize;
        let mut free = 0usize;
        let mut parked = 0usize;
        for shard in &self.shards {
            let s = shard.lock().expect("shard lock");
            active += s.active.len();
            free += s.free.len();
            parked += s.parked.len();
        }
        let t = &self.totals;
        FleetStats {
            sessions_active: active,
            sessions_free: free,
            sessions_parked: parked,
            sessions_created: t.created.load(Ordering::Relaxed),
            batches: t.batches.load(Ordering::Relaxed),
            windows: t.windows.load(Ordering::Relaxed),
            shed_windows: t.shed_windows.load(Ordering::Relaxed),
            shed_batches: t.shed_batches.load(Ordering::Relaxed),
            duplicates: t.duplicates.load(Ordering::Relaxed),
            rejected: t.rejected.load(Ordering::Relaxed),
            conn_timeouts: t.conn_timeouts.load(Ordering::Relaxed),
            reaped: t.reaped.load(Ordering::Relaxed),
            resumed: t.resumed.load(Ordering::Relaxed),
            checkpoints_evicted: t.evicted.load(Ordering::Relaxed),
            queue_depth_hw: self.queue_depth_hw.load(Ordering::Relaxed),
            pressure: self.pressure(),
        }
    }

    /// Publishes the gauge-shaped stats (`fleet.sessions_active`,
    /// `fleet.sessions_parked`, `fleet.queue_depth` high-water) to the
    /// recorder, plus the `drift.*` gauges when a reference
    /// fingerprint has been committed.
    pub fn publish_gauges(&self) {
        let stats = self.stats();
        self.rec
            .gauge_set("fleet.sessions_active", stats.sessions_active as f64);
        self.rec
            .gauge_set("fleet.sessions_parked", stats.sessions_parked as f64);
        self.rec
            .gauge_set("fleet.sessions_free", stats.sessions_free as f64);
        self.rec
            .gauge_set("fleet.queue_depth_hw", stats.queue_depth_hw as f64);
        self.rec
            .gauge_set("fleet.shed_total", stats.shed_windows as f64);
        self.publish_drift_gauges();
    }

    /// Commits the training-distribution reference the fleet's live
    /// fingerprint is scored against, and the PSI ceiling above which
    /// `drift.alarm` reads 1. Until a reference is set, the `drift.*`
    /// gauges are not published and `/drift` reports scores of zero.
    pub fn set_drift_reference(&self, reference: Fingerprint, alarm_psi: f64) {
        let mut d = self.drift.lock().expect("drift lock");
        d.reference = Some(reference);
        d.alarm_psi = alarm_psi;
    }

    /// The fleet-wide drift fingerprint: every active wearer's sketch
    /// merged with each shard's retired accumulator. Sketch merges are
    /// exact integer operations, so the serialized bytes are identical
    /// for any shard/thread interleaving that consumed the same
    /// samples.
    pub fn fleet_fingerprint(&self) -> Fingerprint {
        let mut total = Fingerprint::new();
        for shard in &self.shards {
            let s = shard.lock().expect("shard lock");
            total.merge(&s.retired);
            for slot in s.active.values() {
                total.merge(&slot.sketch);
            }
        }
        total
    }

    /// One wearer's live drift fingerprint, or `None` when the wearer
    /// has no active session (a parked wearer's evidence lives on in
    /// the fleet-wide view, not per tenant).
    pub fn tenant_fingerprint(&self, wearer: u64) -> Option<Fingerprint> {
        let shard = self.shards[self.shard_index(wearer)]
            .lock()
            .expect("shard lock");
        shard.active.get(&wearer).map(|slot| slot.sketch.clone())
    }

    /// Scores the fleet-wide fingerprint against the committed
    /// reference and publishes the same `drift.*` gauge names the
    /// single-detector `DriftMonitor` uses, so the watch drift SLOs
    /// apply unchanged to both deployment shapes. No-op without a
    /// reference.
    fn publish_drift_gauges(&self) {
        let (reference, alarm_psi) = {
            let d = self.drift.lock().expect("drift lock");
            match &d.reference {
                Some(r) => (r.clone(), d.alarm_psi),
                None => return,
            }
        };
        let live = self.fleet_fingerprint();
        let score = compare(&reference, &live);
        self.rec.gauge_set("drift.input_psi", score.input_psi);
        self.rec.gauge_set("drift.score_psi", score.score_psi);
        self.rec
            .gauge_set("drift.attribution_psi", score.attribution_psi);
        self.rec.gauge_set("drift.input_shift", score.input_shift);
        self.rec.gauge_set("drift.score_shift", score.score_shift);
        self.rec.gauge_set("drift.samples", score.samples as f64);
        self.rec.gauge_set(
            "drift.alarm",
            if score.alarmed(alarm_psi) { 1.0 } else { 0.0 },
        );
    }

    /// Starts the background supervisor: every
    /// [`FleetConfig::supervise_interval`] it parks sessions idle past
    /// [`FleetConfig::idle_timeout`] and republishes the fleet gauges.
    pub fn spawn_supervisor(self: &Arc<Self>) -> Supervisor {
        let fleet = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("prefall-fleet-supervisor".to_string())
            .spawn(move || {
                let step = Duration::from_millis(10);
                loop {
                    let mut waited = Duration::ZERO;
                    while waited < fleet.cfg.supervise_interval {
                        if thread_stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(step);
                        waited += step;
                    }
                    fleet.reap_idle(fleet.cfg.idle_timeout);
                }
            })
            .expect("spawn fleet supervisor");
        Supervisor {
            stop,
            handle: Some(handle),
        }
    }
}

impl FleetSource for Fleet {
    fn fleet_json(&self) -> JsonValue {
        self.stats().to_json()
    }
}

impl DriftSource for Fleet {
    fn drift_json(&self, tenant: Option<u64>) -> Option<JsonValue> {
        let (reference, alarm_psi) = {
            let d = self.drift.lock().expect("drift lock");
            (d.reference.clone(), d.alarm_psi)
        };
        let live = match tenant {
            Some(wearer) => self.tenant_fingerprint(wearer)?,
            None => self.fleet_fingerprint(),
        };
        Some(drift_doc(reference.as_ref(), &live, alarm_psi))
    }
}

/// Handle to the background session supervisor. Dropping it stops the
/// sweep thread.
#[derive(Debug)]
pub struct Supervisor {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Stops the sweep thread and waits for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
    use prefall_core::models::ModelKind;
    use prefall_core::pipeline::PipelineConfig;
    use prefall_dsp::segment::Overlap;
    use prefall_dsp::stats::Normalizer;

    fn detector_config() -> DetectorConfig {
        DetectorConfig {
            pipeline: PipelineConfig::paper(400.0, Overlap::Half),
            threshold: 0.5,
            consecutive: 3,
            guard: GuardConfig::default(),
        }
    }

    fn bundle() -> ModelBundle {
        let cfg = detector_config();
        let window = cfg.pipeline.segmentation.window();
        let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
        ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap()
    }

    fn fleet(cfg: FleetConfig) -> Fleet {
        Fleet::new(bundle(), cfg)
    }

    /// Deterministic per-wearer motion so streams differ.
    fn motion(wearer: u64, tick: u64) -> ([f32; 3], [f32; 3]) {
        let w = wearer as f32;
        let t = tick as f32 * 0.07;
        (
            [0.02 * (t + w).sin(), -0.03 * (t * 0.9).cos(), 1.0],
            [
                8.0 * (t * 1.3 + w).sin(),
                -5.0 * t.cos(),
                2.0 * (w * 0.1).sin(),
            ],
        )
    }

    fn batch_for(wearer: u64, seq: u64, len: usize) -> IngestBatch {
        IngestBatch {
            wearer,
            seq,
            samples: (0..len as u64)
                .map(|i| {
                    let (accel, gyro) = motion(wearer, seq + i);
                    BatchSample::Sample { accel, gyro }
                })
                .collect(),
        }
    }

    #[test]
    fn fleet_streams_match_the_serial_detector_bitwise() {
        let f = fleet(FleetConfig {
            threads: Some(3),
            ..FleetConfig::default()
        });
        let wearers: Vec<u64> = (0..6).collect();
        let total = 300usize;
        let batch_len = 25usize;

        // Interleave every wearer's batches in one big slice.
        let mut fleet_probs: HashMap<u64, Vec<u32>> = HashMap::new();
        for start in (0..total).step_by(batch_len) {
            let batches: Vec<IngestBatch> = wearers
                .iter()
                .map(|&w| batch_for(w, start as u64, batch_len))
                .collect();
            for reply in f.ingest_many(&batches) {
                assert_eq!(reply.status, IngestStatus::Accepted);
                assert!(!reply.shed);
                fleet_probs
                    .entry(reply.wearer)
                    .or_default()
                    .extend(reply.probs_bits);
            }
        }

        // The serial single-stream path, one wearer at a time.
        for &w in &wearers {
            let mut det = StreamingDetector::new(
                ModelKind::ProposedCnn
                    .build(detector_config().pipeline.segmentation.window(), 9, 1)
                    .unwrap(),
                Normalizer::identity(9),
                detector_config(),
            )
            .unwrap();
            let mut serial: Vec<u32> = Vec::new();
            for t in 0..total as u64 {
                let (a, g) = motion(w, t);
                if let Some(p) = det.push_sample(a, g) {
                    serial.push(p.to_bits());
                }
            }
            assert!(!serial.is_empty());
            assert_eq!(
                fleet_probs.get(&w),
                Some(&serial),
                "wearer {w} diverged from the serial path"
            );
        }
    }

    #[test]
    fn duplicate_and_overlapping_batches_are_idempotent() {
        let f = fleet(FleetConfig::default());
        let b0 = batch_for(1, 0, 50);
        let first = f.ingest_one(&b0);
        assert_eq!(first.status, IngestStatus::Accepted);
        assert_eq!(first.next_seq, 50);

        // Exact re-delivery: recognised, nothing re-applied.
        let dup = f.ingest_one(&b0);
        assert_eq!(dup.status, IngestStatus::Duplicate);
        assert_eq!(dup.windows, 0);
        assert_eq!(dup.next_seq, 50);

        // Overlapping re-delivery (retransmit from tick 30): the stale
        // ticks are dropped by the guard, the new ones consumed.
        let overlap = batch_for(1, 30, 40);
        let reply = f.ingest_one(&overlap);
        assert_eq!(reply.status, IngestStatus::Accepted);
        assert!(reply.regressed, "stale ticks must be counted as regressed");
        assert_eq!(reply.next_seq, 70);
        assert_eq!(f.stats().duplicates, 1);
    }

    #[test]
    fn gaps_between_batches_are_bridged() {
        let f = fleet(FleetConfig::default());
        let _ = f.ingest_one(&batch_for(2, 0, 40));
        // The uplink lost ticks 40..60; the next batch starts at 60.
        let reply = f.ingest_one(&batch_for(2, 60, 20));
        assert_eq!(reply.status, IngestStatus::Accepted);
        assert_eq!(reply.next_seq, 80, "gap bridged, grid caught up");
    }

    #[test]
    fn capacity_rejection_is_explicit_not_silent() {
        let f = fleet(FleetConfig {
            shards: 1,
            max_sessions: 2,
            ..FleetConfig::default()
        });
        assert_eq!(
            f.ingest_one(&batch_for(1, 0, 10)).status,
            IngestStatus::Accepted
        );
        assert_eq!(
            f.ingest_one(&batch_for(2, 0, 10)).status,
            IngestStatus::Accepted
        );
        let reply = f.ingest_one(&batch_for(3, 0, 10));
        assert_eq!(reply.status, IngestStatus::Rejected);
        assert_eq!(f.stats().rejected, 1);
        // Existing wearers keep being served at capacity.
        assert_eq!(
            f.ingest_one(&batch_for(1, 10, 10)).status,
            IngestStatus::Accepted
        );
    }

    #[test]
    fn reaped_sessions_resume_warm_and_bit_identical() {
        let f = fleet(FleetConfig {
            shards: 2,
            ..FleetConfig::default()
        });
        let mut interrupted: Vec<u32> = Vec::new();
        let r = f.ingest_one(&batch_for(9, 0, 73));
        interrupted.extend(r.probs_bits);

        // Supervisor parks the idle session; its buffers are recycled.
        assert_eq!(f.reap_idle(Duration::ZERO), 1);
        let stats = f.stats();
        assert_eq!(stats.sessions_active, 0);
        assert_eq!(stats.sessions_parked, 1);
        assert_eq!(stats.sessions_free, 1);

        // The wearer reconnects and continues from tick 73.
        let r = f.ingest_one(&batch_for(9, 73, 127));
        assert_eq!(r.status, IngestStatus::Accepted);
        interrupted.extend(r.probs_bits);
        assert_eq!(f.stats().resumed, 1);
        // No fresh allocation: the recycled session was reused.
        assert_eq!(f.stats().sessions_created, 1);

        // An uninterrupted fleet sees the identical probability stream.
        let g = fleet(FleetConfig::default());
        let mut unbroken: Vec<u32> = Vec::new();
        unbroken.extend(g.ingest_one(&batch_for(9, 0, 73)).probs_bits);
        unbroken.extend(g.ingest_one(&batch_for(9, 73, 127)).probs_bits);
        assert_eq!(interrupted, unbroken);
    }

    #[test]
    fn shed_mode_keeps_cadence_and_degrades_the_trigger() {
        let f = fleet(FleetConfig::default());
        let batches = vec![batch_for(4, 0, 200)];
        let replies = f.ingest_many_with(&batches, true);
        let r = &replies[0];
        assert!(r.shed);
        assert_eq!(r.windows, 0, "no inference under shed");
        assert!(r.shed_windows > 0, "cadence still counted");
        assert!(r.probs_bits.is_empty());
        assert_eq!(f.stats().shed_windows, r.shed_windows);
        assert_eq!(f.stats().shed_batches, 1);

        // Recovery: the same wearer continues on the grid with
        // inference restored.
        let replies = f.ingest_many_with(&[batch_for(4, 200, 100)], false);
        assert!(replies[0].windows > 0);
        assert!(!replies[0].shed);
    }

    #[test]
    fn pressure_thresholds_drive_shed_and_reject() {
        let f = fleet(FleetConfig {
            shed_at: 2,
            reject_at: 4,
            ..FleetConfig::default()
        });
        assert!(!f.should_shed());
        let _g1 = f.pressure_guard();
        let _g2 = f.pressure_guard();
        assert!(f.should_shed());
        assert!(!f.should_reject());
        {
            let _g3 = f.pressure_guard();
            let _g4 = f.pressure_guard();
            assert!(f.should_reject());
        }
        assert!(!f.should_reject());
        drop(_g1);
        drop(_g2);
        assert!(!f.should_shed());
        assert_eq!(f.pressure(), 0);
    }

    #[test]
    fn parked_checkpoints_stay_bounded() {
        let f = fleet(FleetConfig {
            shards: 1,
            max_parked: 3,
            max_sessions: 64,
            ..FleetConfig::default()
        });
        for w in 0..10 {
            let _ = f.ingest_one(&batch_for(w, 0, 10));
        }
        assert_eq!(f.reap_idle(Duration::ZERO), 10);
        let stats = f.stats();
        assert_eq!(stats.sessions_parked, 3, "oldest checkpoints evicted");
        assert_eq!(stats.checkpoints_evicted, 7);
        assert_eq!(stats.sessions_free, 10);
    }

    #[test]
    fn checkpoint_export_import_survives_a_restart() {
        let f = fleet(FleetConfig::default());
        let mut probs: Vec<u32> = Vec::new();
        probs.extend(f.ingest_one(&batch_for(5, 0, 90)).probs_bits);
        let bytes = f.export_checkpoint(5).expect("live session exports");

        // "Restart": a brand-new fleet process imports the checkpoint.
        let g = fleet(FleetConfig::default());
        g.import_checkpoint(5, &bytes).unwrap();
        let r = g.ingest_one(&batch_for(5, 90, 110));
        assert_eq!(r.status, IngestStatus::Accepted);
        probs.extend(r.probs_bits);
        assert_eq!(g.stats().resumed, 1);

        // Bit-identical to never having restarted.
        let h = fleet(FleetConfig::default());
        let mut unbroken: Vec<u32> = Vec::new();
        unbroken.extend(h.ingest_one(&batch_for(5, 0, 90)).probs_bits);
        unbroken.extend(h.ingest_one(&batch_for(5, 90, 110)).probs_bits);
        assert_eq!(probs, unbroken);

        // Corrupted checkpoints are refused.
        let mut bad = f.export_checkpoint(5).unwrap();
        bad[10] ^= 0x40;
        assert!(g.import_checkpoint(5, &bad).is_err());
    }

    #[test]
    fn stats_json_names_every_field() {
        let f = fleet(FleetConfig::default());
        let _ = f.ingest_one(&batch_for(1, 0, 10));
        let doc = f.fleet_json();
        for key in [
            "sessions_active",
            "sessions_parked",
            "windows",
            "shed_windows",
            "duplicates",
            "rejected",
            "queue_depth_hw",
            "pressure",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            doc.get("sessions_active").and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn fleet_fingerprint_merges_tenant_views_and_survives_reaping() {
        let f = fleet(FleetConfig::default());
        for &w in &[1u64, 2, 3] {
            let _ = f.ingest_one(&batch_for(w, 0, 100));
        }
        // Fleet-wide view == the merge of every tenant view.
        let mut manual = Fingerprint::new();
        for &w in &[1u64, 2, 3] {
            manual.merge(&f.tenant_fingerprint(w).expect("active tenant"));
        }
        let whole = f.fleet_fingerprint();
        assert_eq!(whole.to_bytes(), manual.to_bytes());
        assert_eq!(whole.samples(), 300);
        assert!(whole.windows() > 0, "window scores folded");

        // Parking a wearer moves its evidence into the shard
        // accumulator: the tenant view disappears, the fleet-wide
        // fingerprint is unchanged.
        assert_eq!(f.reap_idle(Duration::ZERO), 3);
        assert!(f.tenant_fingerprint(1).is_none());
        assert_eq!(f.fleet_fingerprint().to_bytes(), whole.to_bytes());
    }

    #[test]
    fn duplicate_deliveries_do_not_double_count_drift_evidence() {
        let f = fleet(FleetConfig::default());
        let b = batch_for(7, 0, 60);
        let _ = f.ingest_one(&b);
        let once = f.fleet_fingerprint();
        // Exact re-delivery and an overlapping retransmit: only the
        // genuinely fresh ticks (60..80) may add evidence.
        let _ = f.ingest_one(&b);
        assert_eq!(f.fleet_fingerprint().to_bytes(), once.to_bytes());
        let _ = f.ingest_one(&batch_for(7, 40, 40));
        assert_eq!(f.fleet_fingerprint().samples(), 80);
    }

    #[test]
    fn fleet_fingerprint_is_bit_identical_across_thread_counts() {
        let mut bytes: Vec<Vec<u8>> = Vec::new();
        for threads in [1usize, 2, 8] {
            let f = fleet(FleetConfig {
                threads: Some(threads),
                ..FleetConfig::default()
            });
            for start in (0..200u64).step_by(25) {
                let batches: Vec<IngestBatch> = (0..9).map(|w| batch_for(w, start, 25)).collect();
                let _ = f.ingest_many(&batches);
            }
            bytes.push(f.fleet_fingerprint().to_bytes());
        }
        assert_eq!(bytes[0], bytes[1]);
        assert_eq!(bytes[1], bytes[2]);
    }

    #[test]
    fn drift_source_serves_global_and_tenant_documents() {
        let f = fleet(FleetConfig::default());
        let _ = f.ingest_one(&batch_for(1, 0, 120));
        let _ = f.ingest_one(&batch_for(2, 0, 120));

        // Reference = the fleet's own distribution: no alarm.
        f.set_drift_reference(f.fleet_fingerprint(), 0.25);
        let doc = f.drift_json(None).expect("global view");
        assert!(matches!(doc.get("reference"), Some(JsonValue::Bool(true))));
        assert!(matches!(doc.get("alarm"), Some(JsonValue::Bool(false))));
        assert_eq!(doc.get("samples").and_then(JsonValue::as_u64), Some(240));

        let tenant = f.drift_json(Some(1)).expect("tenant view");
        assert_eq!(tenant.get("samples").and_then(JsonValue::as_u64), Some(120));
        assert!(f.drift_json(Some(99)).is_none(), "unknown tenant is 404");
    }

    #[test]
    fn drift_gauges_publish_once_a_reference_is_committed() {
        use prefall_telemetry::Registry;
        let mut f = fleet(FleetConfig::default());
        let reg = Arc::new(Registry::new());
        f.set_recorder(reg.clone());
        let _ = f.ingest_one(&batch_for(3, 0, 100));

        f.publish_gauges();
        assert!(
            !reg.snapshot().gauges.contains_key("drift.input_psi"),
            "no reference, no drift gauges"
        );
        f.set_drift_reference(f.fleet_fingerprint(), 0.25);
        f.publish_gauges();
        let snap = reg.snapshot();
        for g in [
            "drift.input_psi",
            "drift.score_psi",
            "drift.samples",
            "drift.alarm",
        ] {
            assert!(snap.gauges.contains_key(g), "missing {g}");
        }
        assert_eq!(snap.gauges["drift.alarm"], 0.0);
    }

    #[test]
    fn supervisor_thread_parks_idle_sessions() {
        let f = Arc::new(fleet(FleetConfig {
            idle_timeout: Duration::from_millis(1),
            supervise_interval: Duration::from_millis(20),
            ..FleetConfig::default()
        }));
        let _ = f.ingest_one(&batch_for(1, 0, 10));
        let sup = f.spawn_supervisor();
        let deadline = Instant::now() + Duration::from_secs(5);
        while f.stats().sessions_parked == 0 {
            assert!(Instant::now() < deadline, "supervisor never reaped");
            std::thread::sleep(Duration::from_millis(5));
        }
        sup.shutdown();
        assert_eq!(f.stats().sessions_active, 0);
    }
}
