//! The ingest wire format: compact binary batches in, JSON replies
//! out.
//!
//! A wearer's device uplinks IMU samples in small batches (a few
//! hundred milliseconds each) tagged with the **grid tick of the first
//! sample** as the batch sequence number. Ticks are cumulative over
//! the session's life, so the sequence number is not a per-batch
//! counter but an absolute position on the 100 Hz grid — which is what
//! makes delivery idempotent: a duplicate batch covers ticks the
//! session has already consumed and is recognised without any
//! per-batch bookkeeping, a reordered batch is partially or wholly
//! stale in exactly the way [`Session::push_at`] already tolerates,
//! and a gap simply starts at a later tick and is bridged by the
//! sample guard.
//!
//! [`Session::push_at`]: prefall_core::session::Session::push_at
//!
//! The binary layout (all little-endian):
//!
//! ```text
//! magic   u32   0x5046_4942 ("PFIB")
//! version u16   1
//! wearer  u64
//! seq     u64   grid tick of samples[0]
//! count   u16
//! count × { kind u8 (0 = missing, 1 = sample)
//!           if sample: ax ay az gx gy gz (6 × f32) }
//! ```

use prefall_telemetry::JsonValue;

/// Wire magic: `"PFIB"` as a little-endian `u32`.
pub const BATCH_MAGIC: u32 = 0x5046_4942;
/// Wire format version.
pub const BATCH_VERSION: u16 = 1;
/// Hard cap on samples per batch: at 100 Hz this is ~40 s of signal,
/// far beyond any sane uplink cadence, and it bounds the allocation a
/// hostile header can demand.
pub const MAX_BATCH_SAMPLES: usize = 4096;

/// One slot in a batch: a real sample or an explicit gap marker the
/// device emits when its own sensor dropped a reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchSample {
    /// The device knows it lost this tick.
    Missing,
    /// A real accelerometer + gyroscope reading.
    Sample {
        /// Accelerometer reading, g.
        accel: [f32; 3],
        /// Gyroscope reading, deg/s.
        gyro: [f32; 3],
    },
}

/// One uplinked batch of consecutive grid ticks for one wearer.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestBatch {
    /// Stable wearer identity (sessions key on this).
    pub wearer: u64,
    /// Grid tick of `samples[0]`; sample `i` lands at `seq + i`.
    pub seq: u64,
    /// The consecutive samples.
    pub samples: Vec<BatchSample>,
}

impl IngestBatch {
    /// Serialises the batch into the wire layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(24 + self.samples.len() * 25);
        b.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        b.extend_from_slice(&BATCH_VERSION.to_le_bytes());
        b.extend_from_slice(&self.wearer.to_le_bytes());
        b.extend_from_slice(&self.seq.to_le_bytes());
        b.extend_from_slice(&(self.samples.len() as u16).to_le_bytes());
        for s in &self.samples {
            match s {
                BatchSample::Missing => b.push(0),
                BatchSample::Sample { accel, gyro } => {
                    b.push(1);
                    for v in accel.iter().chain(gyro.iter()) {
                        b.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        b
    }

    /// Parses a batch, refusing truncation, bad magic/version, and
    /// counts past [`MAX_BATCH_SAMPLES`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes, pos: 0 };
        if r.u32()? != BATCH_MAGIC {
            return Err("bad batch magic".into());
        }
        if r.u16()? != BATCH_VERSION {
            return Err("unsupported batch version".into());
        }
        let wearer = r.u64()?;
        let seq = r.u64()?;
        let count = r.u16()? as usize;
        if count > MAX_BATCH_SAMPLES {
            return Err(format!("batch of {count} samples exceeds cap"));
        }
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            match r.u8()? {
                0 => samples.push(BatchSample::Missing),
                1 => {
                    let mut v = [0f32; 6];
                    for slot in &mut v {
                        *slot = r.f32()?;
                    }
                    samples.push(BatchSample::Sample {
                        accel: [v[0], v[1], v[2]],
                        gyro: [v[3], v[4], v[5]],
                    });
                }
                k => return Err(format!("unknown sample kind {k}")),
            }
        }
        if r.pos != bytes.len() {
            return Err("trailing bytes after batch".into());
        }
        Ok(Self {
            wearer,
            seq,
            samples,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err("truncated batch".into()),
        }
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// How the fleet disposed of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestStatus {
    /// Processed (possibly partially stale ticks, possibly shed).
    Accepted,
    /// Every tick was already consumed — an idempotent re-delivery.
    Duplicate,
    /// No session capacity for a new wearer; retry after backoff.
    Rejected,
}

impl IngestStatus {
    fn as_str(self) -> &'static str {
        match self {
            IngestStatus::Accepted => "accepted",
            IngestStatus::Duplicate => "duplicate",
            IngestStatus::Rejected => "rejected",
        }
    }
}

/// The per-batch reply. `probs_bits` carries each emitted window
/// probability as `f32::to_bits` so clients (and the bench's
/// bit-identity gate) compare exactly, immune to float formatting.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReply {
    /// Echoed wearer identity.
    pub wearer: u64,
    /// Disposition of the whole batch.
    pub status: IngestStatus,
    /// The next tick the session expects — the client's resume point
    /// after a gap, duplicate, or reconnect.
    pub next_seq: u64,
    /// Windows classified while consuming this batch.
    pub windows: u64,
    /// Window boundaries crossed under load shedding (no inference).
    pub shed_windows: u64,
    /// Whether the batch was served in shed (accel-confirm-only) mode.
    pub shed: bool,
    /// The trigger decision after this batch (degraded policy when
    /// `shed`).
    pub trigger: bool,
    /// Whether any tick in the batch regressed behind the grid (was
    /// dropped and counted, not applied).
    pub regressed: bool,
    /// Emitted window probabilities, bit-exact.
    pub probs_bits: Vec<u32>,
}

impl IngestReply {
    /// The reply as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("wearer".to_string(), JsonValue::U64(self.wearer)),
            (
                "status".to_string(),
                JsonValue::Str(self.status.as_str().to_string()),
            ),
            ("next_seq".to_string(), JsonValue::U64(self.next_seq)),
            ("windows".to_string(), JsonValue::U64(self.windows)),
            (
                "shed_windows".to_string(),
                JsonValue::U64(self.shed_windows),
            ),
            ("shed".to_string(), JsonValue::Bool(self.shed)),
            ("trigger".to_string(), JsonValue::Bool(self.trigger)),
            ("regressed".to_string(), JsonValue::Bool(self.regressed)),
            (
                "probs_bits".to_string(),
                JsonValue::Arr(
                    self.probs_bits
                        .iter()
                        .map(|&b| JsonValue::U64(u64::from(b)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a reply produced by [`IngestReply::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let u = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing field {k}"))
        };
        let b = |k: &str| {
            doc.get(k)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("missing field {k}"))
        };
        let status = match doc.get("status") {
            Some(JsonValue::Str(s)) if s == "accepted" => IngestStatus::Accepted,
            Some(JsonValue::Str(s)) if s == "duplicate" => IngestStatus::Duplicate,
            Some(JsonValue::Str(s)) if s == "rejected" => IngestStatus::Rejected,
            _ => return Err("missing or unknown status".into()),
        };
        let probs_bits = match doc.get("probs_bits") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_u64()
                        .and_then(|x| u32::try_from(x).ok())
                        .ok_or_else(|| "bad probs_bits entry".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?,
            _ => return Err("missing probs_bits".into()),
        };
        Ok(Self {
            wearer: u("wearer")?,
            status,
            next_seq: u("next_seq")?,
            windows: u("windows")?,
            shed_windows: u("shed_windows")?,
            shed: b("shed")?,
            trigger: b("trigger")?,
            regressed: b("regressed")?,
            probs_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> IngestBatch {
        IngestBatch {
            wearer: 42,
            seq: 1700,
            samples: vec![
                BatchSample::Sample {
                    accel: [0.01, -0.02, 1.0],
                    gyro: [0.5, -0.25, 0.125],
                },
                BatchSample::Missing,
                BatchSample::Sample {
                    accel: [f32::MIN_POSITIVE, 0.0, -1.0],
                    gyro: [360.0, -360.0, 0.0],
                },
            ],
        }
    }

    #[test]
    fn batch_round_trips_bit_exactly() {
        let batch = sample_batch();
        let again = IngestBatch::from_bytes(&batch.to_bytes()).unwrap();
        assert_eq!(batch, again);
    }

    #[test]
    fn corrupted_batches_are_refused() {
        let bytes = sample_batch().to_bytes();
        for cut in [0, 1, 5, 12, bytes.len() - 1] {
            assert!(IngestBatch::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(IngestBatch::from_bytes(&bad_magic).is_err());
        let mut bad_kind = bytes.clone();
        bad_kind[24] = 7;
        assert!(IngestBatch::from_bytes(&bad_kind).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(IngestBatch::from_bytes(&trailing).is_err());
    }

    #[test]
    fn oversized_counts_are_refused_before_allocation() {
        // A hostile header claiming 65535 samples with no payload.
        let mut b = Vec::new();
        b.extend_from_slice(&BATCH_MAGIC.to_le_bytes());
        b.extend_from_slice(&BATCH_VERSION.to_le_bytes());
        b.extend_from_slice(&1u64.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&u16::MAX.to_le_bytes());
        let err = IngestBatch::from_bytes(&b).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn reply_round_trips_through_json() {
        let reply = IngestReply {
            wearer: 7,
            status: IngestStatus::Accepted,
            next_seq: 1234,
            windows: 3,
            shed_windows: 1,
            shed: true,
            trigger: false,
            regressed: true,
            probs_bits: vec![0.25f32.to_bits(), f32::NAN.to_bits()],
        };
        let text = reply.to_json().to_string();
        let again = IngestReply::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(reply, again);
    }
}
