//! Shared hand-rolled HTTP/1.1 plumbing for the hand-rolled servers.
//!
//! Both the metrics exporter ([`crate::server`]) and the
//! `prefall-fleet` ingest listener speak the same ten lines of HTTP:
//! a request line, a bounded header block, an optional
//! `Content-Length`-framed body, a `Content-Length`-framed response.
//! This module is that dialect, written once:
//!
//! * [`read_request`] — parses one request off a [`BufReader`] under a
//!   hard wall-clock *deadline*: every blocking read is armed with the
//!   time remaining, so a client that trickles one byte per second (the
//!   slowloris pattern) is cut off when the budget runs out instead of
//!   pinning the serving thread for minutes.
//! * [`respond`] / [`respond_with`] — `Content-Length`-framed
//!   responses, the latter with keep-alive and extra headers (the
//!   fleet's `Retry-After` backpressure hint).
//! * [`is_timeout`] — the deadline shows up as `TimedOut` *or*
//!   `WouldBlock` depending on platform; callers count either as a
//!   connection timeout.
//!
//! The dialect is deliberately small: no chunked encoding, no TLS, no
//! multiline headers. Both servers bind loopback in every shipped
//! configuration.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Cap on any single header or request line.
const MAX_LINE: u64 = 4096;
/// Cap on the number of header lines drained per request.
const MAX_HEADERS: usize = 64;

/// One parsed request: the start line, the two headers the servers
/// care about, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, e.g. `GET` or `POST`.
    pub method: String,
    /// Request target, query string included.
    pub path: String,
    /// The `Content-Length`-framed body (empty when none was sent).
    pub body: Vec<u8>,
    /// Whether the client may send another request on this connection
    /// (`HTTP/1.1` default, overridden by `Connection:` headers).
    pub keep_alive: bool,
}

/// `true` when an I/O error is a read/write timeout — the deadline in
/// [`read_request`] surfaces as `TimedOut` on some platforms and
/// `WouldBlock` on others.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Arms the stream's read timeout with the time left until `deadline`,
/// failing with `TimedOut` when the budget is already spent.
fn arm_read(stream: &TcpStream, deadline: Instant) -> io::Result<()> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "connection deadline exceeded"))?;
    stream.set_read_timeout(Some(remaining))
}

/// Reads and parses one HTTP request, enforcing `deadline` on every
/// blocking read. Returns `Ok(None)` on a clean end-of-stream before
/// any bytes (the peer closed an idle keep-alive connection).
///
/// The reader is caller-owned so keep-alive loops retain buffered
/// pipelined bytes between calls.
///
/// # Errors
///
/// * [`io::ErrorKind::TimedOut`] / `WouldBlock` when the deadline cuts
///   a read short (see [`is_timeout`]);
/// * [`io::ErrorKind::InvalidData`] for malformed framing or a body
///   larger than `max_body` — callers should answer 400/413 and close;
/// * any underlying socket error.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
    max_body: usize,
) -> io::Result<Option<HttpRequest>> {
    arm_read(reader.get_ref(), deadline)?;
    let mut request_line = String::new();
    if reader
        .by_ref()
        .take(MAX_LINE)
        .read_line(&mut request_line)?
        == 0
    {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || path.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    }

    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length = 0usize;
    let mut header = String::new();
    for _ in 0..MAX_HEADERS {
        arm_read(reader.get_ref(), deadline)?;
        header.clear();
        if reader.by_ref().take(MAX_LINE).read_line(&mut header)? == 0
            || header == "\r\n"
            || header == "\n"
        {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    if content_length > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body exceeds cap",
        ));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        arm_read(reader.get_ref(), deadline)?;
        reader.read_exact(&mut body)?;
    }
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Writes a `Connection: close` text response — the exporter's shape.
pub fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    head_only: bool,
) -> io::Result<()> {
    respond_with(
        stream,
        code,
        reason,
        content_type,
        body.as_bytes(),
        head_only,
        false,
        &[],
    )
}

/// The general form: keep-alive control and extra headers (the fleet's
/// `Retry-After` hint rides here).
#[allow(clippy::too_many_arguments)]
pub fn respond_with(
    stream: &mut impl Write,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    head_only: bool,
    keep_alive: bool,
    extra: &[(&str, String)],
) -> io::Result<()> {
    let mut header = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra {
        header.push_str(name);
        header.push_str(": ");
        header.push_str(value);
        header.push_str("\r\n");
    }
    header.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body)?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn parses_a_request_with_body_and_keep_alive() {
        let (mut client, server) = pair();
        write!(
            client,
            "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
        )
        .unwrap();
        let mut reader = BufReader::new(server);
        let req = read_request(
            &mut reader,
            Instant::now() + Duration::from_secs(1),
            1 << 20,
        )
        .unwrap()
        .expect("one request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/ingest");
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let (mut client, server) = pair();
        write!(client, "GET /a HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        write!(client, "GET /b HTTP/1.0\r\n\r\n").unwrap();
        let mut reader = BufReader::new(server);
        let deadline = Instant::now() + Duration::from_secs(1);
        let a = read_request(&mut reader, deadline, 0).unwrap().unwrap();
        assert!(!a.keep_alive);
        let b = read_request(&mut reader, deadline, 0).unwrap().unwrap();
        assert!(!b.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        let (client, server) = pair();
        drop(client);
        let mut reader = BufReader::new(server);
        let got = read_request(&mut reader, Instant::now() + Duration::from_secs(1), 0).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn stalled_request_times_out_at_the_deadline() {
        let (mut client, server) = pair();
        // A slowloris: the request line never finishes.
        write!(client, "GET /metr").unwrap();
        client.flush().unwrap();
        let mut reader = BufReader::new(server);
        let start = Instant::now();
        let err = read_request(&mut reader, start + Duration::from_millis(120), 0)
            .expect_err("must time out");
        assert!(is_timeout(&err), "unexpected error kind: {err:?}");
        assert!(start.elapsed() < Duration::from_secs(2), "bounded wait");
    }

    #[test]
    fn oversized_bodies_are_refused_before_allocation() {
        let (mut client, server) = pair();
        write!(
            client,
            "POST /ingest HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        )
        .unwrap();
        let mut reader = BufReader::new(server);
        let err = read_request(&mut reader, Instant::now() + Duration::from_secs(1), 1024)
            .expect_err("must refuse");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn respond_with_carries_extra_headers() {
        let mut out = Vec::new();
        respond_with(
            &mut out,
            429,
            "Too Many Requests",
            "text/plain",
            b"backoff\n",
            false,
            true,
            &[("Retry-After", "2".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nbackoff\n"), "{text}");
    }
}
