//! Observability daemon layer on top of `prefall-telemetry`: serve the
//! live metrics the rest of the stack records, without adding a single
//! external dependency.
//!
//! The paper's deployment story rests on two observable quantities —
//! inference latency against the 150 ms airbag-inflation budget, and
//! event-level misclassification per activity (Table IV). PR 1 made
//! both *recordable*; this crate makes them *scrapeable*:
//!
//! * [`prometheus`] — Prometheus text exposition (v0.0.4) of a
//!   [`Snapshot`], including the `name{key=value}` inline-label
//!   convention the per-activity quality counters use;
//! * [`health`] — the `/healthz` verdict: detector liveness plus a
//!   lead-time-budget check derived from the `detector.lead_time_ms`
//!   histogram;
//! * [`server`] — a hand-rolled HTTP/1.1 listener on
//!   [`std::net::TcpListener`] (one background thread, shared
//!   [`Registry`]) exposing `/metrics`, `/healthz`, `/snapshot` and —
//!   with an [`IncidentSource`] attached — `/incidents`;
//! * [`incidents`] — the seam the `prefall-blackbox` flight recorder
//!   plugs into to make recent incident dumps scrapeable.
//!
//! # Quickstart
//!
//! ```no_run
//! use prefall_obsd::{MetricsServer, ServerConfig};
//! use prefall_telemetry::{Recorder, Registry};
//! use std::sync::Arc;
//!
//! # fn main() -> std::io::Result<()> {
//! let registry = Arc::new(Registry::new());
//! let server = MetricsServer::start("127.0.0.1:9898", Arc::clone(&registry), ServerConfig::default())?;
//! registry.counter_add("detector.windows", 1);
//! println!("scrape {}/metrics", server.url());
//! # Ok(())
//! # }
//! ```
//!
//! Every bench binary honours `PREFALL_METRICS_ADDR=<addr>` (parsed by
//! [`prefall_telemetry::TelemetryEnv`]) and starts this exporter on the
//! given address for the duration of the run.
//!
//! [`Snapshot`]: prefall_telemetry::Snapshot
//! [`Registry`]: prefall_telemetry::Registry

pub mod drift;
pub mod fleet;
pub mod health;
pub mod http;
pub mod incidents;
pub mod prometheus;
pub mod server;
pub mod watch;

pub use drift::DriftSource;
pub use fleet::FleetSource;
pub use health::{HealthReport, HealthStatus};
pub use http::HttpRequest;
pub use incidents::IncidentSource;
pub use server::{MetricsServer, ServerConfig};
pub use watch::WatchSource;

use prefall_telemetry::{Registry, TelemetryEnv};
use std::sync::Arc;

/// Starts the exporter when the environment asks for one
/// (`PREFALL_METRICS_ADDR=<addr>`), serving the given registry with the
/// default [`ServerConfig`]. Returns `None` when the variable is unset;
/// bind failures are reported on stderr rather than aborting the run —
/// a benchmark must not die because a port is taken.
pub fn serve_from_env(registry: &Arc<Registry>) -> Option<MetricsServer> {
    let addr = TelemetryEnv::from_env().metrics_addr?;
    match MetricsServer::start(addr.as_str(), Arc::clone(registry), ServerConfig::default()) {
        Ok(server) => {
            eprintln!(
                "[prefall] metrics endpoint live at {}/metrics (healthz, snapshot)",
                server.url()
            );
            Some(server)
        }
        Err(e) => {
            eprintln!("[prefall] cannot bind metrics endpoint on {addr}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_from_env_is_none_without_the_variable() {
        // Env-var hygiene: only assert the unset path here; the bound
        // path is covered by server tests with explicit addresses.
        std::env::remove_var("PREFALL_METRICS_ADDR");
        let registry = Arc::new(Registry::new());
        assert!(serve_from_env(&registry).is_none());
    }
}
