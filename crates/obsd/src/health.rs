//! Liveness and lead-time-budget health, derived from a telemetry
//! [`Snapshot`].
//!
//! The paper's deployment constraint is that a triggered airbag needs
//! 150 ms to reach full extension, so a detection only protects the
//! wearer when its lead time before impact is at least the inflation
//! budget. `/healthz` turns the `detector.lead_time_ms` histogram into
//! a pass/fail signal: the estimated fraction of triggered falls whose
//! lead time meets the budget, compared against a configurable floor.
//!
//! The probe also watches the hardened ingest: the `guard.faults` /
//! `guard.samples` counters published by the detector's `SampleGuard`
//! yield a sensor fault rate, and the endpoint reports `degraded` when
//! that rate exceeds its budget — a wearable whose IMU is failing needs
//! service even while the model itself still scores well.

use prefall_telemetry::{HistogramSnapshot, JsonValue, Snapshot};

/// Metric names the health probe reads.
pub const LEAD_TIME_METRIC: &str = "detector.lead_time_ms";
/// Counter proving the streaming detector classified at least one window.
pub const WINDOWS_METRIC: &str = "detector.windows";
/// Counter of ingest faults handled by the detector's sample guard.
pub const GUARD_FAULTS_METRIC: &str = "guard.faults";
/// Counter of grid ticks ingested by the detector's sample guard.
pub const GUARD_SAMPLES_METRIC: &str = "guard.samples";

/// Overall health status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Lead-time budget satisfied (or the probe is alive but has not
    /// yet observed any triggered fall).
    Ok,
    /// Lead times are being recorded and too many fall below budget.
    Degraded,
}

impl HealthStatus {
    /// The conventional string form (`"ok"` / `"degraded"`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
        }
    }

    /// The HTTP status code `/healthz` responds with.
    pub fn http_code(self) -> u16 {
        match self {
            HealthStatus::Ok => 200,
            HealthStatus::Degraded => 503,
        }
    }
}

/// The `/healthz` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Overall verdict.
    pub status: HealthStatus,
    /// Windows classified by the streaming detector so far.
    pub windows: u64,
    /// Whether the detector has classified at least one window.
    pub detector_live: bool,
    /// Inflation budget in ms the lead times are judged against.
    pub budget_ms: f64,
    /// Minimum acceptable fraction of lead times ≥ budget.
    pub min_budget_fraction: f64,
    /// Triggered falls with a recorded lead time.
    pub lead_times: u64,
    /// Estimated fraction of lead times ≥ budget (NaN with no data).
    pub budget_fraction: f64,
    /// Median lead time in ms (NaN with no data).
    pub lead_p50_ms: f64,
    /// Grid ticks ingested by the sample guard.
    pub guard_samples: u64,
    /// Ingest faults the sample guard handled.
    pub guard_faults: u64,
    /// Faults per ingested tick (NaN before any guarded ingest).
    pub fault_rate: f64,
    /// Maximum acceptable fault rate before the probe degrades.
    pub max_fault_rate: f64,
    /// `true` when the fault rate exceeded its budget.
    pub faults_over_budget: bool,
}

/// Estimated fraction of observations ≥ `x`, from bucket counts with
/// uniform-within-bucket interpolation (the same assumption the
/// snapshot quantiles make).
pub fn fraction_at_least(h: &HistogramSnapshot, x: f64) -> f64 {
    let total: u64 = h.counts.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    let mut below = 0.0;
    for (i, &c) in h.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let lo = if i == 0 {
            h.min
        } else {
            h.bounds[i - 1].max(h.min)
        };
        let hi = if i < h.bounds.len() {
            h.bounds[i].min(h.max.max(lo))
        } else {
            h.max
        };
        if hi <= x {
            below += c as f64;
        } else if lo < x {
            let width = hi - lo;
            let frac = if width > 0.0 { (x - lo) / width } else { 0.0 };
            below += c as f64 * frac.clamp(0.0, 1.0);
        }
    }
    (1.0 - below / total as f64).clamp(0.0, 1.0)
}

impl HealthReport {
    /// Evaluates health against the given inflation budget, the
    /// minimum acceptable in-budget fraction, and the maximum
    /// acceptable ingest fault rate.
    pub fn from_snapshot(
        snapshot: &Snapshot,
        budget_ms: f64,
        min_budget_fraction: f64,
        max_fault_rate: f64,
    ) -> Self {
        let windows = snapshot.counters.get(WINDOWS_METRIC).copied().unwrap_or(0);
        let lead = snapshot.histograms.get(LEAD_TIME_METRIC);
        let lead_times = lead.map_or(0, |h| h.count);
        let budget_fraction = lead.map_or(f64::NAN, |h| fraction_at_least(h, budget_ms));
        let lead_p50_ms = lead.map_or(f64::NAN, |h| h.p50);
        let guard_samples = snapshot
            .counters
            .get(GUARD_SAMPLES_METRIC)
            .copied()
            .unwrap_or(0);
        let guard_faults = snapshot
            .counters
            .get(GUARD_FAULTS_METRIC)
            .copied()
            .unwrap_or(0);
        let fault_rate = if guard_samples == 0 {
            f64::NAN
        } else {
            guard_faults as f64 / guard_samples as f64
        };
        let faults_over_budget = fault_rate.is_finite() && fault_rate > max_fault_rate;
        // No lead times yet → nothing to judge; stay Ok so a freshly
        // started exporter does not flap its liveness probe.
        let status = if (budget_fraction.is_finite() && budget_fraction < min_budget_fraction)
            || faults_over_budget
        {
            HealthStatus::Degraded
        } else {
            HealthStatus::Ok
        };
        Self {
            status,
            windows,
            detector_live: windows > 0,
            budget_ms,
            min_budget_fraction,
            lead_times,
            budget_fraction,
            lead_p50_ms,
            guard_samples,
            guard_faults,
            fault_rate,
            max_fault_rate,
            faults_over_budget,
        }
    }

    /// The JSON body `/healthz` serves.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            (
                "status".to_string(),
                JsonValue::Str(self.status.as_str().to_string()),
            ),
            (
                "detector_live".to_string(),
                JsonValue::Bool(self.detector_live),
            ),
            ("windows".to_string(), JsonValue::U64(self.windows)),
            ("budget_ms".to_string(), JsonValue::F64(self.budget_ms)),
            (
                "min_budget_fraction".to_string(),
                JsonValue::F64(self.min_budget_fraction),
            ),
            ("lead_times".to_string(), JsonValue::U64(self.lead_times)),
            (
                "budget_fraction".to_string(),
                JsonValue::F64(self.budget_fraction),
            ),
            ("lead_p50_ms".to_string(), JsonValue::F64(self.lead_p50_ms)),
            (
                "guard_samples".to_string(),
                JsonValue::U64(self.guard_samples),
            ),
            (
                "guard_faults".to_string(),
                JsonValue::U64(self.guard_faults),
            ),
            ("fault_rate".to_string(), JsonValue::F64(self.fault_rate)),
            (
                "max_fault_rate".to_string(),
                JsonValue::F64(self.max_fault_rate),
            ),
            (
                "faults_over_budget".to_string(),
                JsonValue::Bool(self.faults_over_budget),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_telemetry::{Recorder, Registry};

    fn lead_registry(values: &[f64]) -> Registry {
        let reg = Registry::new();
        reg.register_histogram(
            LEAD_TIME_METRIC,
            (1..=40).map(|i| f64::from(i) * 25.0).collect(),
        );
        for &v in values {
            reg.observe(LEAD_TIME_METRIC, v);
        }
        reg.counter_add(WINDOWS_METRIC, values.len() as u64);
        reg
    }

    #[test]
    fn empty_snapshot_is_ok_but_not_live() {
        let report = HealthReport::from_snapshot(&Registry::new().snapshot(), 150.0, 0.9, 0.05);
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(!report.detector_live);
        assert!(report.budget_fraction.is_nan());
        assert_eq!(report.status.http_code(), 200);
    }

    #[test]
    fn healthy_lead_times_stay_ok() {
        let reg = lead_registry(&[300.0, 400.0, 500.0, 600.0]);
        let report = HealthReport::from_snapshot(&reg.snapshot(), 150.0, 0.9, 0.05);
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.detector_live);
        assert!(report.budget_fraction > 0.95, "{}", report.budget_fraction);
        assert_eq!(report.lead_times, 4);
    }

    #[test]
    fn short_lead_times_degrade() {
        // Three of four triggers fire with < 150 ms to spare.
        let reg = lead_registry(&[30.0, 60.0, 110.0, 500.0]);
        let report = HealthReport::from_snapshot(&reg.snapshot(), 150.0, 0.9, 0.05);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert_eq!(report.status.http_code(), 503);
        assert!(report.budget_fraction < 0.5);
    }

    #[test]
    fn fraction_at_least_interpolates() {
        let reg = lead_registry(&[100.0, 200.0]);
        let snap = reg.snapshot();
        let h = &snap.histograms[LEAD_TIME_METRIC];
        assert!((fraction_at_least(h, 0.0) - 1.0).abs() < 1e-9);
        assert!(fraction_at_least(h, 1000.0).abs() < 1e-9);
        let mid = fraction_at_least(h, 150.0);
        assert!((0.25..=0.75).contains(&mid), "{mid}");
    }

    #[test]
    fn fault_rate_over_budget_degrades() {
        let reg = lead_registry(&[300.0, 400.0, 500.0]);
        reg.counter_add(GUARD_SAMPLES_METRIC, 1000);
        reg.counter_add(GUARD_FAULTS_METRIC, 120); // 12 % faults
        let report = HealthReport::from_snapshot(&reg.snapshot(), 150.0, 0.9, 0.05);
        assert_eq!(report.status, HealthStatus::Degraded);
        assert!(report.faults_over_budget);
        assert!((report.fault_rate - 0.12).abs() < 1e-12);
        assert_eq!(report.guard_samples, 1000);
        assert_eq!(report.guard_faults, 120);
    }

    #[test]
    fn fault_rate_within_budget_stays_ok() {
        let reg = lead_registry(&[300.0, 400.0, 500.0]);
        reg.counter_add(GUARD_SAMPLES_METRIC, 1000);
        reg.counter_add(GUARD_FAULTS_METRIC, 20); // 2 % faults
        let report = HealthReport::from_snapshot(&reg.snapshot(), 150.0, 0.9, 0.05);
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(!report.faults_over_budget);
        // And with no guarded ingest at all, the rate is unknowable.
        let bare = HealthReport::from_snapshot(&Registry::new().snapshot(), 150.0, 0.9, 0.05);
        assert!(bare.fault_rate.is_nan());
        assert!(!bare.faults_over_budget);
    }

    #[test]
    fn health_json_has_all_fields() {
        let reg = lead_registry(&[300.0]);
        let text = HealthReport::from_snapshot(&reg.snapshot(), 150.0, 0.9, 0.05)
            .to_json()
            .to_string();
        for key in [
            "status",
            "detector_live",
            "windows",
            "budget_ms",
            "lead_times",
            "budget_fraction",
            "lead_p50_ms",
            "guard_samples",
            "guard_faults",
            "fault_rate",
            "max_fault_rate",
            "faults_over_budget",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
