//! Serving fleet-server statistics over HTTP.
//!
//! Like [`IncidentSource`](crate::incidents::IncidentSource) and
//! [`WatchSource`](crate::watch::WatchSource), this is a seam: the
//! multi-stream session registry lives in `prefall-fleet`, which
//! depends on this crate — so the exporter consumes a small
//! `JsonValue`-shaped view that the fleet handle implements, and
//! [`MetricsServer::start_with_fleet`] plugs it into the `/fleet`
//! route.
//!
//! [`MetricsServer::start_with_fleet`]: crate::server::MetricsServer::start_with_fleet

use prefall_telemetry::JsonValue;

/// A provider of fleet serving state for the `/fleet` route:
/// sessions active/parked/free, queue depth high-water, shed and
/// reject totals. Implementations must be internally synchronised and
/// cheap to call from the serving thread.
pub trait FleetSource: Send + Sync {
    /// The current fleet stats document.
    fn fleet_json(&self) -> JsonValue;
}
