//! A hand-rolled HTTP/1.1 exporter on [`std::net::TcpListener`]: one
//! background thread, a shared [`Registry`], three routes.
//!
//! | route | serves |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition of the live registry |
//! | `GET /healthz` | JSON liveness + lead-time-budget verdict (`503` when degraded) |
//! | `GET /snapshot` | full registry snapshot as JSON |
//!
//! The server deliberately implements only what a scraper needs:
//! `GET`/`HEAD`, `Connection: close`, `Content-Length` framing. There
//! is no TLS, keep-alive, or chunking — it binds to loopback in every
//! shipped configuration and a real deployment would sit it behind the
//! service mesh anyway.

use crate::health::HealthReport;
use crate::prometheus;
use prefall_telemetry::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Exporter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Namespace prefixed to every exported metric name.
    pub namespace: String,
    /// Airbag inflation budget (ms) the health probe judges lead times
    /// against.
    pub budget_ms: f64,
    /// Minimum acceptable fraction of lead times ≥ budget before
    /// `/healthz` degrades.
    pub min_budget_fraction: f64,
    /// Maximum acceptable sensor fault rate (`guard.faults` per
    /// `guard.samples`) before `/healthz` degrades.
    pub max_fault_rate: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            namespace: "prefall".to_string(),
            budget_ms: 150.0,
            min_budget_fraction: 0.9,
            max_fault_rate: 0.05,
        }
    }
}

/// A running metrics endpoint. Dropping the handle stops the listener
/// thread (see [`MetricsServer::shutdown`] for the explicit form).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9898`; port `0` picks a free port,
    /// see [`MetricsServer::addr`]) and starts serving the registry on
    /// a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the thread can notice the stop flag
        // without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("prefall-obsd".to_string())
            .spawn(move || serve_loop(listener, registry, config, thread_stop))
            .expect("spawn exporter thread");
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Convenience base URL, e.g. `http://127.0.0.1:9898`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are small and rare; handling them serially
                // keeps the server single-threaded and unkillable by
                // thread exhaustion. A stuck client is bounded by the
                // read/write timeouts.
                let _ = handle_connection(stream, &registry, &config);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    config: &ServerConfig,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);

    let mut request_line = String::new();
    // Cap the request line; a scraper's is tens of bytes.
    reader.by_ref().take(4096).read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    // Drain (bounded) headers so well-behaved clients see a clean close.
    let mut header = String::new();
    for _ in 0..64 {
        header.clear();
        if reader.by_ref().take(4096).read_line(&mut header)? == 0
            || header == "\r\n"
            || header == "\n"
        {
            break;
        }
    }

    let mut stream = reader.into_inner();
    if method != "GET" && method != "HEAD" {
        return respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
            method == "HEAD",
        );
    }

    // Strip any query string: `/metrics?format=…` still serves metrics.
    let route = path.split('?').next().unwrap_or(path);
    let (code, reason, content_type, body) = match route {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(&registry.snapshot(), &config.namespace),
        ),
        "/healthz" => {
            let report = HealthReport::from_snapshot(
                &registry.snapshot(),
                config.budget_ms,
                config.min_budget_fraction,
                config.max_fault_rate,
            );
            let code = report.status.http_code();
            let reason = if code == 200 {
                "OK"
            } else {
                "Service Unavailable"
            };
            let mut body = report.to_json().to_string();
            body.push('\n');
            (code, reason, "application/json; charset=utf-8", body)
        }
        "/snapshot" => {
            let mut body = registry.snapshot().to_json().to_string();
            body.push('\n');
            (200, "OK", "application/json; charset=utf-8", body)
        }
        "/" => (
            200,
            "OK",
            "text/plain; charset=utf-8",
            "prefall-obsd: /metrics /healthz /snapshot\n".to_string(),
        ),
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    respond(
        &mut stream,
        code,
        reason,
        content_type,
        &body,
        method == "HEAD",
    )
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_telemetry::Recorder;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let code = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_and_snapshot() {
        let registry = Arc::new(Registry::new());
        registry.counter_add("detector.windows", 3);
        registry.observe("detector.infer_seconds", 4e-3);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let addr = server.addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("prefall_detector_windows_total 3"), "{body}");
        assert!(body.contains("prefall_detector_infer_seconds_bucket"));

        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert!(body.contains("\"detector_live\":true"), "{body}");

        let (code, body) = get(addr, "/snapshot");
        assert_eq!(code, 200);
        let parsed = prefall_telemetry::JsonValue::parse(body.trim()).expect("valid json");
        assert!(parsed.get("counters").is_some());

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);
        server.shutdown();
    }

    #[test]
    fn healthz_degrades_on_short_lead_times() {
        let registry = Arc::new(Registry::new());
        registry.register_histogram(
            crate::health::LEAD_TIME_METRIC,
            vec![50.0, 100.0, 150.0, 500.0],
        );
        for _ in 0..10 {
            registry.observe(crate::health::LEAD_TIME_METRIC, 40.0);
        }
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
    }

    #[test]
    fn healthz_degrades_on_sensor_fault_storm() {
        let registry = Arc::new(Registry::new());
        // A fault rate of 12 % against the default 5 % budget: the
        // model is fine (no lead times recorded) but the IMU is not.
        registry.counter_add(crate::health::GUARD_SAMPLES_METRIC, 1000);
        registry.counter_add(crate::health::GUARD_FAULTS_METRIC, 120);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"faults_over_budget\":true"), "{body}");
        server.shutdown();
    }

    #[test]
    fn rejects_post_and_serves_live_updates() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        // The registry is shared: a counter bumped after startup is
        // visible on the next scrape.
        registry.counter_add("live.updates", 1);
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("prefall_live_updates_total 1"), "{body}");
    }
}
