//! A hand-rolled HTTP/1.1 exporter on [`std::net::TcpListener`]: one
//! background thread, a shared [`Registry`], a handful of routes.
//!
//! | route | serves |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition of the live registry |
//! | `GET /healthz` | JSON liveness + lead-time-budget verdict (`503` when degraded) |
//! | `GET /snapshot` | full registry snapshot as JSON, plus derived `guard` / `detector_mode` objects |
//! | `GET /incidents` | summaries of recent incident dumps (with an [`IncidentSource`] attached) |
//! | `GET /incidents/{id}` | one full incident dump as JSON |
//! | `GET /trace` | the most recently drained Chrome trace (with a [`LastTrace`] attached) — save it and open in Perfetto |
//! | `GET /tsdb?series=&window=` | windowed points of one sampled series, or the series catalogue (with a [`WatchSource`] attached) |
//! | `GET /slo` | current SLO evaluation state: burn rates, firing flags |
//! | `GET /alerts` | recent alert fire/resolve transitions |
//! | `GET /fleet` | multi-stream session registry stats (with a [`FleetSource`] attached) |
//! | `GET /drift?tenant=` | drift fingerprint scores, fleet-wide or per tenant (with a [`DriftSource`] attached) |
//!
//! The server deliberately implements only what a scraper needs:
//! `GET`/`HEAD`, `Connection: close`, `Content-Length` framing — the
//! shared dialect in [`crate::http`]. There is no TLS, keep-alive, or
//! chunking — it binds to loopback in every shipped configuration and
//! a real deployment would sit it behind the service mesh anyway.
//!
//! Every connection runs under [`ServerConfig::conn_deadline`]: a
//! client that dials in and trickles its request one byte at a time
//! (slowloris) is cut off when the budget runs out — the serving
//! thread is single and serial, so one stuck socket would otherwise
//! blind every scraper. Cut-offs are counted as `obsd.conn_timeouts`.

use crate::drift::DriftSource;
use crate::fleet::FleetSource;
use crate::health::HealthReport;
use crate::http;
use crate::incidents::IncidentSource;
use crate::prometheus;
use crate::watch::WatchSource;
use prefall_telemetry::{JsonValue, Registry, Snapshot};
use prefall_trace::LastTrace;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Exporter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Namespace prefixed to every exported metric name.
    pub namespace: String,
    /// Airbag inflation budget (ms) the health probe judges lead times
    /// against.
    pub budget_ms: f64,
    /// Minimum acceptable fraction of lead times ≥ budget before
    /// `/healthz` degrades.
    pub min_budget_fraction: f64,
    /// Maximum acceptable sensor fault rate (`guard.faults` per
    /// `guard.samples`) before `/healthz` degrades.
    pub max_fault_rate: f64,
    /// Wall-clock budget for one whole connection (request read +
    /// response write). A scraper finishes in milliseconds; a
    /// slowloris is cut off here and counted as `obsd.conn_timeouts`.
    pub conn_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            namespace: "prefall".to_string(),
            budget_ms: 150.0,
            min_budget_fraction: 0.9,
            max_fault_rate: 0.05,
            conn_deadline: Duration::from_secs(5),
        }
    }
}

/// The optional providers a fully-wired exporter serves from.
#[derive(Default)]
struct Sources {
    incidents: Option<Arc<dyn IncidentSource>>,
    trace: Option<Arc<LastTrace>>,
    watch: Option<Arc<dyn WatchSource>>,
    fleet: Option<Arc<dyn FleetSource>>,
    drift: Option<Arc<dyn DriftSource>>,
}

/// A running metrics endpoint. Dropping the handle stops the listener
/// thread (see [`MetricsServer::shutdown`] for the explicit form).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9898`; port `0` picks a free port,
    /// see [`MetricsServer::addr`]) and starts serving the registry on
    /// a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::start_with_incidents(addr, registry, config, None)
    }

    /// [`MetricsServer::start`] with an [`IncidentSource`] attached:
    /// additionally serves `/incidents` (summary list) and
    /// `/incidents/{id}` (full dump detail), and feeds every `/healthz`
    /// verdict back to the source so a flight recorder can dump on the
    /// healthy → degraded edge.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    pub fn start_with_incidents(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
        incidents: Option<Arc<dyn IncidentSource>>,
    ) -> std::io::Result<Self> {
        Self::start_full(addr, registry, config, incidents, None)
    }

    /// The fully-wired form: [`MetricsServer::start_with_incidents`]
    /// plus an optional [`LastTrace`] store. When attached, `/trace`
    /// serves the most recently drained Chrome trace-event JSON —
    /// whoever drains (a profile run, the streaming detector's
    /// supervisor) publishes via [`LastTrace::store`] and any Perfetto
    /// user pulls it over HTTP.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    pub fn start_full(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
        incidents: Option<Arc<dyn IncidentSource>>,
        trace: Option<Arc<LastTrace>>,
    ) -> std::io::Result<Self> {
        Self::start_with_watch(addr, registry, config, incidents, trace, None)
    }

    /// [`MetricsServer::start_full`] plus an optional [`WatchSource`].
    /// When attached, `/tsdb`, `/slo` and `/alerts` serve the watch
    /// layer's state, and a firing SLO flips `/healthz` to `503` with
    /// the firing names listed under `"slo_firing"`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    pub fn start_with_watch(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
        incidents: Option<Arc<dyn IncidentSource>>,
        trace: Option<Arc<LastTrace>>,
        watch: Option<Arc<dyn WatchSource>>,
    ) -> std::io::Result<Self> {
        Self::start_with_fleet(addr, registry, config, incidents, trace, watch, None)
    }

    /// [`MetricsServer::start_with_watch`] plus an optional
    /// [`FleetSource`]. When attached, `/fleet` serves the session
    /// registry's live stats (sessions active/parked/free, queue
    /// high-water, shed and reject totals).
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    pub fn start_with_fleet(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
        incidents: Option<Arc<dyn IncidentSource>>,
        trace: Option<Arc<LastTrace>>,
        watch: Option<Arc<dyn WatchSource>>,
        fleet: Option<Arc<dyn FleetSource>>,
    ) -> std::io::Result<Self> {
        Self::start_with_drift(addr, registry, config, incidents, trace, watch, fleet, None)
    }

    /// The outermost constructor: [`MetricsServer::start_with_fleet`]
    /// plus an optional [`DriftSource`]. When attached, `/drift`
    /// serves the global fingerprint-vs-reference scores and
    /// `/drift?tenant=<wearer>` the per-tenant view.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (`EADDRINUSE`, permission, bad address).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_drift(
        addr: impl ToSocketAddrs,
        registry: Arc<Registry>,
        config: ServerConfig,
        incidents: Option<Arc<dyn IncidentSource>>,
        trace: Option<Arc<LastTrace>>,
        watch: Option<Arc<dyn WatchSource>>,
        fleet: Option<Arc<dyn FleetSource>>,
        drift: Option<Arc<dyn DriftSource>>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the thread can notice the stop flag
        // without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let sources = Sources {
            incidents,
            trace,
            watch,
            fleet,
            drift,
        };
        let handle = std::thread::Builder::new()
            .name("prefall-obsd".to_string())
            .spawn(move || serve_loop(listener, registry, config, sources, thread_stop))
            .expect("spawn exporter thread");
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port `0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Convenience base URL, e.g. `http://127.0.0.1:9898`.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<Registry>,
    config: ServerConfig,
    sources: Sources,
    stop: Arc<AtomicBool>,
) {
    use prefall_telemetry::Recorder;
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Scrapes are small and rare; handling them serially
                // keeps the server single-threaded and unkillable by
                // thread exhaustion. A stuck client is bounded by the
                // per-connection deadline.
                let _ = handle_connection(stream, &registry, &config, &sources);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Real accept failures (EMFILE, ECONNABORTED storms)
                // are invisible without a counter — a scraper just sees
                // timeouts. Count them where /metrics can see them.
                registry.counter_add("obsd.accept_errors", 1);
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    config: &ServerConfig,
    sources: &Sources,
) -> std::io::Result<()> {
    use prefall_telemetry::Recorder;
    let incidents = sources.incidents.as_deref();
    let trace = sources.trace.as_deref();
    let watch = sources.watch.as_deref();
    let fleet = sources.fleet.as_deref();
    let drift = sources.drift.as_deref();

    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(config.conn_deadline))?;
    // The whole exchange — however slowly the client dribbles it —
    // must fit in one deadline. `read_request` re-arms the socket
    // timeout with the remaining budget before every read.
    let deadline = Instant::now() + config.conn_deadline;
    let mut reader = BufReader::new(stream);
    let request = match http::read_request(&mut reader, deadline, 4096) {
        Ok(Some(request)) => request,
        // Peer closed before sending anything: nothing to do.
        Ok(None) => return Ok(()),
        Err(e) => {
            if http::is_timeout(&e) {
                // The slowloris counter: connections cut off mid-read.
                registry.counter_add("obsd.conn_timeouts", 1);
            }
            return Err(e);
        }
    };
    let method = request.method.as_str();
    let path = request.path.as_str();

    let mut stream = reader.into_inner();
    if method != "GET" && method != "HEAD" {
        return http::respond(
            &mut stream,
            405,
            "Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n",
            method == "HEAD",
        );
    }

    // Strip any query string: `/metrics?format=…` still serves metrics.
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path, ""),
    };
    let (code, reason, content_type, body) = match route {
        "/metrics" => (
            200,
            "OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(&registry.snapshot(), &config.namespace),
        ),
        "/healthz" => {
            let report = HealthReport::from_snapshot(
                &registry.snapshot(),
                config.budget_ms,
                config.min_budget_fraction,
                config.max_fault_rate,
            );
            let mut code = report.status.http_code();
            let mut doc = report.to_json();
            // A firing SLO degrades the probe even when the point-in-
            // time snapshot looks fine: burn-rate breaches are exactly
            // the failures a single snapshot can't see.
            let firing = watch.map(|w| w.firing_slos()).unwrap_or_default();
            if !firing.is_empty() {
                code = 503;
                if let JsonValue::Obj(fields) = &mut doc {
                    fields.push((
                        "slo_firing".to_string(),
                        JsonValue::Arr(firing.into_iter().map(JsonValue::Str).collect()),
                    ));
                    for (k, v) in fields.iter_mut() {
                        if k == "status" {
                            *v = JsonValue::Str("degraded".to_string());
                        }
                    }
                }
            }
            let reason = if code == 200 {
                "OK"
            } else {
                "Service Unavailable"
            };
            if let Some(src) = incidents {
                src.on_health_status(code != 200, &doc);
            }
            let mut body = doc.to_string();
            body.push('\n');
            (code, reason, "application/json; charset=utf-8", body)
        }
        "/snapshot" => {
            let mut body = snapshot_json(&registry.snapshot()).to_string();
            body.push('\n');
            (200, "OK", "application/json; charset=utf-8", body)
        }
        "/incidents" => match incidents {
            Some(src) => {
                let mut body = src.list_json().to_string();
                body.push('\n');
                (200, "OK", "application/json; charset=utf-8", body)
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no incident source attached\n".to_string(),
            ),
        },
        p if p.starts_with("/incidents/") => {
            let id = &p["/incidents/".len()..];
            match incidents.and_then(|src| src.get_json(id)) {
                Some(doc) => {
                    let mut body = doc.to_string();
                    body.push('\n');
                    (200, "OK", "application/json; charset=utf-8", body)
                }
                None => (
                    404,
                    "Not Found",
                    "text/plain; charset=utf-8",
                    "unknown incident\n".to_string(),
                ),
            }
        }
        "/trace" => match trace.and_then(LastTrace::latest) {
            Some(mut body) => {
                body.push('\n');
                (200, "OK", "application/json; charset=utf-8", body)
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                if trace.is_some() {
                    "no trace drained yet\n".to_string()
                } else {
                    "no trace store attached\n".to_string()
                },
            ),
        },
        "/tsdb" => match watch {
            Some(w) => {
                let series = query_param(query, "series");
                let window = query_param(query, "window").and_then(|s| s.parse::<f64>().ok());
                match series {
                    Some(name) => match w.tsdb_json(name, window) {
                        Some(doc) => {
                            let mut body = doc.to_string();
                            body.push('\n');
                            (200, "OK", "application/json; charset=utf-8", body)
                        }
                        None => (
                            404,
                            "Not Found",
                            "text/plain; charset=utf-8",
                            "unknown series\n".to_string(),
                        ),
                    },
                    None => {
                        let mut body = w.series_json().to_string();
                        body.push('\n');
                        (200, "OK", "application/json; charset=utf-8", body)
                    }
                }
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no watch source attached\n".to_string(),
            ),
        },
        "/slo" => match watch {
            Some(w) => {
                let mut body = w.slo_json().to_string();
                body.push('\n');
                (200, "OK", "application/json; charset=utf-8", body)
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no watch source attached\n".to_string(),
            ),
        },
        "/alerts" => match watch {
            Some(w) => {
                let mut body = w.alerts_json().to_string();
                body.push('\n');
                (200, "OK", "application/json; charset=utf-8", body)
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no watch source attached\n".to_string(),
            ),
        },
        "/fleet" => match fleet {
            Some(f) => {
                let mut body = f.fleet_json().to_string();
                body.push('\n');
                (200, "OK", "application/json; charset=utf-8", body)
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no fleet source attached\n".to_string(),
            ),
        },
        "/drift" => match drift {
            Some(d) => {
                let tenant = query_param(query, "tenant");
                match tenant.map(|t| t.parse::<u64>()) {
                    Some(Err(_)) => (
                        400,
                        "Bad Request",
                        "text/plain; charset=utf-8",
                        "tenant must be an unsigned integer\n".to_string(),
                    ),
                    parsed => match d.drift_json(parsed.and_then(Result::ok)) {
                        Some(doc) => {
                            let mut body = doc.to_string();
                            body.push('\n');
                            (200, "OK", "application/json; charset=utf-8", body)
                        }
                        None => (
                            404,
                            "Not Found",
                            "text/plain; charset=utf-8",
                            "unknown tenant\n".to_string(),
                        ),
                    },
                }
            }
            None => (
                404,
                "Not Found",
                "text/plain; charset=utf-8",
                "no drift source attached\n".to_string(),
            ),
        },
        "/" => (
            200,
            "OK",
            "text/plain; charset=utf-8",
            "prefall-obsd: /metrics /healthz /snapshot /incidents /trace /tsdb?series=&window= /slo /alerts /fleet /drift?tenant=\n"
                .to_string(),
        ),
        _ => (
            404,
            "Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    http::respond(
        &mut stream,
        code,
        reason,
        content_type,
        &body,
        method == "HEAD",
    )
}

/// The `/snapshot` document: the registry snapshot plus derived
/// `guard` (from the `guard.*` counters, [`GuardStatus`]-shaped) and
/// `detector_mode` (from the `detector.mode.*` gauges, as booleans)
/// objects, so degraded state is visible without parsing `/metrics`.
///
/// [`GuardStatus`]: https://docs.rs/prefall-core
fn snapshot_json(snap: &Snapshot) -> JsonValue {
    let mut doc = match snap.to_json() {
        JsonValue::Obj(fields) => fields,
        other => return other,
    };
    let guard: Vec<(String, JsonValue)> = snap
        .counters
        .iter()
        .filter_map(|(k, &v)| {
            k.strip_prefix("guard.")
                .map(|s| (s.to_string(), JsonValue::U64(v)))
        })
        .collect();
    doc.push(("guard".to_string(), JsonValue::Obj(guard)));
    let mode: Vec<(String, JsonValue)> = snap
        .gauges
        .iter()
        .filter_map(|(k, &v)| {
            k.strip_prefix("detector.mode.")
                .map(|s| (s.to_string(), JsonValue::Bool(v != 0.0)))
        })
        .collect();
    doc.push(("detector_mode".to_string(), JsonValue::Obj(mode)));
    JsonValue::Obj(doc)
}

/// The value of `key` in a raw query string (`a=1&b=2`). No percent
/// decoding — series names here are metric identifiers, which never
/// need it.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_telemetry::Recorder;
    use std::io::{Read, Write};

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let code = response
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_metrics_health_and_snapshot() {
        let registry = Arc::new(Registry::new());
        registry.counter_add("detector.windows", 3);
        registry.observe("detector.infer_seconds", 4e-3);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let addr = server.addr();

        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("prefall_detector_windows_total 3"), "{body}");
        assert!(body.contains("prefall_detector_infer_seconds_bucket"));

        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert!(body.contains("\"detector_live\":true"), "{body}");

        let (code, body) = get(addr, "/snapshot");
        assert_eq!(code, 200);
        let parsed = prefall_telemetry::JsonValue::parse(body.trim()).expect("valid json");
        assert!(parsed.get("counters").is_some());

        let (code, _) = get(addr, "/nope");
        assert_eq!(code, 404);
        let (code, _) = get(addr, "/incidents");
        assert_eq!(code, 404, "no incident source attached");
        server.shutdown();
    }

    #[test]
    fn snapshot_exposes_guard_and_mode_state() {
        let registry = Arc::new(Registry::new());
        registry.counter_add("guard.samples", 500);
        registry.counter_add("guard.nonfinite", 3);
        registry.gauge_set("detector.mode.gyro_degraded", 1.0);
        registry.gauge_set("detector.mode.stale", 0.0);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/snapshot");
        assert_eq!(code, 200);
        let parsed = prefall_telemetry::JsonValue::parse(body.trim()).expect("valid json");
        let guard = parsed.get("guard").expect("guard object");
        assert_eq!(guard.get("samples").and_then(|v| v.as_u64()), Some(500));
        assert_eq!(guard.get("nonfinite").and_then(|v| v.as_u64()), Some(3));
        let mode = parsed.get("detector_mode").expect("detector_mode object");
        assert_eq!(
            mode.get("gyro_degraded").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(mode.get("stale").and_then(|v| v.as_bool()), Some(false));
        server.shutdown();
    }

    /// A fixed two-incident source for route tests.
    #[derive(Debug)]
    struct FakeSource {
        health_calls: std::sync::Mutex<Vec<bool>>,
    }

    impl IncidentSource for FakeSource {
        fn list_json(&self) -> JsonValue {
            JsonValue::Arr(vec![JsonValue::Obj(vec![(
                "id".to_string(),
                JsonValue::Str("inc-1".to_string()),
            )])])
        }

        fn get_json(&self, id: &str) -> Option<JsonValue> {
            (id == "inc-1").then(|| {
                JsonValue::Obj(vec![
                    ("id".to_string(), JsonValue::Str("inc-1".to_string())),
                    ("reason".to_string(), JsonValue::Str("test".to_string())),
                ])
            })
        }

        fn on_health_status(&self, degraded: bool, _report: &JsonValue) {
            self.health_calls.lock().unwrap().push(degraded);
        }
    }

    #[test]
    fn serves_incidents_and_feeds_health_verdicts_back() {
        let registry = Arc::new(Registry::new());
        let source = Arc::new(FakeSource {
            health_calls: std::sync::Mutex::new(Vec::new()),
        });
        let server = MetricsServer::start_with_incidents(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
            Some(Arc::clone(&source) as Arc<dyn IncidentSource>),
        )
        .expect("bind");
        let addr = server.addr();

        let (code, body) = get(addr, "/incidents");
        assert_eq!(code, 200);
        assert!(body.contains("\"inc-1\""), "{body}");

        let (code, body) = get(addr, "/incidents/inc-1");
        assert_eq!(code, 200);
        assert!(body.contains("\"reason\":\"test\""), "{body}");

        let (code, _) = get(addr, "/incidents/inc-99");
        assert_eq!(code, 404);

        let (code, _) = get(addr, "/healthz");
        assert_eq!(code, 200);
        assert_eq!(source.health_calls.lock().unwrap().as_slice(), &[false]);
        server.shutdown();
    }

    #[test]
    fn healthz_degrades_on_short_lead_times() {
        let registry = Arc::new(Registry::new());
        registry.register_histogram(
            crate::health::LEAD_TIME_METRIC,
            vec![50.0, 100.0, 150.0, 500.0],
        );
        for _ in 0..10 {
            registry.observe(crate::health::LEAD_TIME_METRIC, 40.0);
        }
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
    }

    #[test]
    fn healthz_degrades_on_sensor_fault_storm() {
        let registry = Arc::new(Registry::new());
        // A fault rate of 12 % against the default 5 % budget: the
        // model is fine (no lead times recorded) but the IMU is not.
        registry.counter_add(crate::health::GUARD_SAMPLES_METRIC, 1000);
        registry.counter_add(crate::health::GUARD_FAULTS_METRIC, 120);
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"faults_over_budget\":true"), "{body}");
        server.shutdown();
    }

    #[test]
    fn serves_trace_when_attached_and_404s_otherwise() {
        let registry = Arc::new(Registry::new());
        let store = Arc::new(LastTrace::new());
        let server = MetricsServer::start_full(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
            None,
            Some(Arc::clone(&store)),
        )
        .expect("bind");
        let addr = server.addr();

        // Attached but nothing drained yet.
        let (code, body) = get(addr, "/trace");
        assert_eq!(code, 404);
        assert!(body.contains("no trace drained yet"), "{body}");

        store.store("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}".to_string());
        let (code, body) = get(addr, "/trace");
        assert_eq!(code, 200);
        assert!(body.contains("\"traceEvents\""), "{body}");
        server.shutdown();

        // No store attached at all.
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/trace");
        assert_eq!(code, 404);
        assert!(body.contains("no trace store attached"), "{body}");
        server.shutdown();
    }

    /// A canned watch source for route tests.
    #[derive(Debug)]
    struct FakeWatch {
        firing: Vec<String>,
    }

    impl crate::watch::WatchSource for FakeWatch {
        fn tsdb_json(&self, series: &str, window_s: Option<f64>) -> Option<JsonValue> {
            (series == "detector.windows").then(|| {
                JsonValue::Obj(vec![
                    ("series".to_string(), JsonValue::Str(series.to_string())),
                    (
                        "window_s".to_string(),
                        JsonValue::F64(window_s.unwrap_or(-1.0)),
                    ),
                ])
            })
        }

        fn series_json(&self) -> JsonValue {
            JsonValue::Arr(vec![JsonValue::Str("detector.windows".to_string())])
        }

        fn slo_json(&self) -> JsonValue {
            JsonValue::Arr(vec![])
        }

        fn alerts_json(&self) -> JsonValue {
            JsonValue::Arr(vec![])
        }

        fn firing_slos(&self) -> Vec<String> {
            self.firing.clone()
        }
    }

    #[test]
    fn serves_watch_routes_and_parses_query() {
        let registry = Arc::new(Registry::new());
        let watch = Arc::new(FakeWatch { firing: vec![] });
        let server = MetricsServer::start_with_watch(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
            None,
            None,
            Some(watch as Arc<dyn crate::watch::WatchSource>),
        )
        .expect("bind");
        let addr = server.addr();

        let (code, body) = get(addr, "/tsdb?series=detector.windows&window=60");
        assert_eq!(code, 200);
        assert!(body.contains("\"window_s\":60.0"), "{body}");

        let (code, body) = get(addr, "/tsdb");
        assert_eq!(code, 200);
        assert!(body.contains("detector.windows"), "{body}");

        let (code, _) = get(addr, "/tsdb?series=nope");
        assert_eq!(code, 404);

        let (code, _) = get(addr, "/slo");
        assert_eq!(code, 200);
        let (code, _) = get(addr, "/alerts");
        assert_eq!(code, 200);

        // Healthy probe: no firing SLOs, snapshot fine.
        let (code, _) = get(addr, "/healthz");
        assert_eq!(code, 200);

        let (code, body) = get(addr, "/");
        assert_eq!(code, 200);
        for route in [
            "/metrics",
            "/healthz",
            "/snapshot",
            "/incidents",
            "/trace",
            "/tsdb",
            "/slo",
            "/alerts",
            "/fleet",
            "/drift",
        ] {
            assert!(body.contains(route), "index missing {route}: {body}");
        }
        server.shutdown();

        // Watch routes 404 without a source.
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/slo");
        assert_eq!(code, 404);
        assert!(body.contains("no watch source attached"), "{body}");
        server.shutdown();
    }

    #[test]
    fn firing_slo_degrades_healthz_and_names_the_slo() {
        let registry = Arc::new(Registry::new());
        let watch = Arc::new(FakeWatch {
            firing: vec!["fa_rate".to_string()],
        });
        let server = MetricsServer::start_with_watch(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
            None,
            None,
            Some(watch as Arc<dyn crate::watch::WatchSource>),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/healthz");
        assert_eq!(code, 503);
        assert!(body.contains("\"slo_firing\":[\"fa_rate\"]"), "{body}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        server.shutdown();
    }

    #[test]
    fn rejects_post_and_serves_live_updates() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        // The registry is shared: a counter bumped after startup is
        // visible on the next scrape.
        registry.counter_add("live.updates", 1);
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("prefall_live_updates_total 1"), "{body}");
    }

    /// A canned fleet source for the `/fleet` route test.
    #[derive(Debug)]
    struct FakeFleet;

    impl FleetSource for FakeFleet {
        fn fleet_json(&self) -> JsonValue {
            JsonValue::Obj(vec![("sessions_active".to_string(), JsonValue::U64(3))])
        }
    }

    #[test]
    fn serves_fleet_stats_when_attached_and_404s_otherwise() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::start_with_fleet(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
            None,
            None,
            None,
            Some(Arc::new(FakeFleet) as Arc<dyn FleetSource>),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/fleet");
        assert_eq!(code, 200);
        assert!(body.contains("\"sessions_active\":3"), "{body}");
        server.shutdown();

        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/fleet");
        assert_eq!(code, 404);
        assert!(body.contains("no fleet source attached"), "{body}");
        server.shutdown();
    }

    /// A canned drift source: knows tenant 7 and the global view.
    #[derive(Debug)]
    struct FakeDrift;

    impl DriftSource for FakeDrift {
        fn drift_json(&self, tenant: Option<u64>) -> Option<JsonValue> {
            match tenant {
                None => Some(JsonValue::Obj(vec![(
                    "input_psi".to_string(),
                    JsonValue::F64(0.01),
                )])),
                Some(7) => Some(JsonValue::Obj(vec![(
                    "tenant".to_string(),
                    JsonValue::U64(7),
                )])),
                Some(_) => None,
            }
        }
    }

    #[test]
    fn serves_drift_views_with_tenant_validation() {
        let registry = Arc::new(Registry::new());
        let server = MetricsServer::start_with_drift(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
            None,
            None,
            None,
            None,
            Some(Arc::new(FakeDrift) as Arc<dyn DriftSource>),
        )
        .expect("bind");
        let addr = server.addr();

        let (code, body) = get(addr, "/drift");
        assert_eq!(code, 200);
        assert!(body.contains("\"input_psi\":0.01"), "{body}");

        let (code, body) = get(addr, "/drift?tenant=7");
        assert_eq!(code, 200);
        assert!(body.contains("\"tenant\":7"), "{body}");

        let (code, body) = get(addr, "/drift?tenant=99");
        assert_eq!(code, 404);
        assert!(body.contains("unknown tenant"), "{body}");

        let (code, body) = get(addr, "/drift?tenant=bogus");
        assert_eq!(code, 400);
        assert!(body.contains("unsigned integer"), "{body}");
        server.shutdown();

        let server = MetricsServer::start(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig::default(),
        )
        .expect("bind");
        let (code, body) = get(server.addr(), "/drift");
        assert_eq!(code, 404);
        assert!(body.contains("no drift source attached"), "{body}");
        server.shutdown();
    }

    #[test]
    fn slowloris_connections_are_cut_at_the_deadline_and_counted() {
        let registry = Arc::new(Registry::new());
        let config = ServerConfig {
            conn_deadline: Duration::from_millis(200),
            ..ServerConfig::default()
        };
        let server =
            MetricsServer::start("127.0.0.1:0", Arc::clone(&registry), config).expect("bind");
        let addr = server.addr();

        // The attack: dial in and never finish the request line. The
        // serving thread is serial, so before the deadline existed
        // this pinned every scraper for the full socket timeout.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /metr").unwrap();
        stream.flush().unwrap();
        let start = Instant::now();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        let n = stream.read_to_end(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "server must hang up without a response");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "cut-off must be deadline-bounded, took {:?}",
            start.elapsed()
        );

        // The thread survived the attack and counted it.
        let (code, _) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert_eq!(
            registry
                .snapshot()
                .counters
                .get("obsd.conn_timeouts")
                .copied(),
            Some(1)
        );
        server.shutdown();
    }
}
