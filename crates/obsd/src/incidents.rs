//! Serving recent incident dumps over HTTP.
//!
//! The flight recorder lives in `prefall-blackbox`, which depends on
//! this crate for serving — so the server cannot name the recorder's
//! types directly. [`IncidentSource`] is the seam: a small
//! `JsonValue`-shaped view of "the recent incidents" that the
//! recorder's handle implements and
//! [`MetricsServer::start_with_incidents`] consumes.
//!
//! [`MetricsServer::start_with_incidents`]: crate::server::MetricsServer::start_with_incidents

use prefall_telemetry::JsonValue;

/// A provider of recent incident dumps for the `/incidents` routes.
///
/// Implementations must be cheap to call from the serving thread
/// (scrapes are serial) and internally synchronised — the server
/// shares one instance across its lifetime.
pub trait IncidentSource: Send + Sync {
    /// Summaries of the retained incidents, most recent last:
    /// a JSON array of objects each carrying at least `"id"`.
    fn list_json(&self) -> JsonValue;

    /// Full detail for one incident id, or `None` when unknown
    /// (served as 404).
    fn get_json(&self, id: &str) -> Option<JsonValue>;

    /// Health-probe feedback: called after every `/healthz` evaluation
    /// with the verdict, so a recorder can dump on the healthy →
    /// degraded edge. The default ignores it.
    fn on_health_status(&self, _degraded: bool, _report: &JsonValue) {}
}
