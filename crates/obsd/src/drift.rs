//! Serving drift-fingerprint state over HTTP.
//!
//! Like [`FleetSource`](crate::fleet::FleetSource) and
//! [`WatchSource`](crate::watch::WatchSource), this is a seam: the
//! drift sketches live in `prefall-drift` (single-detector monitor)
//! and `prefall-fleet` (per-tenant sketches merged into a fleet-wide
//! view), both of which depend on this crate — so the exporter
//! consumes a small `JsonValue`-shaped view that those handles
//! implement, and [`MetricsServer::start_with_drift`] plugs it into
//! the `/drift` route.
//!
//! [`MetricsServer::start_with_drift`]: crate::server::MetricsServer::start_with_drift

use prefall_telemetry::JsonValue;

/// A provider of drift state for the `/drift` route: the live
/// fingerprint summary and its PSI / quantile-shift scores against the
/// reference. Implementations must be internally synchronised and
/// cheap to call from the serving thread.
pub trait DriftSource: Send + Sync {
    /// The drift document — fleet-wide (or single-detector) when
    /// `tenant` is `None`, one tenant's view otherwise. `None` means
    /// the tenant is unknown (or the source has no per-tenant data),
    /// which the server answers with 404.
    fn drift_json(&self, tenant: Option<u64>) -> Option<JsonValue>;
}
