//! Serving the watch layer (time-series store, SLOs, alerts) over
//! HTTP.
//!
//! Like [`IncidentSource`](crate::incidents::IncidentSource), this is
//! a seam: the store and SLO engine live in `prefall-watch`, which
//! depends on this crate — so the server consumes a small
//! `JsonValue`-shaped view that the watch handle implements, and
//! [`MetricsServer::start_with_watch`] plugs it into three routes
//! (`/tsdb`, `/slo`, `/alerts`) plus the `/healthz` verdict.
//!
//! [`MetricsServer::start_with_watch`]: crate::server::MetricsServer::start_with_watch

use prefall_telemetry::JsonValue;

/// A provider of time-series, SLO and alert state for the watch
/// routes. Implementations must be internally synchronised and cheap
/// to call from the serving thread.
pub trait WatchSource: Send + Sync {
    /// Points of one series over the trailing window:
    /// `{"series": ..., "kind": ..., "points": [[t, v], ...], ...}`,
    /// or `None` when the series is unknown (served as 404).
    /// `window_s = None` means "everything retained".
    fn tsdb_json(&self, series: &str, window_s: Option<f64>) -> Option<JsonValue>;

    /// The catalogue of known series (served when `/tsdb` is queried
    /// without a `series` parameter).
    fn series_json(&self) -> JsonValue;

    /// Current SLO evaluation state, one object per declared SLO.
    fn slo_json(&self) -> JsonValue;

    /// Recent alert transitions, oldest first.
    fn alerts_json(&self) -> JsonValue;

    /// Names of the SLOs currently firing. A non-empty answer flips
    /// `/healthz` to 503 with the names attached.
    fn firing_slos(&self) -> Vec<String>;
}
