//! Prometheus text exposition (format version 0.0.4) for telemetry
//! [`Snapshot`]s.
//!
//! Metric names in the registry are dotted (`detector.infer_seconds`);
//! exposition sanitises them to the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and prefixes a namespace. A name may
//! carry an inline label set using the convention
//! `base{key=value,key2=value2}` — e.g. the per-activity confusion
//! counters `quality.fall_events{task=39}` — which exposition renders
//! as real Prometheus labels with proper value escaping.
//!
//! * counters → `<ns>_<base>_total` (`TYPE counter`)
//! * gauges → `<ns>_<base>` (`TYPE gauge`)
//! * histograms → `<ns>_<base>` (`TYPE histogram`) with cumulative
//!   `_bucket{le="…"}` series, `_sum` and `_count`; non-finite
//!   observations count toward `_count` and the `+Inf` bucket only,
//!   matching [`prefall_telemetry::Histogram`]'s bucket semantics.
//!
//! Every family carries a `# HELP` line (naming the original dotted
//! registry key) ahead of its `# TYPE` line, so scrapers and humans
//! reading a raw `/metrics` page get the metric kind and provenance
//! without guessing.

use prefall_telemetry::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;

/// Sanitises one metric-name component to the Prometheus name grammar:
/// dots and any other invalid characters become underscores, and a
/// leading digit gains an underscore prefix.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for (i, c) in raw.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if c.is_ascii_digit() {
            // Leading digit: keep it, but protect with an underscore.
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Sanitises a label key (same grammar as names, but no colons).
fn sanitize_label_key(raw: &str) -> String {
    sanitize_name(raw).replace(':', "_")
}

/// Escapes a label value: backslash, double quote and newline.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registry key into its base name and inline labels.
/// `quality.fall_events{task=39}` → (`quality.fall_events`,
/// `[("task", "39")]`). Keys without a well-formed `{…}` suffix come
/// back label-free.
pub fn parse_metric_key(key: &str) -> (&str, Vec<(String, String)>) {
    let Some(open) = key.find('{') else {
        return (key, Vec::new());
    };
    let Some(stripped) = key[open..]
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
    else {
        return (key, Vec::new());
    };
    let mut labels = Vec::new();
    for pair in stripped.split(',') {
        match pair.split_once('=') {
            Some((k, v)) if !k.trim().is_empty() => {
                labels.push((k.trim().to_string(), v.trim().to_string()));
            }
            _ => return (key, Vec::new()),
        }
    }
    (&key[..open], labels)
}

/// Formats a sample value the way Prometheus expects (`+Inf`, `-Inf`,
/// `NaN`, shortest round-trippable decimal otherwise).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a label set, with `extra` (e.g. `le`) appended.
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_label_key(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        // Escape the extra value too: today it is always a number or
        // `+Inf`, but the exposition format requires every label value
        // to escape `\`, `"` and newline, and a future caller must not
        // be able to corrupt the output.
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// One family: every series of a sanitised base name, grouped so the
/// `# HELP` / `# TYPE` headers are emitted exactly once per family
/// even when names collide after sanitisation.
struct Family<T> {
    /// The first dotted registry key that mapped here, quoted in the
    /// `# HELP` line as the metric's provenance.
    raw_base: String,
    series: Vec<(Vec<(String, String)>, T)>,
}

fn group_families<'a, T: Clone>(
    metrics: impl Iterator<Item = (&'a String, T)>,
    namespace: &str,
) -> BTreeMap<String, Family<T>> {
    let mut families: BTreeMap<String, Family<T>> = BTreeMap::new();
    for (key, value) in metrics {
        let (base, labels) = parse_metric_key(key);
        let name = format!("{namespace}_{}", sanitize_name(base));
        families
            .entry(name)
            .or_insert_with(|| Family {
                raw_base: base.to_string(),
                series: Vec::new(),
            })
            .series
            .push((labels, value));
    }
    families
}

/// Escapes a `# HELP` text: the exposition format requires `\` → `\\`
/// and newline → `\n` (registry keys are normally tame, but a hostile
/// one must not be able to split a comment line).
fn escape_help(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`Snapshot`] in Prometheus text exposition format.
///
/// `namespace` prefixes every metric name (`prefall` in the shipped
/// exporter). The output ends with a trailing newline, as scrapers
/// expect.
pub fn render(snapshot: &Snapshot, namespace: &str) -> String {
    let ns = sanitize_name(namespace);
    let mut out = String::new();

    for (name, family) in
        group_families(snapshot.counters.iter().map(|(k, v)| (k, *v)), ns.as_str())
    {
        out.push_str(&format!(
            "# HELP {name}_total Monotone total of the `{}` telemetry counter.\n",
            escape_help(&family.raw_base)
        ));
        out.push_str(&format!("# TYPE {name}_total counter\n"));
        for (labels, v) in &family.series {
            out.push_str(&format!(
                "{name}_total{} {v}\n",
                render_labels(labels, None)
            ));
        }
    }

    for (name, family) in group_families(snapshot.gauges.iter().map(|(k, v)| (k, *v)), ns.as_str())
    {
        out.push_str(&format!(
            "# HELP {name} Current value of the `{}` telemetry gauge.\n",
            escape_help(&family.raw_base)
        ));
        out.push_str(&format!("# TYPE {name} gauge\n"));
        for (labels, v) in &family.series {
            out.push_str(&format!(
                "{name}{} {}\n",
                render_labels(labels, None),
                fmt_f64(*v)
            ));
        }
    }

    for (name, family) in group_families(snapshot.histograms.iter(), ns.as_str()) {
        out.push_str(&format!(
            "# HELP {name} Distribution of `{}` telemetry observations.\n",
            escape_help(&family.raw_base)
        ));
        out.push_str(&format!("# TYPE {name} histogram\n"));
        for (labels, h) in &family.series {
            render_histogram(&mut out, &name, labels, h);
        }
    }

    out
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (bound, count) in h.bounds.iter().zip(&h.counts) {
        cumulative += count;
        out.push_str(&format!(
            "{name}_bucket{} {cumulative}\n",
            render_labels(labels, Some(("le", &fmt_f64(*bound))))
        ));
    }
    // `+Inf` is the total observation count (overflow bucket plus any
    // non-finite observations that never landed in a finite bucket).
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        render_labels(labels, Some(("le", "+Inf"))),
        h.count
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        render_labels(labels, None),
        fmt_f64(h.sum)
    ));
    out.push_str(&format!(
        "{name}_count{} {}\n",
        render_labels(labels, None),
        h.count
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use prefall_telemetry::{Recorder, Registry};

    #[test]
    fn sanitize_rewrites_dots_and_leading_digits() {
        assert_eq!(
            sanitize_name("detector.infer_seconds"),
            "detector_infer_seconds"
        );
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn label_parsing_roundtrip() {
        let (base, labels) = parse_metric_key("quality.fall_events{task=39,risk=red}");
        assert_eq!(base, "quality.fall_events");
        assert_eq!(
            labels,
            vec![
                ("task".to_string(), "39".to_string()),
                ("risk".to_string(), "red".to_string())
            ]
        );
        // Malformed label blocks degrade to a plain (sanitisable) name.
        assert_eq!(parse_metric_key("a{b}").1, Vec::new());
        assert_eq!(parse_metric_key("plain").0, "plain");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rendered_output_escapes_hostile_label_values() {
        // Backslash, double quote and newline in a label value must
        // reach the exposition escaped — an unescaped newline splits
        // the sample line and corrupts the whole scrape.
        let reg = Registry::new();
        reg.counter_add("evil{path=C:\\tmp,msg=say \"hi\"\nnow}", 1);
        let text = render(&reg.snapshot(), "p");
        assert!(
            text.contains(r#"p_evil_total{path="C:\\tmp",msg="say \"hi\"\nnow"} 1"#),
            "{text}"
        );
        // The raw (unescaped) newline must not survive into the body:
        // a real line break before `now` would split the sample line.
        assert!(!text.contains("\nnow"), "{text}");
    }

    #[test]
    fn counters_gauges_histograms_render() {
        let reg = Registry::new();
        reg.counter_add("detector.windows", 7);
        reg.counter_add("quality.fall_events{task=39}", 2);
        reg.gauge_set("train.learning_rate", 1e-3);
        reg.register_histogram("lat", vec![0.1, 1.0]);
        reg.observe("lat", 0.05);
        reg.observe("lat", 0.5);
        reg.observe("lat", 5.0);
        let text = render(&reg.snapshot(), "prefall");

        assert!(text.contains("# TYPE prefall_detector_windows_total counter"));
        assert!(text.contains("prefall_detector_windows_total 7"));
        // Every family leads with a HELP line naming the dotted origin,
        // immediately followed by its TYPE line.
        assert!(
            text.contains(
                "# HELP prefall_detector_windows_total Monotone total of the `detector.windows` telemetry counter.\n# TYPE prefall_detector_windows_total counter"
            ),
            "{text}"
        );
        assert!(
            text.contains("# HELP prefall_train_learning_rate Current value of the `train.learning_rate` telemetry gauge."),
            "{text}"
        );
        assert!(
            text.contains("# HELP prefall_lat Distribution of `lat` telemetry observations."),
            "{text}"
        );
        assert!(text.contains("prefall_quality_fall_events_total{task=\"39\"} 2"));
        assert!(text.contains("# TYPE prefall_train_learning_rate gauge"));
        assert!(text.contains("prefall_train_learning_rate 0.001"));
        assert!(text.contains("# TYPE prefall_lat histogram"));
        assert!(text.contains("prefall_lat_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("prefall_lat_bucket{le=\"1.0\"} 2"));
        assert!(text.contains("prefall_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("prefall_lat_count 3"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn buckets_are_cumulative_and_inf_includes_nonfinite() {
        let reg = Registry::new();
        reg.register_histogram("h", vec![1.0, 2.0]);
        reg.observe("h", 0.5);
        reg.observe("h", 1.5);
        reg.observe("h", f64::NAN);
        let text = render(&reg.snapshot(), "p");
        assert!(text.contains("p_h_bucket{le=\"1.0\"} 1"));
        assert!(text.contains("p_h_bucket{le=\"2.0\"} 2"));
        assert!(text.contains("p_h_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("p_h_count 3"));
    }

    #[test]
    fn colliding_sanitised_names_share_one_type_header() {
        let reg = Registry::new();
        reg.counter_add("a.b", 1);
        reg.counter_add("a_b", 2);
        let text = render(&reg.snapshot(), "p");
        assert_eq!(text.matches("# TYPE p_a_b_total counter").count(), 1);
        assert_eq!(text.matches("# HELP p_a_b_total").count(), 1);
        let samples = text
            .lines()
            .filter(|l| l.starts_with("p_a_b_total "))
            .count();
        assert_eq!(samples, 2);
    }
}
