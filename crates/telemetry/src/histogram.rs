//! Histograms: fixed-bucket counts for mergeability plus P² streaming
//! quantile estimators for accurate tails without storing samples.
//!
//! The bucket layout is chosen per metric (log-spaced for latencies,
//! linear for lead times); snapshots carry the layout so merged
//! snapshots stay well-defined. Quantiles come from two sources:
//!
//! * live histograms answer p50/p95/p99 from P² estimators
//!   (Jain & Chlamtac, 1985) — constant memory, good tail accuracy;
//! * merged snapshots re-derive quantiles from the merged buckets by
//!   linear interpolation, which keeps [`HistogramSnapshot::merge`]
//!   associative.

/// The quantiles every histogram tracks with a streaming estimator.
pub const TRACKED_QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

/// One P² (piecewise-parabolic) streaming quantile estimator.
#[derive(Debug, Clone)]
struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-indexed observation counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    seen: usize,
    /// First observations, buffered until five arrive.
    initial: [f64; 5],
}

impl P2Quantile {
    fn new(p: f64) -> Self {
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            seen: 0,
            initial: [0.0; 5],
        }
    }

    fn observe(&mut self, x: f64) {
        if self.seen < 5 {
            self.initial[self.seen] = x;
            self.seen += 1;
            if self.seen == 5 {
                let mut init = self.initial;
                init.sort_by(|a, b| a.partial_cmp(b).expect("finite observation"));
                self.q = init;
            }
            return;
        }
        self.seen += 1;

        // Locate the cell and clamp the extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[k] <= x < q[k+1]
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] {
                    k = i;
                }
            }
            k
        };

        for n in self.n[k + 1..].iter_mut() {
            *n += 1.0;
        }
        for (np, dn) in self.np.iter_mut().zip(self.dn) {
            *np += dn;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    fn estimate(&self) -> f64 {
        if self.seen == 0 {
            return f64::NAN;
        }
        if self.seen <= 5 {
            // Exact small-sample quantile (nearest-rank interpolation).
            let mut xs = self.initial[..self.seen].to_vec();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite observation"));
            let rank = self.p * (xs.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            return xs[lo] + (xs[hi] - xs[lo]) * frac;
        }
        self.q[2]
    }
}

/// A live histogram: bucket counts, summary stats, and streaming
/// quantile estimators.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Sorted upper bounds; observations ≥ the last bound land in the
    /// implicit overflow bucket.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` counts (last is overflow).
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    quantiles: [P2Quantile; 3],
}

impl Histogram {
    /// A histogram over the given sorted upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            quantiles: TRACKED_QUANTILES.map(P2Quantile::new),
        }
    }

    /// Log-spaced upper bounds: `per_decade` buckets per decade from
    /// `lo` up to (and including) `hi`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `per_decade >= 1`.
    pub fn log_bounds(lo: f64, hi: f64, per_decade: usize) -> Vec<f64> {
        assert!(
            lo > 0.0 && hi > lo && per_decade >= 1,
            "invalid log-spaced histogram spec"
        );
        let step = 10f64.powf(1.0 / per_decade as f64);
        let mut bounds = Vec::new();
        let mut b = lo;
        while b < hi * (1.0 + 1e-9) {
            bounds.push(b);
            b *= step;
        }
        bounds
    }

    /// A histogram over [`Histogram::log_bounds`]`(lo, hi, per_decade)`.
    pub fn log_spaced(lo: f64, hi: f64, per_decade: usize) -> Self {
        Self::with_bounds(Self::log_bounds(lo, hi, per_decade))
    }

    /// Log-spaced bounds suited to latencies in seconds: 5 buckets per
    /// decade from 1 µs to 10 s.
    pub fn latency_seconds() -> Self {
        Self::log_spaced(1e-6, 10.0, 5)
    }

    /// Finer log-spaced bounds for sub-microsecond hot paths (e.g. the
    /// per-sample `push_sample` latencies `edge_perf` measures): 10
    /// buckets per decade from 10 ns to 1 s.
    pub fn latency_seconds_fine() -> Self {
        Self::log_spaced(1e-8, 1.0, 10)
    }

    /// `n` equal-width buckets spanning `[lo, hi]` (plus the implicit
    /// overflow bucket), e.g. lead times in milliseconds.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && hi > lo, "invalid linear histogram spec");
        let width = (hi - lo) / n as f64;
        Self::with_bounds((1..=n).map(|i| lo + width * i as f64).collect())
    }

    /// Records one observation. Non-finite values increment `count`
    /// only — they stay out of the buckets, sum, min/max and quantile
    /// estimators so a stray NaN cannot poison the whole series.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if !value.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b <= value);
        self.counts[idx] += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        for q in &mut self.quantiles {
            q.observe(value);
        }
    }

    /// Number of observations.
    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of the recorded (finite) observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Streaming quantile estimate for one of [`TRACKED_QUANTILES`].
    pub fn quantile(&self, p: f64) -> f64 {
        self.quantiles
            .iter()
            .find(|q| (q.p - p).abs() < 1e-12)
            .map(P2Quantile::estimate)
            .unwrap_or(f64::NAN)
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// An immutable histogram state: mergeable, serialisable, and able to
/// answer interpolated quantiles from its buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    /// `+inf` when no finite observation was recorded.
    pub min: f64,
    /// `-inf` when no finite observation was recorded.
    pub max: f64,
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean of the recorded (finite) observations.
    pub fn mean(&self) -> f64 {
        let finite: u64 = self.counts.iter().sum();
        if finite == 0 {
            f64::NAN
        } else {
            self.sum / finite as f64
        }
    }

    /// Interpolated quantile from the bucket counts. Within a bucket the
    /// distribution is assumed uniform; accuracy is bounded by bucket
    /// width. Works for any `p` in `[0, 1]`.
    pub fn quantile_from_buckets(&self, p: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let target = p.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let (lo, hi) = (lo.min(hi), hi.max(lo));
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            cum = next;
        }
        self.max
    }

    /// Merges two snapshots over identical bucket layouts. Counts and
    /// sums add; min/max combine; the merged quantiles are re-derived
    /// from the merged buckets, which makes merge associative and
    /// commutative (up to float summation of `sum`).
    ///
    /// # Panics
    ///
    /// Panics when the layouts differ — merging histograms with
    /// different bucket schemes is a caller bug.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| a + b)
            .collect();
        let mut merged = HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            bounds: self.bounds.clone(),
            counts,
            p50: f64::NAN,
            p95: f64::NAN,
            p99: f64::NAN,
        };
        merged.p50 = merged.quantile_from_buckets(0.50);
        merged.p95 = merged.quantile_from_buckets(0.95);
        merged.p99 = merged.quantile_from_buckets(0.99);
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sorted-reference quantile (linear interpolation between ranks).
    fn reference_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = p * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
    }

    fn pseudo_uniform(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn p2_matches_sorted_reference_on_uniform() {
        let xs = pseudo_uniform(20_000, 42);
        let mut h = Histogram::linear(0.0, 1.0, 50);
        for &x in &xs {
            h.observe(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in TRACKED_QUANTILES {
            let est = h.quantile(p);
            let refq = reference_quantile(&sorted, p);
            assert!(
                (est - refq).abs() < 0.02,
                "p{p}: streaming {est} vs reference {refq}"
            );
        }
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for x in [3.0, 1.0, 2.0] {
            h.observe(x);
        }
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_quantile_tracks_reference_within_bucket_width() {
        let xs = pseudo_uniform(5_000, 7);
        let mut h = Histogram::linear(0.0, 1.0, 100);
        for &x in &xs {
            h.observe(x);
        }
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let snap = h.snapshot();
        for p in [0.1, 0.5, 0.9, 0.99] {
            let est = snap.quantile_from_buckets(p);
            let refq = reference_quantile(&sorted, p);
            assert!(
                (est - refq).abs() < 0.02,
                "p{p}: bucket {est} vs reference {refq}"
            );
        }
    }

    #[test]
    fn log_spaced_bounds_are_strictly_increasing_and_cover_range() {
        let bounds = Histogram::log_bounds(1e-8, 1.0, 10);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!((bounds[0] - 1e-8).abs() < 1e-20);
        assert!(*bounds.last().unwrap() >= 1.0 - 1e-9);
        // 8 decades × 10 per decade, inclusive of both endpoints.
        assert_eq!(bounds.len(), 81);
    }

    #[test]
    fn fine_latency_histogram_resolves_sub_microsecond() {
        let mut h = Histogram::latency_seconds_fine();
        // 100 ns and 200 ns must land in different buckets (the coarse
        // default lumps everything below 1 µs into one underflow bucket).
        h.observe(1.0e-7);
        h.observe(2.0e-7);
        let snap = h.snapshot();
        let occupied = snap.counts.iter().filter(|&&c| c > 0).count();
        assert_eq!(occupied, 2, "distinct sub-µs buckets: {:?}", snap.counts);
    }

    #[test]
    #[should_panic(expected = "invalid log-spaced histogram spec")]
    fn log_spaced_rejects_bad_spec() {
        let _ = Histogram::log_spaced(1.0, 0.5, 5);
    }

    #[test]
    fn latency_bounds_cover_microseconds_to_seconds() {
        let h = Histogram::latency_seconds();
        let mut h2 = h.clone();
        for v in [2e-6, 5e-3, 0.5, 20.0] {
            h2.observe(v);
        }
        assert_eq!(h2.count(), 4);
        let snap = h2.snapshot();
        assert_eq!(snap.counts.iter().sum::<u64>(), 4);
        assert!((snap.min - 2e-6).abs() < 1e-12);
        assert!((snap.max - 20.0).abs() < 1e-9);
    }

    #[test]
    fn nan_does_not_poison_stats() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.observe(0.5);
        h.observe(f64::NAN);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.counts.iter().sum::<u64>(), 1);
        assert!((snap.sum - 0.5).abs() < 1e-12);
        assert!((snap.mean() - 0.5).abs() < 1e-12);
        assert!(snap.min.is_finite() && snap.max.is_finite());
    }

    #[test]
    fn merge_adds_buckets_and_rederives_quantiles() {
        let mut a = Histogram::linear(0.0, 1.0, 10);
        let mut b = Histogram::linear(0.0, 1.0, 10);
        for x in pseudo_uniform(500, 1) {
            a.observe(x);
        }
        for x in pseudo_uniform(500, 2) {
            b.observe(x);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 1000);
        assert_eq!(m.counts.iter().sum::<u64>(), 1000);
        assert!((m.quantile_from_buckets(0.5) - 0.5).abs() < 0.1);
        assert!((m.p50 - m.quantile_from_buckets(0.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_quantiles_are_nan() {
        let h = Histogram::linear(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_nan());
        let snap = h.snapshot();
        assert!(snap.p50.is_nan() && snap.p95.is_nan() && snap.p99.is_nan());
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert!(
                snap.quantile_from_buckets(p).is_nan(),
                "empty bucket quantile p{p} must be NaN"
            );
        }
        assert!(snap.mean().is_nan());
    }

    #[test]
    fn all_in_one_bucket_quantiles_interpolate_between_min_and_max() {
        // Every observation lands in the (0.2, 0.4] bucket; quantiles
        // must interpolate inside the *observed* range [0.25, 0.35],
        // not the full bucket width.
        let mut h = Histogram::linear(0.0, 1.0, 5);
        for x in [0.25, 0.30, 0.35] {
            h.observe(x);
        }
        let snap = h.snapshot();
        for p in [0.1, 0.5, 0.9] {
            let q = snap.quantile_from_buckets(p);
            assert!(
                (0.25..=0.35).contains(&q),
                "p{p} = {q} escaped the observed range"
            );
        }
        assert!(snap.quantile_from_buckets(0.5) <= snap.quantile_from_buckets(0.9));
        // p≈1 approaches the observed max, never the bucket bound 0.4.
        assert!((snap.quantile_from_buckets(1.0) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_quantiles_use_observed_max() {
        // One in-range observation, three past the last bound: high
        // quantiles come from the overflow bucket, whose upper edge is
        // the observed max (there is no bound above it).
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.observe(0.5);
        for x in [3.0, 5.0, 9.0] {
            h.observe(x);
        }
        let snap = h.snapshot();
        assert_eq!(*snap.counts.last().unwrap(), 3, "overflow holds 3");
        let p99 = snap.quantile_from_buckets(0.99);
        assert!(
            p99 > 1.0 && p99 <= 9.0,
            "p99 = {p99} must land inside the overflow bucket"
        );
        assert!((snap.quantile_from_buckets(1.0) - 9.0).abs() < 1e-9);
        // Only overflow observations: every quantile still stays inside
        // [last bound, max].
        let mut h = Histogram::linear(0.0, 1.0, 2);
        h.observe(2.0);
        h.observe(4.0);
        let snap = h.snapshot();
        for p in [0.01, 0.5, 0.99] {
            let q = snap.quantile_from_buckets(p);
            assert!((1.0..=4.0).contains(&q), "p{p} = {q} outside overflow");
        }
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_layouts() {
        let a = Histogram::linear(0.0, 1.0, 10).snapshot();
        let b = Histogram::linear(0.0, 2.0, 10).snapshot();
        let _ = a.merge(&b);
    }
}
