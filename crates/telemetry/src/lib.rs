//! Observability layer for the pre-impact fall-detection stack.
//!
//! The paper's headline claim is a latency budget — 4 ms ± 3 ms inference
//! inside a 150 ms airbag-inflation window — and this crate is how the
//! repository measures it. Everything funnels through one object-safe
//! [`Recorder`] trait:
//!
//! * **counters** ([`Recorder::counter_add`]) — monotone totals
//!   (segments produced, windows classified, epochs run);
//! * **gauges** ([`Recorder::gauge_set`]) — last-written values
//!   (current learning rate, model parameter count);
//! * **histograms** ([`Recorder::observe`]) — distributions with
//!   fixed-bucket counts *and* streaming P² quantile estimates
//!   (per-`push_sample` latency, per-stage pipeline timings,
//!   detection lead time before impact);
//! * **events** ([`Recorder::event`]) — structured moments in time
//!   (epoch finished, fold finished, early stopping fired);
//! * **spans** ([`Span`]) — RAII wall-clock timing scopes whose
//!   elapsed time lands in a histogram on drop.
//!
//! The disabled path is honest: [`NoopRecorder::enabled`] returns
//! `false`, [`Span::enter`] therefore never calls
//! [`std::time::Instant::now`], and no method allocates — the
//! MCU-modelled hot path pays one virtual call and a branch. This is
//! asserted by the counting-allocator smoke test in the workspace root
//! (`tests/noop_overhead.rs`).
//!
//! Concrete sinks live in the submodules: an in-memory [`Registry`]
//! with mergeable [`Snapshot`]s, a [`JsonlWriter`] event log,
//! a stderr [`ConsoleRecorder`] for progress lines, and a
//! human-readable summary table ([`summary::render`]).

pub mod env;
pub mod histogram;
pub mod jsonl;
pub mod registry;
pub mod summary;

pub use env::TelemetryEnv;
pub use histogram::{Histogram, HistogramSnapshot};
pub use jsonl::{JsonValue, JsonlRecorder, JsonlWriter};
pub use registry::{Registry, RegistryVisitor, Snapshot};

use std::fmt::Debug;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A dynamically typed event-field value, borrowed where possible so
/// emitting an event on an enabled recorder costs at most one small
/// slice allocation at the call site and nothing on the no-op path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
    Bool(bool),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value<'_> {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}
impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The sink interface every instrumented call site talks to.
///
/// Object-safe on purpose: instrumented structs store
/// `Arc<dyn Recorder>` and hot paths borrow `&dyn Recorder`, so the
/// recording backend is swappable without generics rippling through
/// the stack.
pub trait Recorder: Send + Sync + Debug {
    /// Whether this recorder records anything at all. Call sites use
    /// this to skip *measurement* (not just emission): a `false` here
    /// means spans never read the clock.
    fn enabled(&self) -> bool;

    /// Adds `delta` to the named monotone counter.
    fn counter_add(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge_set(&self, name: &str, value: f64);

    /// Records one observation into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Emits a structured event.
    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]);

    /// Folds a frozen [`Snapshot`] into this recorder. Parallel workers
    /// aggregate into private [`Registry`] instances and the fork-join
    /// caller merges the per-worker snapshots back, in a deterministic
    /// order, through this method.
    ///
    /// The default implementation replays counters and gauges through
    /// the normal recording interface and **drops histograms** (their
    /// individual observations are gone, so they cannot be replayed).
    /// [`Registry`] overrides this with a full merge that preserves
    /// histogram distributions; [`FanoutRecorder`] forwards to every
    /// sink.
    fn merge_snapshot(&self, snap: &Snapshot) {
        for (name, delta) in &snap.counters {
            self.counter_add(name, *delta);
        }
        for (name, value) in &snap.gauges {
            self.gauge_set(name, *value);
        }
    }
}

/// The always-disabled recorder: every method is a no-op and
/// [`Recorder::enabled`] is `false`, so instrumentation collapses to a
/// virtual call and a predictable branch. No method allocates.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
    #[inline]
    fn counter_add(&self, _name: &str, _delta: u64) {}
    #[inline]
    fn gauge_set(&self, _name: &str, _value: f64) {}
    #[inline]
    fn observe(&self, _name: &str, _value: f64) {}
    #[inline]
    fn event(&self, _name: &str, _fields: &[(&str, Value<'_>)]) {}
    #[inline]
    fn merge_snapshot(&self, _snap: &Snapshot) {}
}

/// The shared no-op recorder, for defaulting `Arc<dyn Recorder>` fields
/// without a fresh allocation per construction.
pub fn noop() -> Arc<dyn Recorder> {
    static NOOP: OnceLock<Arc<dyn Recorder>> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Arc::new(NoopRecorder)))
}

/// An RAII wall-clock timing scope. Created by [`Span::enter`] (or the
/// [`span!`] macro); on drop it records the elapsed seconds into the
/// recorder's histogram under the span's name.
///
/// When the recorder is disabled the span holds no start time — the
/// clock is never read on the disabled path.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span<'r> {
    rec: &'r dyn Recorder,
    name: &'r str,
    start: Option<Instant>,
}

impl<'r> Span<'r> {
    /// Opens a timing scope named `name` on `rec`.
    #[inline]
    pub fn enter(rec: &'r dyn Recorder, name: &'r str) -> Self {
        let start = rec.enabled().then(Instant::now);
        Self { rec, name, start }
    }

    /// Ends the scope early, recording now instead of at drop.
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.rec.observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// Opens a [`Span`] on a recorder: `let _guard = span!(rec, "stage");`.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $crate::Span::enter($rec, $name)
    };
}

/// A recorder that prints events as human-readable progress lines on
/// stderr (and ignores counters, gauges and observations). Compose it
/// with a [`Registry`] through [`FanoutRecorder`] to get both live
/// progress and aggregates.
#[derive(Debug, Default)]
pub struct ConsoleRecorder {
    /// When set, only events whose name starts with one of these
    /// prefixes are printed (keeps per-epoch chatter off the console
    /// while a JSONL or registry sink still sees everything).
    prefixes: Option<Vec<String>>,
}

impl ConsoleRecorder {
    /// Prints every event.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prints only events matching one of the given name prefixes.
    pub fn with_prefixes<I, S>(prefixes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            prefixes: Some(prefixes.into_iter().map(Into::into).collect()),
        }
    }
}

impl Recorder for ConsoleRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn counter_add(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}

    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        if let Some(prefixes) = &self.prefixes {
            if !prefixes.iter().any(|p| name.starts_with(p.as_str())) {
                return;
            }
        }
        let mut line = String::with_capacity(64);
        line.push_str(name);
        for (k, v) in fields {
            line.push(' ');
            line.push_str(k);
            line.push('=');
            match v {
                Value::U64(x) => line.push_str(&x.to_string()),
                Value::I64(x) => line.push_str(&x.to_string()),
                Value::F64(x) => line.push_str(&format!("{x:.4}")),
                Value::Str(s) => line.push_str(s),
                Value::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
            }
        }
        eprintln!("[prefall] {line}");
    }
}

/// Broadcasts every call to each inner recorder. Enabled when any
/// inner recorder is.
#[derive(Debug, Default)]
pub struct FanoutRecorder {
    sinks: Vec<Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    pub fn new(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Self { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
    fn counter_add(&self, name: &str, delta: u64) {
        for s in &self.sinks {
            s.counter_add(name, delta);
        }
    }
    fn gauge_set(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.gauge_set(name, value);
        }
    }
    fn observe(&self, name: &str, value: f64) {
        for s in &self.sinks {
            s.observe(name, value);
        }
    }
    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        for s in &self.sinks {
            s.event(name, fields);
        }
    }
    fn merge_snapshot(&self, snap: &Snapshot) {
        for s in &self.sinks {
            s.merge_snapshot(snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_span_never_reads_clock() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let span = Span::enter(&rec, "x");
        assert!(span.start.is_none(), "disabled span must not hold a start");
        drop(span);
    }

    #[test]
    fn enabled_span_records_elapsed() {
        let reg = Registry::new();
        {
            let _g = span!(&reg, "work");
            std::hint::black_box(1 + 1);
        }
        let snap = reg.snapshot();
        let h = snap.histograms.get("work").expect("span recorded");
        assert_eq!(h.count, 1);
        assert!(h.max >= 0.0);
    }

    #[test]
    fn fanout_reaches_all_sinks() {
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        let fan = FanoutRecorder::new(vec![a.clone(), b.clone()]);
        fan.counter_add("c", 2);
        fan.observe("h", 1.0);
        fan.gauge_set("g", 3.5);
        for r in [&a, &b] {
            let s = r.snapshot();
            assert_eq!(s.counters["c"], 2);
            assert_eq!(s.histograms["h"].count, 1);
            assert_eq!(s.gauges["g"], 3.5);
        }
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(1.5f32), Value::F64(1.5));
        assert_eq!(Value::from("s"), Value::Str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
