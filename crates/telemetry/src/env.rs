//! Environment-variable control for telemetry verbosity, consistent
//! with the `PREFALL_*` override family used by `ExperimentConfig`.
//!
//! * `PREFALL_QUIET=1` — suppress console progress events entirely.
//! * `PREFALL_TELEMETRY_JSONL=path` — additionally stream events as
//!   JSONL to the given file.
//! * `PREFALL_METRICS_ADDR=addr` — serve live metrics over HTTP on the
//!   given socket address (e.g. `127.0.0.1:9898`; consumed by
//!   `prefall-obsd`, this crate only parses it).

use crate::{ConsoleRecorder, FanoutRecorder, JsonlRecorder, Recorder};
use std::sync::Arc;

/// Parsed telemetry-related environment state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryEnv {
    /// `PREFALL_QUIET` truthy (`1`, `true`, `yes`, case-insensitive).
    pub quiet: bool,
    /// `PREFALL_TELEMETRY_JSONL`, if set and non-empty.
    pub jsonl_path: Option<String>,
    /// `PREFALL_METRICS_ADDR`, if set and non-empty: the socket address
    /// an exporter (see `prefall-obsd`) should listen on.
    pub metrics_addr: Option<String>,
}

fn truthy(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes" | "on"
    )
}

impl TelemetryEnv {
    /// Reads `PREFALL_QUIET` and `PREFALL_TELEMETRY_JSONL` from the
    /// process environment.
    pub fn from_env() -> Self {
        let quiet = std::env::var("PREFALL_QUIET")
            .map(|v| truthy(&v))
            .unwrap_or(false);
        let jsonl_path = std::env::var("PREFALL_TELEMETRY_JSONL")
            .ok()
            .filter(|p| !p.trim().is_empty());
        let metrics_addr = std::env::var("PREFALL_METRICS_ADDR")
            .ok()
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty());
        Self {
            quiet,
            jsonl_path,
            metrics_addr,
        }
    }

    /// Builds the progress-event recorder this environment asks for:
    /// a stderr [`ConsoleRecorder`] by default (coarse progress only —
    /// experiment cells, CV folds, early stopping), nothing when quiet,
    /// plus a JSONL file sink (every event) when
    /// `PREFALL_TELEMETRY_JSONL` is set. Returns the shared no-op
    /// recorder when every sink is disabled.
    pub fn progress_recorder(&self) -> Arc<dyn Recorder> {
        let mut sinks: Vec<Arc<dyn Recorder>> = Vec::new();
        if !self.quiet {
            sinks.push(Arc::new(ConsoleRecorder::with_prefixes([
                "experiment.",
                "cv.",
                "train.early_stop",
                "bench.",
            ])));
        }
        if let Some(path) = &self.jsonl_path {
            match std::fs::File::create(path) {
                Ok(f) => sinks.push(Arc::new(JsonlRecorder::new(f))),
                Err(e) => eprintln!("[prefall] cannot open {path}: {e}"),
            }
        }
        match sinks.len() {
            0 => crate::noop(),
            1 => sinks.pop().expect("len checked"),
            _ => Arc::new(FanoutRecorder::new(sinks)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthy_values() {
        for v in ["1", "true", "YES", " on "] {
            assert!(truthy(v), "{v}");
        }
        for v in ["0", "false", "", "off", "2"] {
            assert!(!truthy(v), "{v}");
        }
    }

    #[test]
    fn quiet_env_yields_noop() {
        let env = TelemetryEnv {
            quiet: true,
            ..TelemetryEnv::default()
        };
        assert!(!env.progress_recorder().enabled());
    }

    #[test]
    fn default_env_yields_console() {
        let env = TelemetryEnv::default();
        assert!(env.progress_recorder().enabled());
    }
}
