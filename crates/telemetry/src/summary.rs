//! Human-readable end-of-run summary: renders a [`Snapshot`] as an
//! aligned plain-text table (counters, gauges, then histograms with
//! count/mean/p50/p95/p99/max).

use crate::Snapshot;

/// Formats a quantity in engineering units. Values that look like
/// seconds read much better as ms/µs, so anything below 1.0 is scaled.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return "-".to_string();
    }
    let a = v.abs();
    if a == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.3}")
    } else if a >= 1e-3 {
        format!("{:.3} m", v * 1e3)
    } else if a >= 1e-6 {
        format!("{:.3} u", v * 1e6)
    } else {
        format!("{:.3} n", v * 1e9)
    }
}

fn pad(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

fn pad_r(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

/// Renders the snapshot as a multi-line table. Sections that are empty
/// are omitted; an entirely empty snapshot renders a single notice.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    if snapshot.counters.is_empty() && snapshot.gauges.is_empty() && snapshot.histograms.is_empty()
    {
        return "telemetry: no metrics recorded\n".to_string();
    }

    let name_width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(|k| k.len())
        .max()
        .unwrap_or(4)
        .max(4);

    if !snapshot.counters.is_empty() {
        out.push_str("counters\n");
        for (k, v) in &snapshot.counters {
            out.push_str(&format!("  {}  {v}\n", pad(k, name_width)));
        }
    }

    if !snapshot.gauges.is_empty() {
        out.push_str("gauges\n");
        for (k, v) in &snapshot.gauges {
            out.push_str(&format!("  {}  {}\n", pad(k, name_width), fmt_value(*v)));
        }
    }

    if !snapshot.histograms.is_empty() {
        const COL: usize = 10;
        out.push_str("histograms\n");
        out.push_str(&format!(
            "  {}  {}{}{}{}{}{}\n",
            pad("name", name_width),
            pad_r("count", COL),
            pad_r("mean", COL),
            pad_r("p50", COL),
            pad_r("p95", COL),
            pad_r("p99", COL),
            pad_r("max", COL),
        ));
        for (k, h) in &snapshot.histograms {
            out.push_str(&format!(
                "  {}  {}{}{}{}{}{}\n",
                pad(k, name_width),
                pad_r(&h.count.to_string(), COL),
                pad_r(&fmt_value(h.mean()), COL),
                pad_r(&fmt_value(h.p50), COL),
                pad_r(&fmt_value(h.p95), COL),
                pad_r(&fmt_value(h.p99), COL),
                pad_r(&fmt_value(h.max), COL),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Registry};

    #[test]
    fn renders_all_sections() {
        let reg = Registry::new();
        reg.counter_add("windows", 12);
        reg.gauge_set("lr", 1e-3);
        for i in 0..100 {
            reg.observe("latency", 1e-3 * f64::from(i));
        }
        let table = render(&reg.snapshot());
        assert!(table.contains("counters"));
        assert!(table.contains("windows"));
        assert!(table.contains("gauges"));
        assert!(table.contains("histograms"));
        assert!(table.contains("p95"));
        assert!(table.contains("latency"));
    }

    #[test]
    fn empty_snapshot_has_notice() {
        let reg = Registry::new();
        assert!(render(&reg.snapshot()).contains("no metrics"));
    }

    #[test]
    fn unit_scaling() {
        assert_eq!(fmt_value(0.0), "0");
        assert!(fmt_value(0.004).contains('m'));
        assert!(fmt_value(4e-6).contains('u'));
        assert!(fmt_value(4e-9).contains('n'));
        assert!(!fmt_value(2.5).contains('m'));
    }
}
