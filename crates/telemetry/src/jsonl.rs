//! Machine-readable output: a small self-contained JSON value type
//! (serialiser *and* parser, so round-trips are testable offline), a
//! line-oriented [`JsonlWriter`], and a [`JsonlRecorder`] sink that
//! streams telemetry events as JSONL.
//!
//! JSON has no NaN/Infinity, so non-finite floats serialise as `null`;
//! the parser maps `null` back to NaN.

use crate::{Recorder, Value};
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A JSON document. Numbers keep their integer/float distinction so
/// large counters survive a round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => out.push_str(&v.to_string()),
            JsonValue::I64(v) => out.push_str(&v.to_string()),
            JsonValue::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trippable float form.
                    let s = format!("{v:?}");
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of this value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::I64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of this value, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            JsonValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String view of this value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean view of this value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document (complete input, surrounding whitespace
    /// allowed).
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-borrow the full char (input is valid UTF-8).
                    let start = self.pos - 1;
                    let s = &self.bytes[start..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .expect("non-empty");
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::I64(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("invalid number {text:?}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Writes one JSON document per line.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Writes `value` followed by a newline.
    pub fn write(&mut self, value: &JsonValue) -> std::io::Result<()> {
        let mut line = String::new();
        value.write_into(&mut line);
        line.push('\n');
        self.out.write_all(line.as_bytes())
    }

    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Consumes the writer, returning the underlying sink.
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// A [`Recorder`] sink that streams *events* as JSONL lines of the form
/// `{"t": seconds_since_start, "event": name, ...fields}`. Counters,
/// gauges and observations are ignored — pair it with a [`Registry`]
/// via [`FanoutRecorder`] for aggregates.
///
/// Write failures (disk full, closed pipe) are reported **once** as a
/// warning on stderr instead of being silently dropped; the sink is
/// flushed when the recorder is dropped.
///
/// [`Registry`]: crate::Registry
/// [`FanoutRecorder`]: crate::FanoutRecorder
pub struct JsonlRecorder<W: Write + Send> {
    writer: Mutex<Option<JsonlWriter<W>>>,
    start: Instant,
    write_failed: AtomicBool,
}

impl<W: Write + Send> fmt::Debug for JsonlRecorder<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("start", &self.start)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonlRecorder<W> {
    pub fn new(out: W) -> Self {
        Self {
            writer: Mutex::new(Some(JsonlWriter::new(out))),
            start: Instant::now(),
            write_failed: AtomicBool::new(false),
        }
    }

    /// Warns on stderr the first time a write/flush error occurs; later
    /// errors are counted silently (one stuck sink must not spam the
    /// console for every event of a long run).
    fn report(&self, what: &str, e: &std::io::Error) {
        if !self.write_failed.swap(true, Ordering::Relaxed) {
            eprintln!("[prefall] telemetry JSONL {what} failed (further errors suppressed): {e}");
        }
    }

    /// Whether any write or flush error occurred so far.
    pub fn write_failed(&self) -> bool {
        self.write_failed.load(Ordering::Relaxed)
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> W {
        let mut w = self
            .writer
            .get_mut()
            .expect("jsonl writer poisoned")
            .take()
            .expect("writer present until drop");
        if let Err(e) = w.flush() {
            self.report("flush", &e);
        }
        w.into_inner()
    }
}

impl<W: Write + Send> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        let failed_before = self.write_failed.load(Ordering::Relaxed);
        if let Ok(slot) = self.writer.get_mut() {
            if let Some(w) = slot.as_mut() {
                if let Err(e) = w.flush() {
                    if !failed_before {
                        eprintln!("[prefall] telemetry JSONL flush failed: {e}");
                    }
                }
            }
        }
    }
}

impl<W: Write + Send> Recorder for JsonlRecorder<W> {
    fn enabled(&self) -> bool {
        true
    }
    fn counter_add(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}

    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        let mut obj = vec![
            (
                "t".to_string(),
                JsonValue::F64(self.start.elapsed().as_secs_f64()),
            ),
            ("event".to_string(), JsonValue::Str(name.to_string())),
        ];
        for (k, v) in fields {
            let jv = match v {
                Value::U64(x) => JsonValue::U64(*x),
                Value::I64(x) => JsonValue::I64(*x),
                Value::F64(x) => JsonValue::F64(*x),
                Value::Str(s) => JsonValue::Str((*s).to_string()),
                Value::Bool(b) => JsonValue::Bool(*b),
            };
            obj.push(((*k).to_string(), jv));
        }
        let mut guard = self.writer.lock().expect("jsonl writer poisoned");
        if let Some(w) = guard.as_mut() {
            if let Err(e) = w.write(&JsonValue::Obj(obj)) {
                drop(guard);
                self.report("write", &e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::U64(u64::MAX)),
            ("b".into(), JsonValue::I64(-42)),
            ("c".into(), JsonValue::F64(0.125)),
            ("d".into(), JsonValue::Str("he said \"hi\"\n\tπ".into())),
            (
                "e".into(),
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("f".into(), JsonValue::Obj(vec![])),
        ]);
        let text = v.to_string();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn shortest_float_form_round_trips() {
        for x in [1e-7, std::f64::consts::PI, 1.5e300, -0.0, 4.0e-3] {
            let text = JsonValue::F64(x).to_string();
            let back = JsonValue::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn jsonl_recorder_surfaces_write_errors_once() {
        struct FailingSink;
        impl Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink is broken"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("sink is broken"))
            }
        }
        let rec = JsonlRecorder::new(FailingSink);
        assert!(!rec.write_failed());
        rec.event("a", &[]);
        assert!(rec.write_failed(), "first failed write is recorded");
        // Further failing writes (and the flush on drop) must not panic.
        rec.event("b", &[]);
        drop(rec);
    }

    #[test]
    fn jsonl_recorder_streams_events() {
        let rec = JsonlRecorder::new(Vec::<u8>::new());
        rec.event("epoch", &[("loss", Value::F64(0.5)), ("i", Value::U64(3))]);
        rec.event("done", &[]);
        let bytes = rec.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = JsonValue::parse(lines[0]).unwrap();
        assert_eq!(first.get("event"), Some(&JsonValue::Str("epoch".into())));
        assert_eq!(first.get("loss").and_then(JsonValue::as_f64), Some(0.5));
        assert!(first.get("t").and_then(JsonValue::as_f64).unwrap() >= 0.0);
    }
}
