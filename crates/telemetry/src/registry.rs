//! The in-memory aggregate sink: a thread-safe [`Registry`] of
//! counters, gauges and histograms, frozen on demand into mergeable
//! [`Snapshot`]s.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::{JsonValue, Recorder, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    /// Bucket layouts for histograms that want something other than the
    /// latency default, keyed by metric name (must be registered before
    /// the first observation).
    layouts: BTreeMap<String, Vec<f64>>,
    /// Histogram state absorbed from other registries via
    /// [`Recorder::merge_snapshot`]. Live P² histograms cannot ingest a
    /// frozen snapshot observation-by-observation, so merged-in
    /// distributions are kept here and folded into [`Registry::snapshot`]
    /// output bucket-wise.
    absorbed: BTreeMap<String, HistogramSnapshot>,
    /// Structured events, in arrival order (name, fields).
    events: Vec<(String, Vec<(String, OwnedValue)>)>,
}

/// An owned [`Value`], as stored in the registry's event log.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<&Value<'_>> for OwnedValue {
    fn from(v: &Value<'_>) -> Self {
        match v {
            Value::U64(x) => OwnedValue::U64(*x),
            Value::I64(x) => OwnedValue::I64(*x),
            Value::F64(x) => OwnedValue::F64(*x),
            Value::Str(s) => OwnedValue::Str((*s).to_string()),
            Value::Bool(b) => OwnedValue::Bool(*b),
        }
    }
}

impl From<&OwnedValue> for JsonValue {
    fn from(v: &OwnedValue) -> Self {
        match v {
            OwnedValue::U64(x) => JsonValue::U64(*x),
            OwnedValue::I64(x) => JsonValue::I64(*x),
            OwnedValue::F64(x) => JsonValue::F64(*x),
            OwnedValue::Str(s) => JsonValue::Str(s.clone()),
            OwnedValue::Bool(b) => JsonValue::Bool(*b),
        }
    }
}

/// The standard in-memory recorder.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-registers a bucket layout (upper bounds, strictly
    /// increasing) for the named histogram. Without registration,
    /// histograms default to [`Histogram::latency_seconds`].
    ///
    /// Registering after the histogram received observations has no
    /// effect on the existing histogram.
    pub fn register_histogram(&self, name: &str, bounds: Vec<f64>) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.layouts.insert(name.to_string(), bounds);
    }

    /// Freezes the current aggregate state (events are not part of the
    /// snapshot — drain them with [`Registry::take_events`]).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut histograms: BTreeMap<String, HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        for (k, h) in &inner.absorbed {
            match histograms.get(k) {
                Some(live) if live.bounds == h.bounds => {
                    let merged = live.merge(h);
                    histograms.insert(k.clone(), merged);
                }
                // Layout drifted after absorption: keep the live view
                // rather than panic inside a telemetry read.
                Some(_) => {}
                None => {
                    histograms.insert(k.clone(), h.clone());
                }
            }
        }
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms,
        }
    }

    /// Removes and returns all buffered events.
    pub fn take_events(&self) -> Vec<(String, Vec<(String, OwnedValue)>)> {
        std::mem::take(&mut self.inner.lock().expect("registry poisoned").events)
    }

    /// Walks the live aggregate state under the lock **without
    /// cloning**: every counter, gauge and live histogram is handed to
    /// the visitor by reference. This is the allocation-free read path
    /// samplers poll on a cadence — [`Registry::snapshot`] clones every
    /// map and is the wrong tool for a per-second tick.
    ///
    /// Histogram state absorbed from merged worker snapshots is *not*
    /// visited (folding it in would allocate); a process-lifetime
    /// sampler watches the live registry its hot paths record into.
    pub fn visit(&self, visitor: &mut dyn RegistryVisitor) {
        let inner = self.inner.lock().expect("registry poisoned");
        for (name, &value) in &inner.counters {
            visitor.counter(name, value);
        }
        for (name, &value) in &inner.gauges {
            visitor.gauge(name, value);
        }
        for (name, hist) in &inner.histograms {
            visitor.histogram(name, hist);
        }
    }
}

/// Receiver for [`Registry::visit`]: one callback per live series, all
/// borrowed, none allocating on the registry side.
pub trait RegistryVisitor {
    /// One monotone counter.
    fn counter(&mut self, name: &str, value: u64);
    /// One gauge (last written value).
    fn gauge(&mut self, name: &str, value: f64);
    /// One live histogram, borrowed under the registry lock — read
    /// [`Histogram::count`], [`Histogram::sum`], [`Histogram::bounds`]
    /// and [`Histogram::counts`] without copying.
    fn histogram(&mut self, name: &str, hist: &Histogram);
}

impl Recorder for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        match inner.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        match inner.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if !inner.histograms.contains_key(name) {
            let hist = match inner.layouts.get(name) {
                Some(bounds) => Histogram::with_bounds(bounds.clone()),
                None => Histogram::latency_seconds(),
            };
            inner.histograms.insert(name.to_string(), hist);
        }
        inner
            .histograms
            .get_mut(name)
            .expect("just inserted")
            .observe(value);
    }

    fn event(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        let owned: Vec<(String, OwnedValue)> = fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), OwnedValue::from(v)))
            .collect();
        self.inner
            .lock()
            .expect("registry poisoned")
            .events
            .push((name.to_string(), owned));
    }

    /// Full merge: counters add into live counters, gauges overwrite,
    /// histogram snapshots accumulate in the absorbed side-table (and
    /// appear merged in subsequent [`Registry::snapshot`] calls).
    ///
    /// An incoming histogram whose bucket layout differs from the state
    /// already held under the same name is skipped — distributions over
    /// different bucket schemes cannot be combined meaningfully and
    /// [`HistogramSnapshot::merge`] would panic.
    fn merge_snapshot(&self, snap: &Snapshot) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        for (name, delta) in &snap.counters {
            *inner.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &snap.gauges {
            inner.gauges.insert(name.clone(), *value);
        }
        for (name, h) in &snap.histograms {
            if let Some(live) = inner.histograms.get(name) {
                if live.bounds() != h.bounds.as_slice() {
                    continue;
                }
            }
            match inner.absorbed.get(name) {
                Some(mine) if mine.bounds == h.bounds => {
                    let merged = mine.merge(h);
                    inner.absorbed.insert(name.clone(), merged);
                }
                Some(_) => {}
                None => {
                    inner.absorbed.insert(name.clone(), h.clone());
                }
            }
        }
    }
}

/// A frozen registry state. Snapshots merge associatively, so per-fold
/// or per-shard registries can be combined in any grouping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Merges two snapshots: counters add, gauges take the right-hand
    /// value when present (last write wins), histograms merge
    /// bucket-wise (layouts must match).
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            out.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let merged = match out.histograms.get(k) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            out.histograms.insert(k.clone(), merged);
        }
        out
    }

    /// Serialises the snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum, min, max, mean, p50, p95, p99, bounds, counts}}}`.
    pub fn to_json(&self) -> JsonValue {
        let counters = JsonValue::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::U64(*v)))
                .collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), JsonValue::F64(*v)))
                .collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        JsonValue::Obj(vec![
                            ("count".into(), JsonValue::U64(h.count)),
                            ("sum".into(), JsonValue::F64(h.sum)),
                            ("min".into(), JsonValue::F64(h.min)),
                            ("max".into(), JsonValue::F64(h.max)),
                            ("mean".into(), JsonValue::F64(h.mean())),
                            ("p50".into(), JsonValue::F64(h.p50)),
                            ("p95".into(), JsonValue::F64(h.p95)),
                            ("p99".into(), JsonValue::F64(h.p99)),
                            (
                                "bounds".into(),
                                JsonValue::Arr(
                                    h.bounds.iter().map(|&b| JsonValue::F64(b)).collect(),
                                ),
                            ),
                            (
                                "counts".into(),
                                JsonValue::Arr(
                                    h.counts.iter().map(|&c| JsonValue::U64(c)).collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        JsonValue::Obj(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let reg = Registry::new();
        reg.counter_add("c", 1);
        reg.counter_add("c", 4);
        reg.gauge_set("g", 1.0);
        reg.gauge_set("g", 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.0);
    }

    #[test]
    fn registered_layout_is_used() {
        let reg = Registry::new();
        reg.register_histogram("lead", vec![10.0, 20.0, 30.0]);
        reg.observe("lead", 15.0);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["lead"].bounds, vec![10.0, 20.0, 30.0]);
        assert_eq!(snap.histograms["lead"].counts, vec![0, 1, 0, 0]);
    }

    #[test]
    fn events_are_buffered_and_drained() {
        let reg = Registry::new();
        reg.event("e", &[("k", Value::U64(1)), ("s", Value::Str("x"))]);
        let events = reg.take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, "e");
        assert_eq!(events[0].1[1].1, OwnedValue::Str("x".into()));
        assert!(reg.take_events().is_empty());
    }

    #[test]
    fn merge_is_commutative_on_disjoint_keys() {
        let a = Registry::new();
        a.counter_add("only_a", 1);
        let b = Registry::new();
        b.counter_add("only_b", 2);
        let ab = a.snapshot().merge(&b.snapshot());
        let ba = b.snapshot().merge(&a.snapshot());
        assert_eq!(ab.counters, ba.counters);
    }

    #[test]
    fn merge_snapshot_folds_worker_state_into_live_registry() {
        let main = Registry::new();
        main.counter_add("cv.folds", 1);
        main.observe("fold_seconds", 0.010);

        let worker = Registry::new();
        worker.counter_add("cv.folds", 2);
        worker.gauge_set("train.params", 123.0);
        worker.observe("fold_seconds", 0.020);
        worker.observe("fold_seconds", 0.030);

        main.merge_snapshot(&worker.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.counters["cv.folds"], 3);
        assert_eq!(snap.gauges["train.params"], 123.0);
        assert_eq!(snap.histograms["fold_seconds"].count, 3);

        // Merging via the registry equals merging the frozen snapshots.
        let a = Registry::new();
        a.counter_add("cv.folds", 1);
        a.observe("fold_seconds", 0.010);
        let by_snapshot = a.snapshot().merge(&worker.snapshot());
        assert_eq!(snap, by_snapshot);

        // Live observations continue to land on top of absorbed state.
        main.observe("fold_seconds", 0.040);
        assert_eq!(main.snapshot().histograms["fold_seconds"].count, 4);
    }

    #[test]
    fn merge_snapshot_skips_mismatched_histogram_layouts() {
        let main = Registry::new();
        main.register_histogram("h", vec![1.0, 2.0]);
        main.observe("h", 1.5);

        let worker = Registry::new();
        worker.register_histogram("h", vec![10.0, 20.0, 30.0]);
        worker.observe("h", 15.0);

        main.merge_snapshot(&worker.snapshot());
        let snap = main.snapshot();
        assert_eq!(snap.histograms["h"].count, 1, "mismatched layout dropped");
        assert_eq!(snap.histograms["h"].bounds, vec![1.0, 2.0]);
    }

    #[test]
    fn default_merge_snapshot_replays_counters_and_gauges() {
        use crate::FanoutRecorder;
        use std::sync::Arc;
        let a = Arc::new(Registry::new());
        let fan = FanoutRecorder::new(vec![a.clone()]);
        let worker = Registry::new();
        worker.counter_add("c", 5);
        worker.gauge_set("g", 2.5);
        fan.merge_snapshot(&worker.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 2.5);
    }

    #[test]
    fn visit_walks_live_state_by_reference() {
        let reg = Registry::new();
        reg.counter_add("c", 7);
        reg.gauge_set("g", 1.5);
        reg.register_histogram("h", vec![1.0, 2.0]);
        reg.observe("h", 1.5);

        #[derive(Default)]
        struct Collect {
            counters: Vec<(String, u64)>,
            gauges: Vec<(String, f64)>,
            hist_counts: Vec<(String, u64)>,
        }
        impl RegistryVisitor for Collect {
            fn counter(&mut self, name: &str, value: u64) {
                self.counters.push((name.to_string(), value));
            }
            fn gauge(&mut self, name: &str, value: f64) {
                self.gauges.push((name.to_string(), value));
            }
            fn histogram(&mut self, name: &str, hist: &Histogram) {
                self.hist_counts.push((name.to_string(), hist.count()));
                assert_eq!(hist.counts().iter().sum::<u64>(), 1);
                assert!((hist.sum() - 1.5).abs() < 1e-12);
            }
        }
        let mut v = Collect::default();
        reg.visit(&mut v);
        assert_eq!(v.counters, vec![("c".to_string(), 7)]);
        assert_eq!(v.gauges, vec![("g".to_string(), 1.5)]);
        assert_eq!(v.hist_counts, vec![("h".to_string(), 1)]);
    }

    #[test]
    fn snapshot_json_has_all_sections() {
        let reg = Registry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("g", 0.5);
        reg.observe("h", 1e-3);
        let text = reg.snapshot().to_json().to_string();
        for key in ["counters", "gauges", "histograms", "p95", "bounds"] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
    }
}
