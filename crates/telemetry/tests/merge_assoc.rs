//! Property tests for [`prefall_telemetry::Snapshot::merge`]: per-fold
//! or per-shard registries must combine the same way regardless of the
//! grouping, so `(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)` — exactly for counters and
//! bucket counts, up to float round-off for histogram sums.

use prefall_telemetry::{Recorder, Registry, Snapshot};
use proptest::prelude::*;

/// Builds a snapshot from generated operations. All registries share
/// the same bucket layout (merging requires it).
fn snapshot_from_ops(counters: &[(u8, u8)], gauges: &[(u8, i32)], obs: &[(u8, f64)]) -> Snapshot {
    let reg = Registry::new();
    for name in 0..3u8 {
        reg.register_histogram(&format!("h{name}"), vec![0.25, 0.5, 1.0, 2.0]);
    }
    for (name, delta) in counters {
        reg.counter_add(&format!("c{}", name % 3), u64::from(*delta));
    }
    for (name, value) in gauges {
        reg.gauge_set(&format!("g{}", name % 3), f64::from(*value));
    }
    for (name, value) in obs {
        reg.observe(&format!("h{}", name % 3), *value);
    }
    reg.snapshot()
}

/// Field-wise equality with a float tolerance on histogram sums (the
/// only merge output where addition order matters).
fn assert_equivalent(l: &Snapshot, r: &Snapshot) -> Result<(), TestCaseError> {
    prop_assert_eq!(&l.counters, &r.counters);
    prop_assert_eq!(&l.gauges, &r.gauges);
    prop_assert_eq!(
        l.histograms.keys().collect::<Vec<_>>(),
        r.histograms.keys().collect::<Vec<_>>()
    );
    for (name, lh) in &l.histograms {
        let rh = &r.histograms[name];
        prop_assert_eq!(lh.count, rh.count, "count of {}", name);
        prop_assert_eq!(&lh.counts, &rh.counts, "buckets of {}", name);
        prop_assert_eq!(lh.min, rh.min);
        prop_assert_eq!(lh.max, rh.max);
        prop_assert_eq!(lh.p50.to_bits(), rh.p50.to_bits());
        prop_assert_eq!(lh.p95.to_bits(), rh.p95.to_bits());
        prop_assert_eq!(lh.p99.to_bits(), rh.p99.to_bits());
        prop_assert!(
            (lh.sum - rh.sum).abs() <= 1e-9 * (1.0 + lh.sum.abs()),
            "sum of {}: {} vs {}",
            name,
            lh.sum,
            rh.sum
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative(
        ca in proptest::collection::vec((0u8..6, 0u8..20), 0..8),
        cb in proptest::collection::vec((0u8..6, 0u8..20), 0..8),
        cc in proptest::collection::vec((0u8..6, 0u8..20), 0..8),
        oa in proptest::collection::vec((0u8..6, 0.01f64..4.0), 0..12),
        ob in proptest::collection::vec((0u8..6, 0.01f64..4.0), 0..12),
        oc in proptest::collection::vec((0u8..6, 0.01f64..4.0), 0..12),
    ) {
        let a = snapshot_from_ops(&ca, &[], &oa);
        let b = snapshot_from_ops(&cb, &[(0, 1), (1, 2)], &ob);
        let c = snapshot_from_ops(&cc, &[(1, 3)], &oc);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_equivalent(&left, &right)?;
    }

    #[test]
    fn empty_is_identity(
        ops in proptest::collection::vec((0u8..6, 0.01f64..4.0), 0..16),
    ) {
        let s = snapshot_from_ops(&[(0, 3)], &[(2, -7)], &ops);
        let empty = Snapshot::default();
        prop_assert_eq!(&empty.merge(&s), &s);
        prop_assert_eq!(&s.merge(&empty), &s);
    }

    #[test]
    fn merged_count_is_total(
        oa in proptest::collection::vec((0u8..3, 0.01f64..4.0), 0..20),
        ob in proptest::collection::vec((0u8..3, 0.01f64..4.0), 0..20),
    ) {
        let a = snapshot_from_ops(&[], &[], &oa);
        let b = snapshot_from_ops(&[], &[], &ob);
        let m = a.merge(&b);
        let total: u64 = m.histograms.values().map(|h| h.count).sum();
        prop_assert_eq!(total, (oa.len() + ob.len()) as u64);
    }
}
