//! # prefall-par — deterministic fork-join parallelism
//!
//! A zero-dependency scoped worker pool built on [`std::thread::scope`].
//! The build is offline, so there is no rayon here: this crate provides
//! the small slice of it the workspace needs — a fork-join [`Pool::map`]
//! and [`Pool::reduce`] with three hard guarantees:
//!
//! 1. **Determinism** — results are collected in input-index order, so a
//!    `map` over independent items returns exactly what the serial loop
//!    would. Callers that fold worker outputs in index order get
//!    bit-identical results for any thread count (including 1).
//! 2. **Panic propagation** — a panic inside a task halts the pool and
//!    is re-raised on the calling thread with its original payload.
//! 3. **Bounded workers** — a process-wide budget caps the number of
//!    live extra workers, so nested `map` calls (experiment cells →
//!    CV folds → gradient batches) degrade to inline execution instead
//!    of oversubscribing the machine.
//!
//! Thread count resolution: explicit [`Pool::new`] wins, otherwise the
//! `PREFALL_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`].
//!
//! Pool activity (tasks run, tasks stolen by spawned workers, steal
//! attempts, queue depth, fork-join barrier wait, worker idle time, and
//! a task-granularity histogram) is tracked in [`PoolStats`] and can be
//! published as `par.*` telemetry metrics via [`Pool::publish`], which
//! the `prefall-obsd` `/metrics` and `/snapshot` endpoints then expose
//! with no extra wiring.
//!
//! When `prefall-trace` is armed, every map also writes a timeline:
//! a `par.map` span on the caller, one `par.task` span per task, a
//! `par.worker` span per spawned worker, a `par.barrier` span covering
//! the caller's join wait, and a `par.steal_fail` instant each time a
//! worker finds the queue empty — which is what the `prefall-profile`
//! attribution report decomposes into kernel / overhead / idle /
//! barrier percentages.

#![forbid(unsafe_code)]

use prefall_telemetry::Recorder;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable overriding the worker count for pools created
/// with [`Pool::from_env`] / [`Pool::with_override`].
pub const THREADS_ENV: &str = "PREFALL_THREADS";

/// Upper bound on configured threads; values above this are clamped.
const MAX_THREADS: usize = 1024;

/// Process-wide count of currently live *extra* workers (beyond the
/// calling threads). Nested `map` calls observe workers reserved by
/// their ancestors and fall back to inline execution when the budget
/// is spent, which keeps cells × folds × batches from multiplying.
static EXTRA_WORKERS_LIVE: AtomicUsize = AtomicUsize::new(0);

/// Parses `PREFALL_THREADS`; `None` when unset, empty, zero, or not a
/// number (the pool then falls back to the machine's parallelism).
pub fn env_threads() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n.min(MAX_THREADS)),
        _ => None,
    }
}

fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Upper edges (nanoseconds) of the task-granularity histogram buckets;
/// the last bucket is everything above. Chosen around the regimes that
/// matter for fork-join overhead: a sub-10 µs task is dominated by pool
/// bookkeeping, a >10 ms task amortises it completely.
pub const GRANULARITY_EDGES_NS: [u64; 5] = [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Telemetry counter names for the task-granularity buckets, matching
/// [`GRANULARITY_EDGES_NS`] plus the overflow bucket.
pub const GRANULARITY_NAMES: [&str; 6] = [
    "par.tasks_le_10us",
    "par.tasks_le_100us",
    "par.tasks_le_1ms",
    "par.tasks_le_10ms",
    "par.tasks_le_100ms",
    "par.tasks_gt_100ms",
];

fn granularity_bucket(dur_ns: u64) -> usize {
    GRANULARITY_EDGES_NS
        .iter()
        .position(|&edge| dur_ns <= edge)
        .unwrap_or(GRANULARITY_EDGES_NS.len())
}

/// Interned trace span names, initialised on the first *armed* event so
/// the disarmed hot path never touches the interner.
struct TraceNames {
    map: prefall_trace::NameId,
    task: prefall_trace::NameId,
    worker: prefall_trace::NameId,
    barrier: prefall_trace::NameId,
    steal_fail: prefall_trace::NameId,
}

fn trace_names() -> &'static TraceNames {
    static NAMES: OnceLock<TraceNames> = OnceLock::new();
    NAMES.get_or_init(|| TraceNames {
        map: prefall_trace::intern("par.map"),
        task: prefall_trace::intern("par.task"),
        worker: prefall_trace::intern("par.worker"),
        barrier: prefall_trace::intern("par.barrier"),
        steal_fail: prefall_trace::intern("par.steal_fail"),
    })
}

/// Cumulative activity counters for one [`Pool`].
///
/// All counters are monotone; [`Pool::publish`] emits deltas since the
/// previous publish so repeated calls never double-count.
#[derive(Debug, Default)]
pub struct PoolStats {
    maps: AtomicU64,
    maps_inline: AtomicU64,
    tasks: AtomicU64,
    tasks_stolen: AtomicU64,
    steal_attempts: AtomicU64,
    workers_spawned: AtomicU64,
    idle_nanos: AtomicU64,
    barrier_nanos: AtomicU64,
    /// Largest queue depth (items per map) seen since the last publish.
    queue_depth_hw: AtomicU64,
    granularity: [AtomicU64; 6],
    // High-water marks of what has already been published.
    pub_maps: AtomicU64,
    pub_maps_inline: AtomicU64,
    pub_tasks: AtomicU64,
    pub_tasks_stolen: AtomicU64,
    pub_steal_attempts: AtomicU64,
    pub_workers_spawned: AtomicU64,
    pub_idle_nanos: AtomicU64,
    pub_barrier_nanos: AtomicU64,
    pub_granularity: [AtomicU64; 6],
}

/// Point-in-time copy of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Fork-join sections executed (parallel or inline).
    pub maps: u64,
    /// Fork-join sections that ran entirely on the calling thread
    /// (single item, one configured thread, or budget exhausted).
    pub maps_inline: u64,
    /// Total tasks executed.
    pub tasks: u64,
    /// Tasks executed by spawned workers rather than the caller.
    pub tasks_stolen: u64,
    /// Queue-claim attempts by spawned workers, successful or not. The
    /// difference `steal_attempts - tasks_stolen` is how often a worker
    /// woke up to an already-empty queue.
    pub steal_attempts: u64,
    /// Worker threads spawned over the pool's lifetime.
    pub workers_spawned: u64,
    /// Nanoseconds spawned workers spent not running a task (wall time
    /// minus busy time, summed over workers).
    pub idle_nanos: u64,
    /// Nanoseconds the calling thread spent waiting at the fork-join
    /// barrier after finishing its own share of the queue.
    pub barrier_nanos: u64,
    /// Largest queue depth (items handed to one `map`) since the last
    /// [`Pool::publish`].
    pub queue_depth_hw: u64,
    /// Task-duration histogram; bucket edges are
    /// [`GRANULARITY_EDGES_NS`] plus an overflow bucket.
    pub granularity: [u64; 6],
}

impl PoolStats {
    fn snapshot(&self) -> StatsSnapshot {
        let mut granularity = [0u64; 6];
        for (out, b) in granularity.iter_mut().zip(&self.granularity) {
            *out = b.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            maps: self.maps.load(Ordering::Relaxed),
            maps_inline: self.maps_inline.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            idle_nanos: self.idle_nanos.load(Ordering::Relaxed),
            barrier_nanos: self.barrier_nanos.load(Ordering::Relaxed),
            queue_depth_hw: self.queue_depth_hw.load(Ordering::Relaxed),
            granularity,
        }
    }

    fn note_task_duration(&self, dur_ns: u64) {
        self.granularity[granularity_bucket(dur_ns)].fetch_add(1, Ordering::Relaxed);
    }

    fn note_queue_depth(&self, depth: u64) {
        self.queue_depth_hw.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Releases reserved budget even when a task panics.
struct BudgetGuard(usize);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        if self.0 > 0 {
            EXTRA_WORKERS_LIVE.fetch_sub(self.0, Ordering::AcqRel);
        }
    }
}

/// A fork-join worker pool. Creating one is cheap: threads are scoped
/// to each [`Pool::map`] call, so an idle pool holds no OS resources.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    stats: PoolStats,
}

impl Pool {
    /// A pool that uses up to `threads` threads per `map` (the caller
    /// plus `threads - 1` spawned workers). Zero is treated as one.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.clamp(1, MAX_THREADS),
            stats: PoolStats::default(),
        }
    }

    /// A pool sized from `PREFALL_THREADS`, falling back to the
    /// machine's available parallelism.
    pub fn from_env() -> Self {
        Self::new(env_threads().unwrap_or_else(machine_threads))
    }

    /// A pool sized from an explicit override when present, otherwise
    /// as [`Pool::from_env`].
    pub fn with_override(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => Self::new(n),
            None => Self::from_env(),
        }
    }

    /// Threads this pool may use per `map`, including the caller.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Emits counter deltas since the last publish as `par.*` counters,
    /// plus the `par.queue_depth` gauge (high-water depth since the last
    /// publish, then reset).
    pub fn publish(&self, rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        let mut pairs: Vec<(&str, &AtomicU64, &AtomicU64)> = vec![
            ("par.maps", &self.stats.maps, &self.stats.pub_maps),
            (
                "par.maps_inline",
                &self.stats.maps_inline,
                &self.stats.pub_maps_inline,
            ),
            ("par.tasks", &self.stats.tasks, &self.stats.pub_tasks),
            (
                "par.tasks_stolen",
                &self.stats.tasks_stolen,
                &self.stats.pub_tasks_stolen,
            ),
            (
                "par.steal_attempts",
                &self.stats.steal_attempts,
                &self.stats.pub_steal_attempts,
            ),
            (
                "par.workers_spawned",
                &self.stats.workers_spawned,
                &self.stats.pub_workers_spawned,
            ),
            (
                "par.idle_nanos",
                &self.stats.idle_nanos,
                &self.stats.pub_idle_nanos,
            ),
            (
                "par.barrier_nanos",
                &self.stats.barrier_nanos,
                &self.stats.pub_barrier_nanos,
            ),
        ];
        for (i, name) in GRANULARITY_NAMES.iter().enumerate() {
            pairs.push((
                name,
                &self.stats.granularity[i],
                &self.stats.pub_granularity[i],
            ));
        }
        for (name, cur, published) in pairs {
            let now = cur.load(Ordering::Relaxed);
            let prev = published.swap(now, Ordering::Relaxed);
            let delta = now.saturating_sub(prev);
            if delta > 0 {
                rec.counter_add(name, delta);
            }
        }
        let depth = self.stats.queue_depth_hw.swap(0, Ordering::Relaxed);
        if depth > 0 {
            rec.gauge_set("par.queue_depth", depth as f64);
        }
    }

    /// Tries to reserve up to `desired` extra workers from the global
    /// budget, bounded by this pool's own `threads - 1`.
    fn acquire_extra(&self, desired: usize) -> BudgetGuard {
        let cap = self.threads.saturating_sub(1);
        let want = desired.min(cap);
        if want == 0 {
            return BudgetGuard(0);
        }
        let mut live = EXTRA_WORKERS_LIVE.load(Ordering::Acquire);
        loop {
            let avail = cap.saturating_sub(live);
            let grant = want.min(avail);
            if grant == 0 {
                return BudgetGuard(0);
            }
            match EXTRA_WORKERS_LIVE.compare_exchange_weak(
                live,
                live + grant,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return BudgetGuard(grant),
                Err(seen) => live = seen,
            }
        }
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**. `f` receives the item index and a reference to the item.
    ///
    /// Execution order across workers is nondeterministic, but because
    /// each task depends only on its own input and results are placed
    /// by index, the returned vector is identical for any thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic on the calling thread after all
    /// workers have stopped.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.stats.maps.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let _map_span = prefall_trace::trace_span!(trace_names().map);
        self.stats.note_queue_depth(n as u64);
        let guard = if n > 1 {
            self.acquire_extra(n - 1)
        } else {
            BudgetGuard(0)
        };
        let extra = guard.0;
        self.stats.tasks.fetch_add(n as u64, Ordering::Relaxed);
        if extra == 0 {
            self.stats.maps_inline.fetch_add(1, Ordering::Relaxed);
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let _task_span = prefall_trace::trace_span!(trace_names().task);
                    let started = Instant::now();
                    let r = f(i, t);
                    self.stats
                        .note_task_duration(started.elapsed().as_nanos() as u64);
                    r
                })
                .collect();
        }
        self.stats
            .workers_spawned
            .fetch_add(extra as u64, Ordering::Relaxed);

        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let halt = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

        let run = |stolen: bool| -> u64 {
            let mut busy_nanos = 0u64;
            loop {
                if halt.load(Ordering::Relaxed) {
                    break;
                }
                if stolen {
                    self.stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    if stolen && prefall_trace::armed() {
                        prefall_trace::instant(trace_names().steal_fail);
                    }
                    break;
                }
                let _task_span = prefall_trace::trace_span!(trace_names().task);
                let started = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])));
                let dur_ns = started.elapsed().as_nanos() as u64;
                busy_nanos += dur_ns;
                self.stats.note_task_duration(dur_ns);
                match out {
                    Ok(r) => {
                        *slots[i].lock().expect("result slot poisoned") = Some(r);
                        if stolen {
                            self.stats.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(payload) => {
                        let mut slot = panic_payload.lock().expect("panic slot poisoned");
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        halt.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
            busy_nanos
        };

        let mut barrier_started: Option<Instant> = None;
        std::thread::scope(|s| {
            for _ in 0..extra {
                s.spawn(|| {
                    let _worker_span = prefall_trace::trace_span!(trace_names().worker);
                    let started = Instant::now();
                    let busy = run(true);
                    let wall = started.elapsed().as_nanos() as u64;
                    self.stats
                        .idle_nanos
                        .fetch_add(wall.saturating_sub(busy), Ordering::Relaxed);
                });
            }
            run(false);
            // The caller has drained its share of the queue; everything
            // from here until the scope joins is barrier wait.
            if prefall_trace::armed() {
                prefall_trace::begin(trace_names().barrier);
            }
            barrier_started = Some(Instant::now());
        });
        if let Some(started) = barrier_started {
            self.stats
                .barrier_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if prefall_trace::armed() {
            prefall_trace::end(trace_names().barrier);
        }
        drop(guard);

        if let Some(payload) = panic_payload.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every task must have produced a result")
            })
            .collect()
    }

    /// Maps every item and folds the results **in input-index order**.
    /// Because the fold is sequential over an index-ordered vector, the
    /// reduction is bit-identical to the serial loop whenever `fold`
    /// itself is deterministic — even for non-associative float math.
    pub fn reduce<T, R, F, G>(&self, items: &[T], map_fn: F, fold: G) -> Option<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(R, R) -> R,
    {
        self.map(items, map_fn).into_iter().reduce(fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..257).collect();
        let got = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3 + 1
        });
        let want: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let serial: Vec<f32> = items.iter().map(|x| x.sin() * x).collect();
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).map(&items, |_, x| x.sin() * x);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn reduce_folds_in_index_order() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..10).collect();
        let got = pool
            .reduce(&items, |_, &x| x.to_string(), |a, b| a + "," + &b)
            .unwrap();
        assert_eq!(got, "0,1,2,3,4,5,6,7,8,9");
        assert!(pool
            .reduce(&[] as &[usize], |_, &x| x, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn panic_propagates_with_original_payload() {
        let pool = Pool::new(2);
        let items: Vec<usize> = (0..16).collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                if x == 3 {
                    panic!("task 3 exploded");
                }
                x
            });
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task 3 exploded"), "payload lost: {msg:?}");

        // The budget guard released its reservation on the panic path,
        // so a fresh map can go parallel again.
        let before = pool.stats().workers_spawned;
        let got = pool.map(&items, |_, &x| x + 1);
        assert_eq!(got[15], 16);
        assert!(pool.stats().workers_spawned > before);
    }

    #[test]
    fn nested_maps_fall_back_to_inline() {
        let outer = Pool::new(2);
        let items: Vec<usize> = (0..4).collect();
        let got = outer.map(&items, |_, &x| {
            let inner = Pool::new(8);
            let inner_items: Vec<usize> = (0..8).collect();
            let inner_got = inner.map(&inner_items, |_, &y| y * 10 + x);
            assert_eq!(inner_items.len(), inner_got.len());
            inner_got.into_iter().sum::<usize>()
        });
        let want: Vec<usize> = items
            .iter()
            .map(|&x| (0..8).map(|y| y * 10 + x).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stats_count_tasks_and_inline_maps() {
        let pool = Pool::new(1);
        let items = [1, 2, 3];
        let _ = pool.map(&items, |_, &x| x);
        let s = pool.stats();
        assert_eq!(s.maps, 1);
        assert_eq!(s.maps_inline, 1);
        assert_eq!(s.tasks, 3);
        assert_eq!(s.tasks_stolen, 0);
        assert_eq!(s.workers_spawned, 0);
    }

    #[test]
    fn publish_emits_deltas_not_totals() {
        #[derive(Debug, Default)]
        struct CaptureRec(Mutex<Vec<(String, u64)>>);
        impl Recorder for CaptureRec {
            fn enabled(&self) -> bool {
                true
            }
            fn counter_add(&self, name: &str, value: u64) {
                self.0.lock().unwrap().push((name.to_owned(), value));
            }
            fn gauge_set(&self, _: &str, _: f64) {}
            fn observe(&self, _: &str, _: f64) {}
            fn event(&self, _: &str, _: &[(&str, prefall_telemetry::Value<'_>)]) {}
        }
        let pool = Pool::new(1);
        let rec = CaptureRec::default();
        let _ = pool.map(&[1, 2], |_, &x| x);
        pool.publish(&rec);
        let first: Vec<_> = rec.0.lock().unwrap().drain(..).collect();
        assert!(first.contains(&("par.tasks".to_owned(), 2)));
        let _ = pool.map(&[1], |_, &x| x);
        pool.publish(&rec);
        let second: Vec<_> = rec.0.lock().unwrap().drain(..).collect();
        assert!(second.contains(&("par.tasks".to_owned(), 1)), "{second:?}");
    }

    #[test]
    fn steal_and_queue_accounting_closes() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..64).collect();
        let _ = pool.map(&items, |_, &x| x * 2);
        let s = pool.stats();
        assert_eq!(s.queue_depth_hw, 64);
        assert_eq!(
            s.granularity.iter().sum::<u64>(),
            s.tasks,
            "every task lands in exactly one granularity bucket"
        );
        // In a panic-free map every spawned worker exits through one
        // failed claim, so attempts = successful steals + one miss per
        // worker — the identity the profile utilization math relies on.
        assert_eq!(s.steal_attempts, s.tasks_stolen + s.workers_spawned);
    }

    #[test]
    fn publish_emits_steal_attempts_and_queue_depth_gauge() {
        #[derive(Debug, Default)]
        struct GaugeRec {
            counters: Mutex<Vec<(String, u64)>>,
            gauges: Mutex<Vec<(String, f64)>>,
        }
        impl Recorder for GaugeRec {
            fn enabled(&self) -> bool {
                true
            }
            fn counter_add(&self, name: &str, value: u64) {
                self.counters.lock().unwrap().push((name.to_owned(), value));
            }
            fn gauge_set(&self, name: &str, value: f64) {
                self.gauges.lock().unwrap().push((name.to_owned(), value));
            }
            fn observe(&self, _: &str, _: f64) {}
            fn event(&self, _: &str, _: &[(&str, prefall_telemetry::Value<'_>)]) {}
        }
        let pool = Pool::new(2);
        let rec = GaugeRec::default();
        let items: Vec<usize> = (0..32).collect();
        let _ = pool.map(&items, |_, &x| x + 1);
        pool.publish(&rec);
        let counters = rec.counters.lock().unwrap().clone();
        assert!(
            counters.iter().any(|(n, _)| n == "par.steal_attempts"),
            "{counters:?}"
        );
        assert!(
            counters
                .iter()
                .any(|(n, _)| n.starts_with("par.tasks_le_") || n.starts_with("par.tasks_gt_")),
            "granularity buckets published: {counters:?}"
        );
        let gauges = rec.gauges.lock().unwrap().clone();
        assert!(
            gauges.contains(&("par.queue_depth".to_owned(), 32.0)),
            "{gauges:?}"
        );
        // The gauge resets after publish: a quiet interval re-arms it.
        rec.gauges.lock().unwrap().clear();
        pool.publish(&rec);
        assert!(rec.gauges.lock().unwrap().is_empty());
    }

    #[test]
    fn armed_map_traces_tasks_and_barrier() {
        let _t = prefall_trace::drain(); // isolate from other tests
        prefall_trace::arm(4096);
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let _ = pool.map(&items, |_, &x| x * x);
        prefall_trace::disarm();
        let tl = prefall_trace::drain();
        let attr = tl.attribution();
        // Other tests in this binary may run maps during the armed
        // window, so assert lower bounds contributed by this map.
        assert!(attr.total("par.map").count >= 1);
        assert!(attr.total("par.task").count >= 16);
        assert!(attr.total("par.barrier").count >= 1);
        assert!(attr.total("par.worker").count >= 1, "workers spawned");
    }

    #[test]
    fn env_override_controls_from_env() {
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Pool::from_env().threads(), 3);
        assert_eq!(Pool::with_override(Some(7)).threads(), 7);
        assert_eq!(Pool::with_override(None).threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Pool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Pool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Pool::from_env().threads() >= 1);
    }
}
