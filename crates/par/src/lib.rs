//! # prefall-par — deterministic work-stealing parallelism
//!
//! A zero-dependency persistent work-stealing scheduler. The build is
//! offline, so there is no rayon here: this crate provides the slice of
//! it the workspace needs — [`Pool::map`] / [`Pool::map_init`] /
//! [`Pool::reduce`] over a process-wide pool of long-lived workers —
//! with three hard guarantees:
//!
//! 1. **Determinism** — results land in pre-sized indexed slots, so a
//!    `map` over independent items returns exactly what the serial loop
//!    would, for any thread count and any steal interleaving. Callers
//!    that fold worker outputs in index order get bit-identical results
//!    for any thread count (including 1).
//! 2. **Panic propagation** — a panic inside a task halts the session
//!    and is re-raised on the calling thread with its original payload;
//!    the scheduler itself survives and the pool stays usable.
//! 3. **Nested fan-out** — a `map` issued from inside another map's
//!    task enqueues real work onto the scheduler (the worker runs its
//!    own sub-tasks LIFO while thieves relieve it FIFO) instead of
//!    degrading to inline execution. [`Pool::from_env`] inside a task
//!    inherits the enclosing pool's thread budget, so one
//!    `ExperimentConfig::threads` setting governs the whole cell → CV
//!    fold → gradient-batch tree — including pinning it fully serial
//!    with one thread.
//!
//! ## Task coarsening
//!
//! Tiny tasks are batched into chunks sized from a calibrated per-task
//! cost estimate (an EWMA each pool maintains from its own measured
//! maps, target ≈250 µs per chunk), so the grid's ~100k sub-millisecond
//! tasks pay scheduler overhead per *chunk*, not per task. Maps whose
//! estimated total work is under ~60 µs run inline on the caller —
//! those are the only maps that should show up in `par.maps_inline`.
//!
//! Thread count resolution for [`Pool::from_env`]: the
//! `PREFALL_THREADS` environment variable, otherwise the enclosing map
//! task's budget, otherwise [`std::thread::available_parallelism`].
//! Explicit [`Pool::new`] always wins.
//!
//! Pool activity (maps, tasks, coarsened tasks, local pops vs steals,
//! steal attempts, queue depth, chunk size, barrier wait, worker parks
//! and idle time, and a task-granularity histogram) is tracked in
//! [`PoolStats`] and can be published as `par.*` telemetry metrics via
//! [`Pool::publish`], which the `prefall-obsd` `/metrics` and
//! `/snapshot` endpoints then expose with no extra wiring.
//!
//! When `prefall-trace` is armed, every map also writes a timeline: a
//! `par.map` span on the caller, one `par.task` span per executed
//! chunk, a `par.worker` span per worker busy-episode, a `par.barrier`
//! span covering the caller's help-and-wait loop, `par.steal_fail`
//! instants on empty sweeps, and `par.park` / `par.unpark` instants
//! around worker sleeps — which is what the `prefall-profile`
//! attribution report decomposes into kernel / overhead / idle /
//! barrier percentages.

#![deny(unsafe_code)]

mod scheduler;
mod session;

pub use scheduler::worker_index;

use prefall_telemetry::Recorder;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Environment variable overriding the worker count for pools created
/// with [`Pool::from_env`] / [`Pool::with_override`].
pub const THREADS_ENV: &str = "PREFALL_THREADS";

/// Upper bound on configured threads; values above this are clamped.
const MAX_THREADS: usize = 1024;

/// Upper bound on spawned scheduler workers. A pool with more threads
/// than this still works — its chunks just share these deques.
pub(crate) const MAX_WORKERS: usize = 64;

/// Coarsening target: aim each chunk at roughly this much work, so
/// per-chunk scheduler overhead (one deque pop, one slot batch) stays
/// well under a percent. The target is per *hardware context*: when the
/// thread budget oversubscribes the machine the target is multiplied by
/// the oversubscription factor, because extra chunks cannot run
/// concurrently anyway — they only add steal traffic and context
/// switches.
const TARGET_CHUNK_NS: u64 = 250_000;

/// Chunks are capped at `items / (balance_threads * OVERSUBSCRIBE)` so
/// every map yields at least a few chunks per *hardware* thread for
/// stealing to balance, even when the cost estimate asks for huge
/// chunks. `balance_threads = min(threads, machine)`: logical workers
/// beyond the machine's parallelism cannot shorten the critical path,
/// so they earn no extra splits.
const OVERSUBSCRIBE: usize = 4;

/// Maps whose estimated *total* work is under this run inline on the
/// caller: enqueueing would cost more than it parallelises.
const SMALL_MAP_NS: u64 = 60_000;

/// Parses `PREFALL_THREADS`; `None` when unset, empty, zero, or not a
/// number (the pool then falls back to inherited or machine threads).
pub fn env_threads() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n.min(MAX_THREADS)),
        _ => None,
    }
}

fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many of `threads` can actually run at once
/// (`min(threads, machine)`), and by what factor the budget
/// oversubscribes the machine (`ceil(threads / machine)`, ≥ 1). The
/// coarsener splits for the former and scales its per-chunk work target
/// by the latter; the push path skips eager wakeups entirely when the
/// factor exceeds one.
pub(crate) fn balance_and_oversubscription(threads: usize) -> (usize, u64) {
    let hw = machine_threads().max(1);
    (threads.min(hw).max(1), threads.div_ceil(hw).max(1) as u64)
}

/// Upper edges (nanoseconds) of the task-granularity histogram buckets;
/// the last bucket is everything above. Chosen around the regimes that
/// matter for scheduling overhead: a sub-10 µs task is dominated by
/// bookkeeping, a >10 ms task amortises it completely. Under coarsening
/// the buckets count executed *chunks* for parallel maps and individual
/// items for inline maps.
pub const GRANULARITY_EDGES_NS: [u64; 5] = [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Telemetry counter names for the task-granularity buckets, matching
/// [`GRANULARITY_EDGES_NS`] plus the overflow bucket.
pub const GRANULARITY_NAMES: [&str; 6] = [
    "par.tasks_le_10us",
    "par.tasks_le_100us",
    "par.tasks_le_1ms",
    "par.tasks_le_10ms",
    "par.tasks_le_100ms",
    "par.tasks_gt_100ms",
];

fn granularity_bucket(dur_ns: u64) -> usize {
    GRANULARITY_EDGES_NS
        .iter()
        .position(|&edge| dur_ns <= edge)
        .unwrap_or(GRANULARITY_EDGES_NS.len())
}

/// Interned trace span names, initialised on the first *armed* event so
/// the disarmed hot path never touches the interner.
pub(crate) struct TraceNames {
    pub(crate) map: prefall_trace::NameId,
    pub(crate) task: prefall_trace::NameId,
    pub(crate) worker: prefall_trace::NameId,
    pub(crate) barrier: prefall_trace::NameId,
    pub(crate) steal_fail: prefall_trace::NameId,
    pub(crate) park: prefall_trace::NameId,
    pub(crate) unpark: prefall_trace::NameId,
}

pub(crate) fn trace_names() -> &'static TraceNames {
    static NAMES: OnceLock<TraceNames> = OnceLock::new();
    NAMES.get_or_init(|| TraceNames {
        map: prefall_trace::intern("par.map"),
        task: prefall_trace::intern("par.task"),
        worker: prefall_trace::intern("par.worker"),
        barrier: prefall_trace::intern("par.barrier"),
        steal_fail: prefall_trace::intern("par.steal_fail"),
        park: prefall_trace::intern("par.park"),
        unpark: prefall_trace::intern("par.unpark"),
    })
}

/// Cumulative activity counters for one [`Pool`], plus the pool's
/// calibrated per-task cost estimate.
///
/// All counters are monotone; [`Pool::publish`] emits deltas since the
/// previous publish so repeated calls never double-count.
#[derive(Debug, Default)]
pub struct PoolStats {
    maps: AtomicU64,
    maps_inline: AtomicU64,
    tasks: AtomicU64,
    tasks_coarsened: AtomicU64,
    pub(crate) local_pops: AtomicU64,
    pub(crate) tasks_stolen: AtomicU64,
    pub(crate) barrier_nanos: AtomicU64,
    /// Largest per-deque depth (chunks) seen since the last publish.
    queue_depth_hw: AtomicU64,
    /// Chunk size chosen by the most recent parallel map.
    chunk_size_last: AtomicU64,
    /// EWMA of measured nanoseconds per task, feeding the coarsener.
    cost_est_ns: AtomicU64,
    granularity: [AtomicU64; 6],
    // High-water marks of what has already been published.
    pub_maps: AtomicU64,
    pub_maps_inline: AtomicU64,
    pub_tasks: AtomicU64,
    pub_tasks_coarsened: AtomicU64,
    pub_local_pops: AtomicU64,
    pub_tasks_stolen: AtomicU64,
    pub_barrier_nanos: AtomicU64,
    pub_granularity: [AtomicU64; 6],
}

/// Point-in-time copy of a pool's counters. Scheduler-wide fields
/// (steals, workers, parks, idle) come from the shared scheduler and
/// cover all pools in the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Fork-join sections executed (parallel or inline).
    pub maps: u64,
    /// Fork-join sections that ran entirely on the calling thread
    /// (single item, one configured thread, or estimated total work too
    /// small to be worth enqueueing).
    pub maps_inline: u64,
    /// Total tasks (items) executed.
    pub tasks: u64,
    /// Items that were batched into a chunk with at least one other
    /// item, i.e. items whose scheduling cost was amortised.
    pub tasks_coarsened: u64,
    /// Items executed from a deque by its owner, or reclaimed by the
    /// session's own caller — work that never crossed threads.
    pub local_pops: u64,
    /// Items executed by a thread other than the session caller after
    /// crossing deques — genuine steals.
    pub tasks_stolen: u64,
    /// Steal sweeps over foreign deques, successful or not, by any
    /// thread in the process (scheduler-wide).
    pub steal_attempts: u64,
    /// Persistent worker threads spawned so far (scheduler-wide; they
    /// are reused for the rest of the process).
    pub workers_spawned: u64,
    /// Times any thread parked on the scheduler's lot (scheduler-wide).
    pub parks: u64,
    /// Parks that ended by notification rather than timeout
    /// (scheduler-wide).
    pub unparks: u64,
    /// Nanoseconds workers spent parked (scheduler-wide).
    pub idle_nanos: u64,
    /// Nanoseconds this pool's callers spent in the help-and-wait loop
    /// *not* executing tasks — the residual fork-join barrier.
    pub barrier_nanos: u64,
    /// Largest per-deque depth in chunks since the last
    /// [`Pool::publish`].
    pub queue_depth_hw: u64,
    /// Chunk size chosen by this pool's most recent parallel map.
    pub chunk_size: u64,
    /// Task-duration histogram; bucket edges are
    /// [`GRANULARITY_EDGES_NS`] plus an overflow bucket. Counts chunks
    /// for parallel maps, items for inline maps.
    pub granularity: [u64; 6],
}

impl PoolStats {
    fn snapshot(&self) -> StatsSnapshot {
        let mut granularity = [0u64; 6];
        for (out, b) in granularity.iter_mut().zip(&self.granularity) {
            *out = b.load(Ordering::Relaxed);
        }
        let sched = &scheduler::Scheduler::get().stats;
        StatsSnapshot {
            maps: self.maps.load(Ordering::Relaxed),
            maps_inline: self.maps_inline.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            tasks_coarsened: self.tasks_coarsened.load(Ordering::Relaxed),
            local_pops: self.local_pops.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            steal_attempts: sched.steal_attempts.load(Ordering::Relaxed),
            workers_spawned: sched.workers_spawned.load(Ordering::Relaxed),
            parks: sched.parks.load(Ordering::Relaxed),
            unparks: sched.unparks.load(Ordering::Relaxed),
            idle_nanos: sched.idle_nanos.load(Ordering::Relaxed),
            barrier_nanos: self.barrier_nanos.load(Ordering::Relaxed),
            queue_depth_hw: self.queue_depth_hw.load(Ordering::Relaxed),
            chunk_size: self.chunk_size_last.load(Ordering::Relaxed),
            granularity,
        }
    }

    pub(crate) fn note_task_duration(&self, dur_ns: u64) {
        self.granularity[granularity_bucket(dur_ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_queue_depth(&self, depth: u64) {
        self.queue_depth_hw.fetch_max(depth, Ordering::Relaxed);
    }

    /// Folds a fresh per-task cost measurement into the EWMA the
    /// coarsener reads. Floored at 1 ns so "measurably free" is still
    /// distinguishable from "never measured" (0).
    pub(crate) fn update_cost_estimate(&self, per_task_ns: u64) {
        let m = per_task_ns.max(1);
        let old = self.cost_est_ns.load(Ordering::Relaxed);
        let new = if old == 0 { m } else { (3 * old + m) / 4 };
        self.cost_est_ns.store(new, Ordering::Relaxed);
    }
}

/// Emits `now - mark` as a counter and advances the mark; the swap
/// makes each increment publish exactly once even with many callers.
fn publish_delta(rec: &dyn Recorder, name: &str, cur: &AtomicU64, mark: &AtomicU64) {
    let now = cur.load(Ordering::Relaxed);
    let prev = mark.swap(now, Ordering::Relaxed);
    let delta = now.saturating_sub(prev);
    if delta > 0 {
        rec.counter_add(name, delta);
    }
}

/// A handle onto the process-wide work-stealing scheduler. Creating one
/// is cheap — it is a thread budget plus a stats block; the worker
/// threads are shared, spawned on first use, and reused for the rest of
/// the process.
#[derive(Debug)]
pub struct Pool {
    threads: usize,
    stats: PoolStats,
}

impl Pool {
    /// A pool that uses up to `threads` threads per `map` (the caller
    /// plus shared scheduler workers). Zero is treated as one.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.clamp(1, MAX_THREADS),
            stats: PoolStats::default(),
        }
    }

    /// A pool sized from `PREFALL_THREADS`, else the thread budget of
    /// the map task this call is running inside (so nested pools follow
    /// the experiment's setting), else the machine's parallelism.
    pub fn from_env() -> Self {
        Self::new(
            env_threads()
                .or_else(scheduler::inherited_threads)
                .unwrap_or_else(machine_threads),
        )
    }

    /// A pool sized from an explicit override when present, otherwise
    /// as [`Pool::from_env`].
    pub fn with_override(threads: Option<usize>) -> Self {
        match threads {
            Some(n) => Self::new(n),
            None => Self::from_env(),
        }
    }

    /// Threads this pool may use per `map`, including the caller.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Emits counter deltas since the last publish as `par.*` counters,
    /// plus the `par.queue_depth` gauge (high-water depth since the
    /// last publish, then reset) and the `par.chunk_size` gauge (most
    /// recent coarsening decision). Scheduler-wide counters (steals,
    /// workers, parks, idle) are published through process-global
    /// marks, so across any number of pools each increment is emitted
    /// exactly once.
    pub fn publish(&self, rec: &dyn Recorder) {
        if !rec.enabled() {
            return;
        }
        let s = &self.stats;
        let mut pairs: Vec<(&str, &AtomicU64, &AtomicU64)> = vec![
            ("par.maps", &s.maps, &s.pub_maps),
            ("par.maps_inline", &s.maps_inline, &s.pub_maps_inline),
            ("par.tasks", &s.tasks, &s.pub_tasks),
            (
                "par.tasks_coarsened",
                &s.tasks_coarsened,
                &s.pub_tasks_coarsened,
            ),
            ("par.local_pops", &s.local_pops, &s.pub_local_pops),
            ("par.tasks_stolen", &s.tasks_stolen, &s.pub_tasks_stolen),
            ("par.barrier_nanos", &s.barrier_nanos, &s.pub_barrier_nanos),
        ];
        for (i, name) in GRANULARITY_NAMES.iter().enumerate() {
            pairs.push((name, &s.granularity[i], &s.pub_granularity[i]));
        }
        let sched = &scheduler::Scheduler::get().stats;
        pairs.push((
            "par.steal_attempts",
            &sched.steal_attempts,
            &sched.pub_steal_attempts,
        ));
        pairs.push((
            "par.workers_spawned",
            &sched.workers_spawned,
            &sched.pub_workers_spawned,
        ));
        pairs.push(("par.parks", &sched.parks, &sched.pub_parks));
        pairs.push(("par.unparks", &sched.unparks, &sched.pub_unparks));
        pairs.push(("par.idle_nanos", &sched.idle_nanos, &sched.pub_idle_nanos));
        for (name, cur, mark) in pairs {
            publish_delta(rec, name, cur, mark);
        }
        let depth = s.queue_depth_hw.swap(0, Ordering::Relaxed);
        if depth > 0 {
            rec.gauge_set("par.queue_depth", depth as f64);
        }
        let chunk = s.chunk_size_last.load(Ordering::Relaxed);
        if chunk > 0 {
            rec.gauge_set("par.chunk_size", chunk as f64);
        }
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**. `f` receives the item index and a reference to the
    /// item.
    ///
    /// Execution order across workers is nondeterministic, but because
    /// each task depends only on its own input and results are placed
    /// by index, the returned vector is identical for any thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic on the calling thread after the
    /// whole session has drained.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), move |(), i, t| f(i, t))
    }

    /// Like [`Pool::map`], but each chunk of items first builds a
    /// scratch state with `init` and every call of `f` within the chunk
    /// reuses it — per-worker arenas without per-task allocation. The
    /// state must not influence results if determinism is required:
    /// chunk boundaries depend on the calibrated cost estimate.
    pub fn map_init<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        self.stats.maps.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let _map_span = prefall_trace::trace_span!(trace_names().map);
        self.stats.tasks.fetch_add(n as u64, Ordering::Relaxed);
        let est = self.stats.cost_est_ns.load(Ordering::Relaxed);
        let small = est > 0 && est.saturating_mul(n as u64) < SMALL_MAP_NS;
        if self.threads <= 1 || n <= 1 || small {
            self.stats.maps_inline.fetch_add(1, Ordering::Relaxed);
            return self.run_inline(items, &init, &f);
        }
        let (balance, over) = balance_and_oversubscription(self.threads);
        let max_chunk = if balance <= 1 {
            // One hardware context: splitting balances nothing, so the
            // cost target alone decides (and an uncalibrated map stays
            // whole).
            n
        } else {
            n.div_ceil(balance * OVERSUBSCRIBE).max(1)
        };
        let chunk = match over.saturating_mul(TARGET_CHUNK_NS).checked_div(est) {
            // Uncalibrated: one chunk per slot is the best guess.
            None => max_chunk,
            Some(per_chunk) => (per_chunk as usize).clamp(1, max_chunk),
        };
        self.stats
            .chunk_size_last
            .store(chunk as u64, Ordering::Relaxed);
        if chunk >= 2 {
            let full = n / chunk;
            let rem = n % chunk;
            let coarsened = (full * chunk + if rem >= 2 { rem } else { 0 }) as u64;
            self.stats
                .tasks_coarsened
                .fetch_add(coarsened, Ordering::Relaxed);
        }
        session::run_map(&self.stats, self.threads, items, chunk, &init, &f)
    }

    /// Serial execution on the caller, with the same spans, granularity
    /// accounting and cost calibration as the parallel path (here per
    /// item, since there are no chunks).
    fn run_inline<T, R, S, I, F>(&self, items: &[T], init: &I, f: &F) -> Vec<R>
    where
        I: Fn() -> S,
        F: Fn(&mut S, usize, &T) -> R,
    {
        scheduler::with_inherited_threads(self.threads, || {
            let mut state = init();
            let mut busy = 0u64;
            let out = items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let _task_span = prefall_trace::trace_span!(trace_names().task);
                    let started = Instant::now();
                    let r = f(&mut state, i, t);
                    let dur_ns = started.elapsed().as_nanos() as u64;
                    busy += dur_ns;
                    self.stats.note_task_duration(dur_ns);
                    r
                })
                .collect();
            self.stats
                .update_cost_estimate(busy / (items.len() as u64).max(1));
            out
        })
    }

    /// Maps every item and folds the results **in input-index order**.
    /// Because the fold is sequential over an index-ordered vector, the
    /// reduction is bit-identical to the serial loop whenever `fold`
    /// itself is deterministic — even for non-associative float math.
    pub fn reduce<T, R, F, G>(&self, items: &[T], map_fn: F, fold: G) -> Option<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(R, R) -> R,
    {
        self.map(items, map_fn).into_iter().reduce(fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_input_order() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..257).collect();
        let got = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3 + 1
        });
        let want: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37).collect();
        let serial: Vec<f32> = items.iter().map(|x| x.sin() * x).collect();
        for threads in [1, 2, 8] {
            let got = Pool::new(threads).map(&items, |_, x| x.sin() * x);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_init_builds_state_per_chunk_and_matches_serial() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..200).collect();
        let got = pool.map_init(
            &items,
            || Vec::<u8>::with_capacity(64),
            |scratch, i, &x| {
                scratch.clear();
                scratch.extend(std::iter::repeat_n(1u8, x % 7));
                i * 2 + scratch.len()
            },
        );
        let want: Vec<usize> = items.iter().map(|&x| x * 2 + x % 7).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn reduce_folds_in_index_order() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..10).collect();
        let got = pool
            .reduce(&items, |_, &x| x.to_string(), |a, b| a + "," + &b)
            .unwrap();
        assert_eq!(got, "0,1,2,3,4,5,6,7,8,9");
        assert!(pool
            .reduce(&[] as &[usize], |_, &x| x, |a, b| a + b)
            .is_none());
    }

    #[test]
    fn panic_propagates_with_original_payload() {
        let pool = Pool::new(2);
        let items: Vec<usize> = (0..16).collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                if x == 3 {
                    panic!("task 3 exploded");
                }
                x
            });
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task 3 exploded"), "payload lost: {msg:?}");

        // The scheduler survives a panicking session: the same pool can
        // immediately run another map to completion.
        let got = pool.map(&items, |_, &x| x + 1);
        assert_eq!(got[15], 16);
        assert_eq!(got.len(), 16);
    }

    #[test]
    fn nested_maps_fan_out_and_inherit_thread_budget() {
        let outer = Pool::new(4);
        let items: Vec<usize> = (0..4).collect();
        let got = outer.map(&items, |_, &x| {
            // Inside a task the enclosing budget is visible, so a
            // nested `from_env` pool (when the env var is unset) sizes
            // itself to the experiment setting instead of the machine.
            assert_eq!(crate::scheduler::inherited_threads(), Some(4));
            let inner = Pool::new(2);
            let inner_items: Vec<usize> = (0..64).collect();
            let inner_got = inner.map(&inner_items, |_, &y| y * 10 + x);
            assert_eq!(inner_items.len(), inner_got.len());
            inner_got.into_iter().sum::<usize>()
        });
        let want: Vec<usize> = items
            .iter()
            .map(|&x| (0..64).map(|y| y * 10 + x).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn stats_count_tasks_and_inline_maps() {
        let pool = Pool::new(1);
        let items = [1, 2, 3];
        let _ = pool.map(&items, |_, &x| x);
        let s = pool.stats();
        assert_eq!(s.maps, 1);
        assert_eq!(s.maps_inline, 1);
        assert_eq!(s.tasks, 3);
        assert_eq!(s.tasks_stolen, 0);
        assert_eq!(s.local_pops, 0, "inline items never touch a deque");
    }

    #[test]
    fn coarsening_batches_unknown_cost_then_inlines_known_tiny_maps() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        // First map: no cost estimate yet, so chunks are sized by the
        // machine-aware oversubscription cap — e.g. ceil(1000 / (4
        // threads * 4)) = 63 on a ≥4-core machine, the whole map on a
        // single-core one.
        let (balance, _) = balance_and_oversubscription(4);
        let want_chunk = if balance <= 1 {
            1000
        } else {
            1000usize.div_ceil(balance * OVERSUBSCRIBE) as u64
        };
        let _ = pool.map(&items, |_, &x| x + 1);
        let s = pool.stats();
        assert_eq!(s.maps_inline, 0);
        assert_eq!(s.chunk_size, want_chunk);
        assert!(
            s.tasks_coarsened >= 900,
            "nearly all items batched: {}",
            s.tasks_coarsened
        );
        assert_eq!(
            s.local_pops + s.tasks_stolen,
            1000,
            "every chunked item popped exactly once"
        );
        // Second map: the measured per-item cost is now known to be
        // tiny, so a small map runs inline instead of enqueueing.
        let small: Vec<usize> = (0..8).collect();
        let _ = pool.map(&small, |_, &x| x);
        let s2 = pool.stats();
        assert_eq!(s2.maps_inline, 1, "tiny known-cost map stays inline");
    }

    #[test]
    fn granularity_counts_chunks_not_items_for_parallel_maps() {
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..256).collect();
        let _ = pool.map(&items, |_, &x| x * 2);
        let s = pool.stats();
        let buckets: u64 = s.granularity.iter().sum();
        assert!(buckets >= 1);
        assert!(
            buckets < s.tasks,
            "coarsened map records per-chunk durations ({buckets} buckets for {} tasks)",
            s.tasks
        );
    }

    #[test]
    fn publish_emits_deltas_not_totals() {
        #[derive(Debug, Default)]
        struct CaptureRec(Mutex<Vec<(String, u64)>>);
        impl Recorder for CaptureRec {
            fn enabled(&self) -> bool {
                true
            }
            fn counter_add(&self, name: &str, value: u64) {
                self.0.lock().unwrap().push((name.to_owned(), value));
            }
            fn gauge_set(&self, _: &str, _: f64) {}
            fn observe(&self, _: &str, _: f64) {}
            fn event(&self, _: &str, _: &[(&str, prefall_telemetry::Value<'_>)]) {}
        }
        let pool = Pool::new(1);
        let rec = CaptureRec::default();
        let _ = pool.map(&[1, 2], |_, &x| x);
        pool.publish(&rec);
        let first: Vec<_> = rec.0.lock().unwrap().drain(..).collect();
        assert!(first.contains(&("par.tasks".to_owned(), 2)));
        let _ = pool.map(&[1], |_, &x| x);
        pool.publish(&rec);
        let second: Vec<_> = rec.0.lock().unwrap().drain(..).collect();
        assert!(second.contains(&("par.tasks".to_owned(), 1)), "{second:?}");
    }

    #[test]
    fn publish_emits_queue_depth_and_chunk_size_gauges() {
        #[derive(Debug, Default)]
        struct GaugeRec {
            counters: Mutex<Vec<(String, u64)>>,
            gauges: Mutex<Vec<(String, f64)>>,
        }
        impl Recorder for GaugeRec {
            fn enabled(&self) -> bool {
                true
            }
            fn counter_add(&self, name: &str, value: u64) {
                self.counters.lock().unwrap().push((name.to_owned(), value));
            }
            fn gauge_set(&self, name: &str, value: f64) {
                self.gauges.lock().unwrap().push((name.to_owned(), value));
            }
            fn observe(&self, _: &str, _: f64) {}
            fn event(&self, _: &str, _: &[(&str, prefall_telemetry::Value<'_>)]) {}
        }
        let pool = Pool::new(2);
        let rec = GaugeRec::default();
        let items: Vec<usize> = (0..64).collect();
        let _ = pool.map(&items, |_, &x| x + 1);
        pool.publish(&rec);
        let counters = rec.counters.lock().unwrap().clone();
        assert!(
            counters
                .iter()
                .any(|(n, _)| n.starts_with("par.tasks_le_") || n.starts_with("par.tasks_gt_")),
            "granularity buckets published: {counters:?}"
        );
        assert!(
            counters
                .iter()
                .any(|(n, v)| n == "par.local_pops" || (n == "par.tasks_stolen" && *v > 0)),
            "pop provenance published: {counters:?}"
        );
        let gauges = rec.gauges.lock().unwrap().clone();
        assert!(
            gauges
                .iter()
                .any(|(n, v)| n == "par.queue_depth" && *v > 0.0),
            "{gauges:?}"
        );
        assert!(
            gauges
                .iter()
                .any(|(n, v)| n == "par.chunk_size" && *v >= 1.0),
            "{gauges:?}"
        );
        // The depth gauge resets after publish: a quiet interval
        // re-arms it (chunk_size keeps reporting the last decision).
        rec.gauges.lock().unwrap().clear();
        pool.publish(&rec);
        let gauges = rec.gauges.lock().unwrap().clone();
        assert!(
            !gauges.iter().any(|(n, _)| n == "par.queue_depth"),
            "{gauges:?}"
        );
    }

    #[test]
    fn armed_map_traces_tasks_and_barrier() {
        let _t = prefall_trace::drain(); // isolate from other tests
        prefall_trace::arm(4096);
        let pool = Pool::new(4);
        let items: Vec<usize> = (0..16).collect();
        let _ = pool.map(&items, |_, &x| x * x);
        prefall_trace::disarm();
        let tl = prefall_trace::drain();
        let attr = tl.attribution();
        // Other tests in this binary may run maps during the armed
        // window, so assert lower bounds contributed by this map.
        assert!(attr.total("par.map").count >= 1);
        assert!(attr.total("par.task").count >= 1);
        assert!(attr.total("par.barrier").count >= 1);
    }

    #[test]
    fn env_override_controls_from_env() {
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Pool::from_env().threads(), 3);
        assert_eq!(Pool::with_override(Some(7)).threads(), 7);
        assert_eq!(Pool::with_override(None).threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(Pool::from_env().threads() >= 1);
        std::env::set_var(THREADS_ENV, "0");
        assert!(Pool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(Pool::from_env().threads() >= 1);
    }
}
