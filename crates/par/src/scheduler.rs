//! The process-wide persistent scheduler: long-lived workers, one
//! chunked deque per worker, and a generation-counted park lot.
//!
//! Workers are spawned lazily (up to [`crate::MAX_WORKERS`]) the first
//! time a pool needs them and then live for the rest of the process,
//! parked on a condvar when there is nothing to run. Each worker owns a
//! deque of [`JobRef`]s: the owner pops **LIFO** from the back (hot
//! cache, nested sessions drain depth-first), thieves — other workers
//! and helping callers — steal **FIFO** from the front (oldest, largest
//! remaining work first). There is no pool affinity: a pool only decides
//! how many deques it seeds; any idle thread may steal any job, which is
//! what keeps the machine busy across nested sessions. Determinism does
//! not care who runs a chunk, because results land in indexed slots
//! (see [`crate::session`]).
//!
//! The park lot is a mutex-guarded generation counter plus a condvar.
//! [`Scheduler::notify`] bumps the generation under the lock;
//! [`Scheduler::park`] re-checks the generation after acquiring the
//! lock and before waiting, so a wakeup between "queue looked empty"
//! and "went to sleep" is never lost. Parks are additionally
//! timeout-bounded, so even an impossible lost wakeup only costs one
//! timeout, never liveness.

use crate::session::JobRef;
use crate::{PoolStats, MAX_WORKERS};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between queue sweeps.
const WORKER_PARK: Duration = Duration::from_millis(10);

/// How long a caller waiting on its session latch sleeps between
/// sweeps. Short, because the caller returns the map's results.
pub(crate) const CALLER_PARK: Duration = Duration::from_micros(500);

thread_local! {
    /// This thread's deque index, or `usize::MAX` on non-worker threads.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Thread budget of the innermost enclosing map task (0 = none).
    /// `Pool::from_env` reads this so nested pools created inside a
    /// task inherit the experiment's thread count instead of the
    /// machine's — including inheriting *serial* when the outer pool
    /// is pinned to one thread.
    static INHERITED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Thread budget inherited from an enclosing map task, if any.
pub(crate) fn inherited_threads() -> Option<usize> {
    let t = INHERITED_THREADS.with(Cell::get);
    (t != 0).then_some(t)
}

/// The calling thread's scheduler worker index, or `None` on threads
/// that are not scheduler workers (the process main thread, test
/// threads, callers helping from inside `Pool::map`). Map callbacks can
/// use this to key per-thread scratch state — e.g. always borrowing the
/// same replica network from a pool of replicas — so a thread touches
/// one replica's memory instead of cycling through all of them.
pub fn worker_index() -> Option<usize> {
    let i = WORKER_INDEX.with(Cell::get);
    (i != usize::MAX).then_some(i)
}

/// Runs `f` with the inherited thread budget set to `threads`,
/// restoring the previous value afterwards (panic-safe).
pub(crate) fn with_inherited_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INHERITED_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = INHERITED_THREADS.with(|c| c.replace(threads));
    let _restore = Restore(prev);
    f()
}

/// Scheduler-global counters. These belong to the process, not to any
/// one [`crate::Pool`]; publish marks live here too so that however
/// many pools publish, each global delta is emitted exactly once.
#[derive(Debug, Default)]
pub(crate) struct SchedStats {
    pub(crate) steal_attempts: AtomicU64,
    pub(crate) workers_spawned: AtomicU64,
    pub(crate) parks: AtomicU64,
    pub(crate) unparks: AtomicU64,
    pub(crate) idle_nanos: AtomicU64,
    pub(crate) pub_steal_attempts: AtomicU64,
    pub(crate) pub_workers_spawned: AtomicU64,
    pub(crate) pub_parks: AtomicU64,
    pub(crate) pub_unparks: AtomicU64,
    pub(crate) pub_idle_nanos: AtomicU64,
}

pub(crate) struct Scheduler {
    /// One deque per worker slot; slots beyond `spawned` are never
    /// seeded. Owner pops back, thieves pop front.
    deques: [Mutex<VecDeque<JobRef>>; MAX_WORKERS],
    /// Worker threads spawned so far; only grows.
    spawned: AtomicUsize,
    spawn_lock: Mutex<()>,
    /// Park-lot generation; bumped on every notify.
    lot: Mutex<u64>,
    cond: Condvar,
    pub(crate) stats: SchedStats,
}

impl Scheduler {
    pub(crate) fn get() -> &'static Scheduler {
        static SCHED: OnceLock<Scheduler> = OnceLock::new();
        SCHED.get_or_init(|| Scheduler {
            deques: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            spawned: AtomicUsize::new(0),
            spawn_lock: Mutex::new(()),
            lot: Mutex::new(0),
            cond: Condvar::new(),
            stats: SchedStats::default(),
        })
    }

    /// Current park-lot generation. Read *before* the final empty sweep
    /// so that any notify racing with the sweep invalidates the
    /// subsequent [`Scheduler::park`] call.
    pub(crate) fn generation(&self) -> u64 {
        *self.lot.lock().expect("park lot poisoned")
    }

    /// Wakes every parked thread (a session latch hit zero and its
    /// caller may be parked — the caller *must* wake, and `notify_one`
    /// could hand the wakeup to a worker instead).
    pub(crate) fn notify(&self) {
        let mut gen = self.lot.lock().expect("park lot poisoned");
        *gen = gen.wrapping_add(1);
        self.cond.notify_all();
    }

    /// Wakes at most `jobs` parked threads for freshly pushed work.
    /// Waking fewer threads than `notify_all` would is safe: every job
    /// is eventually run by whoever holds it, by any woken thief, or by
    /// the pushing caller itself (its latch wait loop sweeps the
    /// deques), and parked workers re-sweep on a bounded timeout. On an
    /// oversubscribed machine this avoids waking workers that would
    /// only contend for the CPU, find the queues drained, and park
    /// again.
    pub(crate) fn notify_jobs(&self, jobs: usize) {
        let mut gen = self.lot.lock().expect("park lot poisoned");
        *gen = gen.wrapping_add(1);
        if jobs >= self.spawned.load(Ordering::Relaxed) {
            self.cond.notify_all();
        } else {
            for _ in 0..jobs {
                self.cond.notify_one();
            }
        }
    }

    /// Sleeps until notified past generation `seen` or until `timeout`,
    /// whichever comes first; returns the time actually slept.
    pub(crate) fn park(&self, seen: u64, timeout: Duration) -> Duration {
        let started = Instant::now();
        self.stats.parks.fetch_add(1, Ordering::Relaxed);
        if prefall_trace::armed() {
            prefall_trace::instant(crate::trace_names().park);
        }
        let guard = self.lot.lock().expect("park lot poisoned");
        if *guard == seen {
            let (guard, _timed_out) = self
                .cond
                .wait_timeout(guard, timeout)
                .expect("park lot poisoned");
            let notified = *guard != seen;
            drop(guard);
            if notified {
                self.stats.unparks.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            drop(guard);
            self.stats.unparks.fetch_add(1, Ordering::Relaxed);
        }
        if prefall_trace::armed() {
            prefall_trace::instant(crate::trace_names().unpark);
        }
        started.elapsed()
    }

    /// Spawns workers until at least `want` exist (bounded by
    /// [`MAX_WORKERS`]). Idempotent and cheap once satisfied.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_WORKERS);
        if self.spawned.load(Ordering::Acquire) >= want {
            return;
        }
        let _guard = self.spawn_lock.lock().expect("spawn lock poisoned");
        let have = self.spawned.load(Ordering::Acquire);
        for index in have..want {
            std::thread::Builder::new()
                .name(format!("prefall-par-{index}"))
                .spawn(move || self.worker_loop(index))
                .expect("failed to spawn scheduler worker");
            self.stats.workers_spawned.fetch_add(1, Ordering::Relaxed);
        }
        if want > have {
            self.spawned.store(want, Ordering::Release);
        }
    }

    /// Seeds `jobs` for a session with thread budget `threads`. A
    /// worker keeps its whole session on its own deque (LIFO pop runs
    /// it depth-first, thieves relieve it from the front); an external
    /// caller deals round-robin across the first `threads - 1` deques.
    pub(crate) fn push_jobs(
        &'static self,
        jobs: impl Iterator<Item = JobRef>,
        threads: usize,
        stats: &PoolStats,
    ) {
        let want = threads.saturating_sub(1).clamp(1, MAX_WORKERS);
        self.ensure_workers(want);
        let me = WORKER_INDEX.with(Cell::get);
        let mut max_depth = 0u64;
        let mut pushed = 0usize;
        if me != usize::MAX {
            let mut deque = self.deques[me].lock().expect("deque poisoned");
            for job in jobs {
                deque.push_back(job);
                pushed += 1;
            }
            max_depth = deque.len() as u64;
        } else {
            let lanes = want.min(self.spawned.load(Ordering::Acquire)).max(1);
            let mut lane = 0usize;
            for job in jobs {
                let mut deque = self.deques[lane].lock().expect("deque poisoned");
                deque.push_back(job);
                max_depth = max_depth.max(deque.len() as u64);
                drop(deque);
                lane = (lane + 1) % lanes;
                pushed += 1;
            }
        }
        stats.note_queue_depth(max_depth);
        // On an oversubscribed machine (thread budget > hardware
        // contexts) an eager wakeup cannot add parallelism — a woken
        // worker only preempts the pushing thread, which will run the
        // jobs itself while waiting on its latch. Workers still pick up
        // queued chunks on their bounded park timeout, so long maps get
        // relieved and nothing is ever stranded.
        let (_, over) = crate::balance_and_oversubscription(threads.max(1));
        if over <= 1 {
            self.notify_jobs(pushed);
        }
    }

    /// Pops one runnable job: the current thread's own deque first
    /// (back — LIFO), then a FIFO steal sweep over the other deques.
    /// The returned flag says the job crossed deques; the session
    /// refines that into local-vs-stolen using the caller's identity.
    pub(crate) fn find_job(&self) -> Option<(JobRef, bool)> {
        let n = self.spawned.load(Ordering::Acquire);
        let me = WORKER_INDEX.with(Cell::get);
        if me < n {
            if let Some(job) = self.deques[me].lock().expect("deque poisoned").pop_back() {
                return Some((job, false));
            }
        }
        if n == 0 {
            return None;
        }
        self.stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
        let start = if me < n { (me + 1) % n } else { 0 };
        for k in 0..n {
            let idx = (start + k) % n;
            if idx == me {
                continue;
            }
            if let Some(job) = self.deques[idx].lock().expect("deque poisoned").pop_front() {
                return Some((job, true));
            }
        }
        if prefall_trace::armed() {
            prefall_trace::instant(crate::trace_names().steal_fail);
        }
        None
    }

    /// Body of a persistent worker: drain everything reachable, then
    /// park. One `par.worker` span covers each busy episode
    /// (unpark-to-park), so profile attribution sees worker wall time
    /// only while the worker actually holds work.
    fn worker_loop(&'static self, index: usize) {
        WORKER_INDEX.with(|c| c.set(index));
        loop {
            let gen = self.generation();
            if let Some((job, stolen)) = self.find_job() {
                let tracing = prefall_trace::armed();
                if tracing {
                    prefall_trace::begin(crate::trace_names().worker);
                }
                job.execute(stolen);
                while let Some((job, stolen)) = self.find_job() {
                    job.execute(stolen);
                }
                if tracing {
                    prefall_trace::end(crate::trace_names().worker);
                }
            } else {
                let slept = self.park(gen, WORKER_PARK);
                self.stats
                    .idle_nanos
                    .fetch_add(slept.as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }
}
