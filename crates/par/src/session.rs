//! Lifetime-erased map sessions — the one module allowed to use
//! `unsafe`.
//!
//! A [`crate::Pool::map`] call chunks its items into [`ChunkJob`]s that
//! live on the **caller's stack frame** and hands the scheduler raw
//! [`JobRef`] pointers to them (the rayon idiom: jobs are cheap because
//! they are never boxed). The erasure is sound because of one protocol,
//! upheld by [`run_map`] and enforced by the completion latch:
//!
//! * every `JobRef` pushed to a deque is popped and executed exactly
//!   once (executors never drop a popped job on the floor — a halted
//!   session still *runs* its remaining chunks, they just skip the
//!   user closure), and
//! * `run_map` does not return — and therefore the stack frame holding
//!   the jobs, the slots and the latch does not die — until the latch
//!   has counted every chunk down, and
//! * a chunk's final latch decrement is its **last** touch of session
//!   memory; after that the executing thread only notifies the global
//!   (static) park lot.
//!
//! Everything else (deques, parking, stats) is safe code in
//! [`crate::scheduler`].

#![allow(unsafe_code)]

use crate::scheduler::{self, Scheduler};
use crate::PoolStats;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// A type-erased pointer to a [`Job`] living on some caller's stack.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const (), bool),
}

// SAFETY: a JobRef is only ever created by `run_map`, which keeps the
// pointee alive and un-moved until the session latch confirms the job
// ran. The job's `execute` synchronises its effects through atomics and
// mutexes, so sending the raw pointer between threads is sound.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erases `job`. Caller must keep `*job` alive and in place until
    /// the job has executed.
    unsafe fn new<J: Job>(job: *const J) -> JobRef {
        JobRef {
            data: job as *const (),
            exec: J::execute,
        }
    }

    /// Runs the job. `stolen` records whether the popper took it from a
    /// deque it does not own.
    pub(crate) fn execute(self, stolen: bool) {
        // SAFETY: see `JobRef::new` — the session protocol guarantees
        // the pointee is alive and executed exactly once.
        unsafe { (self.exec)(self.data, stolen) }
    }
}

/// A stack job: `execute` reconstitutes the concrete type.
trait Job {
    /// # Safety
    ///
    /// `this` must be the pointer a [`JobRef::new`] erased, still alive.
    unsafe fn execute(this: *const (), stolen: bool);
}

/// State shared by every chunk of one map session. Lives on the
/// caller's stack for the duration of [`run_map`].
struct Shared<'a, T, R, S, I, F> {
    items: &'a [T],
    init: &'a I,
    f: &'a F,
    slots: &'a [Mutex<Option<R>>],
    /// Chunks not yet finished; the session is over at zero.
    latch: AtomicUsize,
    halt: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Total nanoseconds spent inside chunk bodies (feeds the cost
    /// estimator and the caller's barrier accounting).
    busy_ns: AtomicU64,
    stats: &'a PoolStats,
    /// The owning pool's thread budget, inherited by nested pools.
    threads: usize,
    caller: ThreadId,
    _state: std::marker::PhantomData<fn() -> S>,
}

/// One contiguous slice of the map, executed as a single task.
struct ChunkJob<'a, T, R, S, I, F> {
    shared: &'a Shared<'a, T, R, S, I, F>,
    start: usize,
    end: usize,
}

impl<T, R, S, I, F> ChunkJob<'_, T, R, S, I, F>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    fn run(&self, stolen: bool) {
        let sh = self.shared;
        let len = (self.end - self.start) as u64;
        // A pop by the session's own caller is a local reclaim even
        // when it came off another worker's deque.
        let stolen = stolen && std::thread::current().id() != sh.caller;
        if stolen {
            sh.stats.tasks_stolen.fetch_add(len, Ordering::Relaxed);
        } else {
            sh.stats.local_pops.fetch_add(len, Ordering::Relaxed);
        }
        if !sh.halt.load(Ordering::Relaxed) {
            let _task_span = prefall_trace::trace_span!(crate::trace_names().task);
            let started = Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| {
                scheduler::with_inherited_threads(sh.threads, || {
                    let mut state = (sh.init)();
                    for i in self.start..self.end {
                        if sh.halt.load(Ordering::Relaxed) {
                            break;
                        }
                        let r = (sh.f)(&mut state, i, &sh.items[i]);
                        *sh.slots[i].lock().expect("result slot poisoned") = Some(r);
                    }
                })
            }));
            let dur_ns = started.elapsed().as_nanos() as u64;
            sh.stats.note_task_duration(dur_ns);
            sh.busy_ns.fetch_add(dur_ns, Ordering::Relaxed);
            if let Err(payload) = out {
                let mut slot = sh.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
                sh.halt.store(true, Ordering::Relaxed);
            }
        }
        // The final touch of session memory: once the latch hits zero
        // the caller's frame may unwind, so only the (static) park lot
        // is touched afterwards.
        if sh.latch.fetch_sub(1, Ordering::Release) == 1 {
            Scheduler::get().notify();
        }
    }
}

impl<T, R, S, I, F> Job for ChunkJob<'_, T, R, S, I, F>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    unsafe fn execute(this: *const (), stolen: bool) {
        // SAFETY: `this` was erased from a live `ChunkJob` of exactly
        // this monomorphisation by `run_map`.
        let job = &*(this as *const Self);
        job.run(stolen);
    }
}

/// Runs `f` over `items` in chunks of `chunk` on the global scheduler,
/// returning results in input order. The calling thread seeds the
/// participating deques, then helps execute until the latch clears —
/// parking (briefly, generation-checked) only when no work is
/// runnable anywhere.
pub(crate) fn run_map<T, R, S, I, F>(
    stats: &PoolStats,
    threads: usize,
    items: &[T],
    chunk: usize,
    init: &I,
    f: &F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let sched = Scheduler::get();
    let n = items.len();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let n_chunks = n.div_ceil(chunk);
    let shared = Shared {
        items,
        init,
        f,
        slots: &slots,
        latch: AtomicUsize::new(n_chunks),
        halt: AtomicBool::new(false),
        panic: Mutex::new(None),
        busy_ns: AtomicU64::new(0),
        stats,
        threads,
        caller: std::thread::current().id(),
        _state: std::marker::PhantomData,
    };
    let mut jobs: Vec<ChunkJob<'_, T, R, S, I, F>> = Vec::with_capacity(n_chunks);
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        jobs.push(ChunkJob {
            shared: &shared,
            start,
            end,
        });
        start = end;
    }
    debug_assert_eq!(jobs.len(), n_chunks);

    // Seed the deques. A worker keeps its own chunks (LIFO pop runs
    // them soonest, thieves take the oldest); an external caller deals
    // them round-robin across the participating workers.
    {
        let refs = jobs
            .iter()
            // SAFETY: `jobs` and `shared` outlive the session — this
            // function only returns after the latch confirms every
            // chunk executed.
            .map(|job| unsafe { JobRef::new(job as *const _) });
        sched.push_jobs(refs, threads, stats);
    }

    // Help until every chunk is done. Executing foreign work while
    // waiting is fine — it keeps the machine busy and cannot delay the
    // latch more than parking would.
    let barrier_armed = prefall_trace::armed();
    if barrier_armed {
        prefall_trace::begin(crate::trace_names().barrier);
    }
    let wait_started = Instant::now();
    let mut helped_ns = 0u64;
    while shared.latch.load(Ordering::Acquire) != 0 {
        if let Some((job, stolen)) = sched.find_job() {
            let t0 = Instant::now();
            job.execute(stolen);
            helped_ns += t0.elapsed().as_nanos() as u64;
            continue;
        }
        let gen = sched.generation();
        if shared.latch.load(Ordering::Acquire) == 0 {
            break;
        }
        sched.park(gen, scheduler::CALLER_PARK);
    }
    if barrier_armed {
        prefall_trace::end(crate::trace_names().barrier);
    }
    stats.barrier_nanos.fetch_add(
        (wait_started.elapsed().as_nanos() as u64).saturating_sub(helped_ns),
        Ordering::Relaxed,
    );

    let measured = shared.busy_ns.load(Ordering::Relaxed);
    stats.update_cost_estimate(measured / (n as u64).max(1));

    if let Some(payload) = shared.panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every task must have produced a result")
        })
        .collect()
}
