//! Property tests for the work-stealing scheduler: whatever the item
//! count, thread budget, chunking decision or steal interleaving, a map
//! session never loses a task, never runs one twice, and always returns
//! results in input order.

use prefall_par::Pool;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every item is executed exactly once (no lost tasks, no
    /// duplicates) and its result lands in its own slot, for any item
    /// count and thread budget.
    #[test]
    fn push_pop_steal_runs_every_task_exactly_once(
        n in 0usize..700,
        threads in 1usize..9,
    ) {
        let pool = Pool::new(threads);
        let items: Vec<usize> = (0..n).collect();
        let runs: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let got = pool.map(&items, |i, &x| {
            runs[i].fetch_add(1, Ordering::Relaxed);
            x * 7 + 3
        });
        prop_assert_eq!(got.len(), n);
        for (i, r) in got.iter().enumerate() {
            prop_assert_eq!(*r, i * 7 + 3);
            prop_assert_eq!(runs[i].load(Ordering::Relaxed), 1);
        }
    }

    /// Nested sessions keep the exactly-once guarantee: inner maps
    /// enqueue onto the same deques as the outer map's chunks, and
    /// every inner item still runs once, in order.
    #[test]
    fn nested_sessions_never_lose_or_duplicate(
        outer_n in 1usize..12,
        inner_n in 0usize..80,
        threads in 1usize..9,
    ) {
        let pool = Pool::new(threads);
        let items: Vec<usize> = (0..outer_n).collect();
        let runs: Vec<AtomicU64> = (0..outer_n * inner_n).map(|_| AtomicU64::new(0)).collect();
        let got = pool.map(&items, |_, &x| {
            let inner = Pool::from_env();
            let inner_items: Vec<usize> = (0..inner_n).collect();
            let inner_got = inner.map(&inner_items, |_, &y| {
                runs[x * inner_n + y].fetch_add(1, Ordering::Relaxed);
                x * 1000 + y
            });
            inner_got.iter().sum::<usize>()
        });
        for (x, sum) in got.iter().enumerate() {
            let want: usize = (0..inner_n).map(|y| x * 1000 + y).sum();
            prop_assert_eq!(*sum, want);
        }
        for r in &runs {
            prop_assert_eq!(r.load(Ordering::Relaxed), 1);
        }
    }

    /// Several threads driving independent sessions through the shared
    /// scheduler at once stay isolated: each session gets exactly its
    /// own results back.
    #[test]
    fn concurrent_sessions_stay_isolated(
        n in 1usize..200,
        drivers in 1usize..5,
        threads in 2usize..6,
    ) {
        let results: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..drivers)
                .map(|d| {
                    s.spawn(move || {
                        let pool = Pool::new(threads);
                        let items: Vec<usize> = (0..n).collect();
                        pool.map(&items, move |_, &x| x * drivers + d)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (d, got) in results.iter().enumerate() {
            prop_assert_eq!(got.len(), n);
            for (i, r) in got.iter().enumerate() {
                prop_assert_eq!(*r, i * drivers + d);
            }
        }
    }

    /// A panic at an arbitrary item halts the session, propagates, and
    /// leaves the scheduler fully usable for the next map.
    #[test]
    fn panic_at_any_index_keeps_scheduler_usable(
        n in 1usize..120,
        bad in 0usize..120,
        threads in 1usize..6,
    ) {
        prop_assume!(bad < n);
        let pool = Pool::new(threads);
        let items: Vec<usize> = (0..n).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(&items, |_, &x| {
                if x == bad {
                    panic!("boom at {x}");
                }
                x
            });
        }));
        prop_assert!(err.is_err());
        let got = pool.map(&items, |_, &x| x + 1);
        prop_assert_eq!(got.len(), n);
        for (i, r) in got.iter().enumerate() {
            prop_assert_eq!(*r, i + 1);
        }
    }
}
