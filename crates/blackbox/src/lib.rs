//! Flight recorder, trigger forensics and deterministic incident
//! replay for the streaming pre-impact fall detector.
//!
//! A pre-impact airbag gets one chance per fall, and the interesting
//! question after every deployment — and every missed fall — is *why*.
//! This crate is the black box that answers it:
//!
//! * [`recorder`] — [`FlightRecorder`] installs as a
//!   [`DetectorTap`](prefall_core::tap::DetectorTap) on the
//!   [`StreamingDetector`](prefall_core::detector::StreamingDetector)
//!   and continuously captures the last ~30 s of raw samples, guard
//!   state, window scores and per-branch attribution into
//!   pre-allocated [`ring`] buffers — zero heap allocations per sample
//!   after warm-up.
//! * [`dump`] — on a trigger, a missed fall, a `/healthz` degradation
//!   or an operator request, the rings freeze into an
//!   [`IncidentDump`]: a self-contained, versioned binary record
//!   embedding the full model bundle, the detector configuration,
//!   FNV-1a config/model hashes (verified on load) and the complete
//!   decision trace.
//! * [`replay`](crate::replay()) — rebuilds the detector from the dump
//!   and re-runs the incident, asserting the score trajectory matches
//!   **bit for bit** ([`f32::to_bits`], no epsilon).
//! * [`store`] — [`FlightHandle`] implements
//!   [`prefall_obsd::IncidentSource`], serving `/incidents` and
//!   `/incidents/{id}` from the live obsd server.
//!
//! ```no_run
//! use prefall_blackbox::{armed_detector_from_bundle, replay, FlightConfig};
//! use prefall_core::detector::GuardConfig;
//!
//! # let bundle_bytes: Vec<u8> = vec![];
//! let (mut detector, flight) = armed_detector_from_bundle(
//!     &bundle_bytes, 0.5, 1, GuardConfig::default(), FlightConfig::default())?;
//! // ... stream trials through `detector` ...
//! if let Some(incident) = flight.latest() {
//!     let report = replay(&incident)?;
//!     assert!(report.bit_exact);
//! }
//! # Ok::<(), prefall_blackbox::BlackboxError>(())
//! ```

#![deny(missing_docs)]

pub mod dump;
pub mod recorder;
pub mod replay;
pub mod ring;
pub mod store;

pub use dump::{IncidentDump, IncidentKind, SampleRecord, TrialMeta, WindowRecord};
pub use recorder::{armed_detector_from_bundle, FlightConfig, FlightHandle, FlightRecorder};
pub use replay::{replay, Divergence, ReplayReport};

/// Errors produced while encoding, decoding or replaying incidents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlackboxError {
    /// Malformed, truncated or hash-mismatched dump bytes.
    Format(String),
    /// The dump's sample ring wrapped (or recording started
    /// mid-stream): filter state at the first retained sample is
    /// unknown, so bit-exact replay is impossible.
    Truncated,
    /// The embedded model bundle or recorded configuration could not
    /// be turned back into a runnable detector.
    Replay(String),
}

impl std::fmt::Display for BlackboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlackboxError::Format(m) => write!(f, "malformed incident dump: {m}"),
            BlackboxError::Truncated => {
                write!(
                    f,
                    "dump is truncated (ring wrapped); cannot replay bit-exactly"
                )
            }
            BlackboxError::Replay(m) => write!(f, "replay setup failed: {m}"),
        }
    }
}

impl std::error::Error for BlackboxError {}
