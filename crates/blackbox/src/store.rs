//! Wires the flight recorder into the obsd server.
//!
//! [`FlightHandle`] implements [`prefall_obsd::IncidentSource`], so
//! passing a clone to
//! [`MetricsServer::start_with_incidents`](prefall_obsd::server::MetricsServer)
//! exposes:
//!
//! * `GET /incidents` — summary listing of every held incident,
//! * `GET /incidents/{id}` — full forensics document (decision trace,
//!   guard counters, hashes) plus the complete binary dump as
//!   `dump_hex`, ready for [`crate::dump::IncidentDump::from_hex`] and
//!   [`crate::replay`] on an analyst's machine.
//!
//! The server also feeds every `/healthz` verdict back through
//! [`IncidentSource::on_health_status`]; a rising edge into degraded
//! takes a `health_degraded` dump automatically, so the flight
//! recorder captures what the detector was doing when the deployment
//! went unhealthy.

use crate::recorder::FlightHandle;
use prefall_obsd::IncidentSource;
use prefall_telemetry::JsonValue;

impl IncidentSource for FlightHandle {
    fn list_json(&self) -> JsonValue {
        let incidents: Vec<JsonValue> = self.incidents().iter().map(|d| d.summary_json()).collect();
        JsonValue::Obj(vec![
            ("count".to_string(), JsonValue::U64(incidents.len() as u64)),
            ("incidents".to_string(), JsonValue::Arr(incidents)),
        ])
    }

    fn get_json(&self, id: &str) -> Option<JsonValue> {
        self.incident(id).map(|d| d.to_json(true))
    }

    fn on_health_status(&self, degraded: bool, report: &JsonValue) {
        let status = report
            .get("status")
            .and_then(|v| v.as_str())
            .unwrap_or("degraded");
        self.record_health(degraded, &format!("healthz reported {status}"));
    }
}

/// A quality-SLO breach (`prefall-watch` burn-rate alerting) asks the
/// flight recorder for a forensic dump, so the sample/guard/score
/// rings covering the breach window are preserved alongside the alert.
impl prefall_watch::IncidentCapture for FlightHandle {
    fn capture_incident(&self, reason: &str) -> Option<String> {
        let dump = self.dump_now(&format!("slo breach: {reason}"));
        Some(dump.id)
    }
}
