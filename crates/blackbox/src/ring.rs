//! A fixed-capacity overwrite-oldest ring buffer.
//!
//! Allocation happens exactly once, at construction: [`Ring::push`]
//! overwrites in place and never grows, which is what lets the flight
//! recorder promise zero heap allocations per sample on the ingest
//! path after warm-up.

/// Fixed-capacity ring buffer over `Copy` records.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Next write position.
    head: usize,
    len: usize,
    /// Records pushed since the last [`Ring::clear`] (≥ `len` once the
    /// ring wraps).
    total: u64,
}

impl<T: Copy + Default> Ring<T> {
    /// A ring holding at most `cap` records (`cap` ≥ 1 enforced).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            buf: vec![T::default(); cap],
            cap,
            head: 0,
            len: 0,
            total: 0,
        }
    }

    /// Appends a record, overwriting the oldest when full. Never
    /// allocates.
    pub fn push(&mut self, v: T) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
        self.total += 1;
    }

    /// Forgets all records (capacity is retained).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.total = 0;
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records pushed since the last clear.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether any record has been overwritten since the last clear.
    pub fn wrapped(&self) -> bool {
        self.total > self.len as u64
    }

    /// Iterates the held records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let start = (self.head + self.cap - self.len) % self.cap;
        (0..self.len).map(move |i| &self.buf[(start + i) % self.cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_wrap_and_order() {
        let mut r: Ring<u32> = Ring::new(3);
        assert!(r.is_empty() && !r.wrapped());
        for v in 1..=2 {
            r.push(v);
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        for v in 3..=5 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert!(r.wrapped());
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5]);
        r.clear();
        assert!(r.is_empty() && !r.wrapped());
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r: Ring<u8> = Ring::new(0);
        r.push(7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7]);
    }
}
