//! Deterministic incident replay.
//!
//! [`replay`] rebuilds a [`StreamingDetector`] from the model bundle
//! embedded in an [`IncidentDump`] and re-feeds the recorded raw input
//! stream through it, sample by sample, exactly as the original
//! ingest saw it (missing ticks included). The whole stack is
//! deterministic f32 arithmetic — same inputs, same code path, same
//! IEEE-754 operations in the same order — so the replayed score
//! trajectory must match the recorded one *bit for bit*. Any
//! divergence is evidence of a real problem (a changed model, a
//! changed pipeline, or a corrupted dump), which is why the comparison
//! uses [`f32::to_bits`] rather than an epsilon.
//!
//! Dumps whose sample ring wrapped (or that started recording
//! mid-stream) are refused: the IIR filter and fusion state at the
//! first retained sample depends on samples the ring no longer holds,
//! so bit-exactness is unprovable. Such dumps still carry the full
//! decision trace for forensics — they just cannot be re-run.

use crate::dump::IncidentDump;
use crate::BlackboxError;
use prefall_core::detector::{DetectorConfig, StreamingDetector};
use prefall_core::persist::DetectorBundle;

/// First point where a replayed score differed from the recorded one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Index into [`IncidentDump::windows`].
    pub window: usize,
    /// The score the flight recorder captured.
    pub recorded: f32,
    /// The score the replay produced.
    pub replayed: f32,
}

/// Result of a deterministic replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Ingest events re-fed (delivered and missing).
    pub samples_fed: usize,
    /// Window scores compared against the recording.
    pub windows_compared: usize,
    /// Every replayed score matched the recorded one bit for bit, and
    /// the two runs emitted the same number of windows.
    pub bit_exact: bool,
    /// The first mismatch, when not bit-exact.
    pub divergence: Option<Divergence>,
    /// The replayed arming/decision flags matched the recording on
    /// every window.
    pub trigger_match: bool,
    /// The replayed score trajectory, for side-by-side inspection.
    pub scores: Vec<f32>,
}

/// Rebuilds the detector recorded in `dump` and re-runs the incident.
///
/// # Errors
///
/// * [`BlackboxError::Truncated`] — the dump does not reach back to
///   the stream start, so filter state cannot be reconstructed.
/// * [`BlackboxError::Replay`] — the embedded model bundle fails to
///   parse or the detector rejects the recorded configuration.
pub fn replay(dump: &IncidentDump) -> Result<ReplayReport, BlackboxError> {
    if dump.truncated {
        return Err(BlackboxError::Truncated);
    }
    let bundle = DetectorBundle::from_bytes(&dump.model_blob)
        .map_err(|e| BlackboxError::Replay(format!("embedded bundle: {e}")))?;
    let config = DetectorConfig {
        pipeline: bundle.pipeline,
        threshold: dump.threshold,
        consecutive: dump.consecutive as usize,
        guard: dump.guard_config,
    };
    let mut detector = StreamingDetector::new(bundle.network, bundle.normalizer, config)
        .map_err(|e| BlackboxError::Replay(format!("recorded config rejected: {e}")))?;
    // A fresh detector is exactly the post-`reset()` state the
    // recording started from (the recorder refuses unsynced dumps
    // above), so no state restoration is needed — just re-feed.
    let mut scores = Vec::with_capacity(dump.windows.len());
    let mut divergence = None;
    let mut trigger_match = true;
    for s in &dump.samples {
        let emitted = if s.missing() {
            detector.push_missing()
        } else {
            detector.push_sample(s.accel, s.gyro)
        };
        let Some(p) = emitted else {
            continue;
        };
        let idx = scores.len();
        scores.push(p);
        if let Some(w) = dump.windows.get(idx) {
            if divergence.is_none() && p.to_bits() != w.score.to_bits() {
                divergence = Some(Divergence {
                    window: idx,
                    recorded: w.score,
                    replayed: p,
                });
            }
            if detector.trigger_armed() != w.armed() || detector.trigger_decision() != w.decision()
            {
                trigger_match = false;
            }
        }
    }
    let bit_exact = divergence.is_none() && scores.len() == dump.windows.len();
    Ok(ReplayReport {
        samples_fed: dump.samples.len(),
        windows_compared: scores.len().min(dump.windows.len()),
        bit_exact,
        divergence,
        trigger_match: trigger_match && bit_exact,
        scores,
    })
}
