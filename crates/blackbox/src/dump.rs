//! The self-contained, versioned incident record.
//!
//! An [`IncidentDump`] freezes everything needed to explain — and
//! bit-exactly re-run — one airbag decision: the raw pre-guard input
//! stream (delivered samples and missing grid ticks, in arrival
//! order), every classified window with its score, arming state,
//! policy decision and per-branch attribution, the guard counters, the
//! detector configuration, and the full trained model as an embedded
//! [`DetectorBundle`] blob. FNV-1a hashes of the configuration and the
//! model blob are stored alongside and re-verified on load, so a dump
//! that drifted from the code that produced it is rejected instead of
//! silently replayed against the wrong model.
//!
//! Binary format (little-endian, magic `PFBB`, version 1):
//!
//! ```text
//! magic "PFBB" | u32 version | u8 kind | str id | str reason
//! | u64 created_at_sample | u8 truncated
//! | option trial: u32 subject, u32 task, u32 trial_index, u8 is_fall,
//!   option u64 impact
//! | option u64 triggered_at | option f64 lead_time_ms
//! | config: f32 threshold, u32 consecutive, guard (u8 enabled,
//!   f32 accel_limit_g, f32 gyro_limit_rads, u32 max_gap_fill,
//!   u32 stuck_window, u32 fault_debounce, u32 accel_confirm_window,
//!   f32 accel_confirm_dev_g)
//! | u64 config_hash | u64 model_hash | guard status: 12 × u64
//! | u32 model-blob len | model blob (PFDB bundle)
//! | u32 n samples × (u8 flags, 6 × f32)
//! | u32 n windows × (u64 at_sample, f32 score, u8 flags, u8 n_branch,
//!   n_branch × (u32 output_len, f32 l2, f32 mean_abs, f32 peak))
//! ```
//!
//! `str` is `u16 len + UTF-8 bytes`; `option` is a `u8` presence tag.
//! Floats are stored as raw IEEE-754 bits, so NaN inputs survive the
//! round-trip exactly.
//!
//! [`DetectorBundle`]: prefall_core::persist::DetectorBundle

use crate::BlackboxError;
use bytes::{Buf, BufMut, BytesMut};
use prefall_core::detector::{GuardConfig, GuardStatus};
use prefall_nn::network::BranchStat;
use prefall_telemetry::JsonValue;

const MAGIC: &[u8; 4] = b"PFBB";
const VERSION: u32 = 1;

/// Most modality branches a [`WindowRecord`] can carry (the paper's
/// CNN has three: accel, gyro, Euler).
pub const MAX_BRANCHES: usize = 4;

/// FNV-1a 64-bit hash — tiny, dependency-free, stable across builds.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What flipped the ring buffer into a dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The policy-aware trigger decision went true (airbag fired).
    Trigger,
    /// A fall trial ended without any trigger.
    MissedFall,
    /// The `/healthz` probe crossed into degraded.
    HealthDegraded,
    /// Operator-requested snapshot.
    Manual,
}

impl IncidentKind {
    fn tag(self) -> u8 {
        match self {
            IncidentKind::Trigger => 0,
            IncidentKind::MissedFall => 1,
            IncidentKind::HealthDegraded => 2,
            IncidentKind::Manual => 3,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            0 => IncidentKind::Trigger,
            1 => IncidentKind::MissedFall,
            2 => IncidentKind::HealthDegraded,
            3 => IncidentKind::Manual,
            _ => return None,
        })
    }

    /// Stable lowercase name (used in JSON and filenames).
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::Trigger => "trigger",
            IncidentKind::MissedFall => "missed_fall",
            IncidentKind::HealthDegraded => "health_degraded",
            IncidentKind::Manual => "manual",
        }
    }
}

/// Which trial the incident happened in (when known).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialMeta {
    /// Subject id.
    pub subject: u32,
    /// Table II task number.
    pub task: u32,
    /// Repetition index.
    pub trial_index: u32,
    /// Whether the trial is a fall.
    pub is_fall: bool,
    /// Impact sample index for falls.
    pub impact: Option<u64>,
}

/// One recorded ingest event (one 100 Hz grid tick).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleRecord {
    /// Bit set over [`SampleRecord::MISSING`] …
    /// [`SampleRecord::STALE`].
    pub flags: u8,
    /// Raw pre-guard accelerometer reading in g (the hold value for
    /// missing ticks).
    pub accel: [f32; 3],
    /// Raw pre-guard gyroscope reading in rad/s.
    pub gyro: [f32; 3],
}

impl SampleRecord {
    /// The tick was reported missing (no sample delivered).
    pub const MISSING: u8 = 1;
    /// Accel-degraded mode was active after this event.
    pub const ACCEL_DEGRADED: u8 = 2;
    /// Gyro-degraded mode was active after this event.
    pub const GYRO_DEGRADED: u8 = 4;
    /// The detector was stale after this event.
    pub const STALE: u8 = 8;

    /// Whether this tick was a missing-sample report.
    pub fn missing(&self) -> bool {
        self.flags & Self::MISSING != 0
    }
}

/// One classified window with its decision trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRecord {
    /// 1-based count of ingest events when this window classified
    /// (i.e. the window completed on the `at_sample`-th tick of the
    /// stream).
    pub at_sample: u64,
    /// Sigmoid window score.
    pub score: f32,
    /// Bit set over [`WindowRecord::ARMED`] …
    /// [`WindowRecord::STALE`].
    pub flags: u8,
    /// Branches held in `branches` (0 for quantized engines).
    pub n_branch: u8,
    /// Per-branch activation statistics, `..n_branch` valid.
    pub branches: [BranchStat; MAX_BRANCHES],
}

const EMPTY_STAT: BranchStat = BranchStat {
    output_len: 0,
    l2: 0.0,
    mean_abs: 0.0,
    peak: 0.0,
};

impl Default for WindowRecord {
    fn default() -> Self {
        Self {
            at_sample: 0,
            score: 0.0,
            flags: 0,
            n_branch: 0,
            branches: [EMPTY_STAT; MAX_BRANCHES],
        }
    }
}

impl WindowRecord {
    /// The raw trigger condition (N consecutive positives) held.
    pub const ARMED: u8 = 1;
    /// The policy-aware trigger decision was true.
    pub const DECISION: u8 = 2;
    /// Accel-degraded mode was active.
    pub const ACCEL_DEGRADED: u8 = 4;
    /// Gyro-degraded mode was active.
    pub const GYRO_DEGRADED: u8 = 8;
    /// The detector was stale.
    pub const STALE: u8 = 16;

    /// The valid branch statistics.
    pub fn attribution(&self) -> &[BranchStat] {
        &self.branches[..self.n_branch as usize]
    }

    /// Whether the policy-aware trigger decision was true.
    pub fn decision(&self) -> bool {
        self.flags & Self::DECISION != 0
    }

    /// Whether the raw arming condition held.
    pub fn armed(&self) -> bool {
        self.flags & Self::ARMED != 0
    }
}

/// A self-contained incident record — see the [module docs](self) for
/// the format and guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentDump {
    /// Stable id (`inc-<seq>`).
    pub id: String,
    /// What caused the dump.
    pub kind: IncidentKind,
    /// Human-readable cause detail.
    pub reason: String,
    /// Ingest events seen on this stream when the dump was taken.
    pub created_at_sample: u64,
    /// The sample ring wrapped (or recording started mid-stream):
    /// the record does not reach back to the stream start, so replay
    /// cannot reconstruct filter state bit-exactly.
    pub truncated: bool,
    /// The trial streamed when the incident happened, when known.
    pub trial: Option<TrialMeta>,
    /// Stream tick at which the trigger fired (trigger incidents).
    pub triggered_at: Option<u64>,
    /// Milliseconds between trigger and impact (patched in at trial
    /// end; negative = fired after impact).
    pub lead_time_ms: Option<f64>,
    /// Decision threshold the detector ran with.
    pub threshold: f32,
    /// Consecutive-positive-windows requirement.
    pub consecutive: u32,
    /// Ingest hardening configuration.
    pub guard_config: GuardConfig,
    /// Cumulative guard counters at dump time.
    pub guard: GuardStatus,
    /// The full trained model + pipeline + normaliser as a serialized
    /// [`DetectorBundle`](prefall_core::persist::DetectorBundle).
    pub model_blob: Vec<u8>,
    /// The recorded input stream, oldest first.
    pub samples: Vec<SampleRecord>,
    /// The recorded score trajectory, oldest first.
    pub windows: Vec<WindowRecord>,
}

fn put_str(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    buf.put_u16_le(bytes.len().min(u16::MAX as usize) as u16);
    buf.put_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

fn put_opt_u64(buf: &mut BytesMut, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            buf.put_u64_le(v);
        }
        None => buf.put_u8(0),
    }
}

fn put_opt_f64(buf: &mut BytesMut, v: Option<f64>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            buf.put_f64_le(v);
        }
        None => buf.put_u8(0),
    }
}

/// Bounded reader helpers returning `BlackboxError::Format` on
/// truncation instead of panicking.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize, what: &str) -> Result<(), BlackboxError> {
        if self.buf.remaining() < n {
            return Err(BlackboxError::Format(format!("truncated {what}")));
        }
        Ok(())
    }

    fn u8(&mut self, what: &str) -> Result<u8, BlackboxError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self, what: &str) -> Result<u16, BlackboxError> {
        self.need(2, what)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self, what: &str) -> Result<u32, BlackboxError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self, what: &str) -> Result<u64, BlackboxError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }

    fn f32(&mut self, what: &str) -> Result<f32, BlackboxError> {
        self.need(4, what)?;
        Ok(self.buf.get_f32_le())
    }

    fn f64(&mut self, what: &str) -> Result<f64, BlackboxError> {
        self.need(8, what)?;
        Ok(self.buf.get_f64_le())
    }

    fn str(&mut self, what: &str) -> Result<String, BlackboxError> {
        let n = self.u16(what)? as usize;
        self.need(n, what)?;
        let s = std::str::from_utf8(&self.buf[..n])
            .map_err(|_| BlackboxError::Format(format!("non-UTF-8 {what}")))?
            .to_string();
        self.buf.advance(n);
        Ok(s)
    }

    fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, BlackboxError> {
        Ok(match self.u8(what)? {
            0 => None,
            _ => Some(self.u64(what)?),
        })
    }

    fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, BlackboxError> {
        Ok(match self.u8(what)? {
            0 => None,
            _ => Some(self.f64(what)?),
        })
    }
}

fn guard_status_fields(g: &GuardStatus) -> [u64; 12] {
    [
        g.samples,
        g.nonfinite,
        g.clamped,
        g.gaps_filled,
        g.gap_lost,
        g.stuck_events,
        g.degraded_samples,
        g.degraded_windows,
        g.window_flushes,
        g.suppressed_triggers,
        g.engine_rejects,
        g.windows,
    ]
}

impl IncidentDump {
    /// The serialized detector-configuration section (threshold,
    /// consecutive, guard) — the bytes [`IncidentDump::config_hash`]
    /// covers.
    fn config_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_f32_le(self.threshold);
        buf.put_u32_le(self.consecutive);
        let g = &self.guard_config;
        buf.put_u8(u8::from(g.enabled));
        buf.put_f32_le(g.accel_limit_g);
        buf.put_f32_le(g.gyro_limit_rads);
        buf.put_u32_le(g.max_gap_fill as u32);
        buf.put_u32_le(g.stuck_window as u32);
        buf.put_u32_le(g.fault_debounce);
        buf.put_u32_le(g.accel_confirm_window as u32);
        buf.put_f32_le(g.accel_confirm_dev_g);
        buf.to_vec()
    }

    /// FNV-1a hash of the detector configuration the incident ran
    /// with.
    pub fn config_hash(&self) -> u64 {
        fnv1a64(&self.config_bytes())
    }

    /// FNV-1a hash of the embedded model bundle blob.
    pub fn model_hash(&self) -> u64 {
        fnv1a64(&self.model_blob)
    }

    /// Serialises the dump (see the [module docs](self) for the
    /// layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let config = self.config_bytes();
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u8(self.kind.tag());
        put_str(&mut buf, &self.id);
        put_str(&mut buf, &self.reason);
        buf.put_u64_le(self.created_at_sample);
        buf.put_u8(u8::from(self.truncated));
        match &self.trial {
            Some(t) => {
                buf.put_u8(1);
                buf.put_u32_le(t.subject);
                buf.put_u32_le(t.task);
                buf.put_u32_le(t.trial_index);
                buf.put_u8(u8::from(t.is_fall));
                put_opt_u64(&mut buf, t.impact);
            }
            None => buf.put_u8(0),
        }
        put_opt_u64(&mut buf, self.triggered_at);
        put_opt_f64(&mut buf, self.lead_time_ms);
        buf.put_slice(&config);
        buf.put_u64_le(fnv1a64(&config));
        buf.put_u64_le(self.model_hash());
        for v in guard_status_fields(&self.guard) {
            buf.put_u64_le(v);
        }
        buf.put_u32_le(self.model_blob.len() as u32);
        buf.put_slice(&self.model_blob);
        buf.put_u32_le(self.samples.len() as u32);
        for s in &self.samples {
            buf.put_u8(s.flags);
            for v in s.accel.iter().chain(s.gyro.iter()) {
                buf.put_f32_le(*v);
            }
        }
        buf.put_u32_le(self.windows.len() as u32);
        for w in &self.windows {
            buf.put_u64_le(w.at_sample);
            buf.put_f32_le(w.score);
            buf.put_u8(w.flags);
            buf.put_u8(w.n_branch);
            for b in w.attribution() {
                buf.put_u32_le(b.output_len);
                buf.put_f32_le(b.l2);
                buf.put_f32_le(b.mean_abs);
                buf.put_f32_le(b.peak);
            }
        }
        buf.to_vec()
    }

    /// Deserialises and integrity-checks a dump.
    ///
    /// # Errors
    ///
    /// [`BlackboxError::Format`] on malformed or truncated input, and
    /// on a config/model hash mismatch — a dump whose stored hashes do
    /// not match its own content must not be replayed.
    pub fn from_bytes(blob: &[u8]) -> Result<Self, BlackboxError> {
        let mut r = Reader { buf: blob };
        r.need(8, "header")?;
        if &r.buf[..4] != MAGIC {
            return Err(BlackboxError::Format("bad magic".to_string()));
        }
        r.buf.advance(4);
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(BlackboxError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let kind = IncidentKind::from_tag(r.u8("kind")?)
            .ok_or_else(|| BlackboxError::Format("unknown incident kind".to_string()))?;
        let id = r.str("id")?;
        let reason = r.str("reason")?;
        let created_at_sample = r.u64("created_at_sample")?;
        let truncated = r.u8("truncated")? != 0;
        let trial = match r.u8("trial tag")? {
            0 => None,
            _ => Some(TrialMeta {
                subject: r.u32("trial")?,
                task: r.u32("trial")?,
                trial_index: r.u32("trial")?,
                is_fall: r.u8("trial")? != 0,
                impact: r.opt_u64("trial impact")?,
            }),
        };
        let triggered_at = r.opt_u64("triggered_at")?;
        let lead_time_ms = r.opt_f64("lead_time_ms")?;
        let threshold = r.f32("config")?;
        let consecutive = r.u32("config")?;
        let guard_config = GuardConfig {
            enabled: r.u8("config")? != 0,
            accel_limit_g: r.f32("config")?,
            gyro_limit_rads: r.f32("config")?,
            max_gap_fill: r.u32("config")? as usize,
            stuck_window: r.u32("config")? as usize,
            fault_debounce: r.u32("config")?,
            accel_confirm_window: r.u32("config")? as usize,
            accel_confirm_dev_g: r.f32("config")?,
        };
        let config_hash = r.u64("config_hash")?;
        let model_hash = r.u64("model_hash")?;
        let mut gs = [0u64; 12];
        for v in &mut gs {
            *v = r.u64("guard status")?;
        }
        let guard = GuardStatus {
            samples: gs[0],
            nonfinite: gs[1],
            clamped: gs[2],
            gaps_filled: gs[3],
            gap_lost: gs[4],
            stuck_events: gs[5],
            degraded_samples: gs[6],
            degraded_windows: gs[7],
            window_flushes: gs[8],
            suppressed_triggers: gs[9],
            engine_rejects: gs[10],
            windows: gs[11],
            // Not part of the v1 wire format: grid regressions are a
            // transport condition, invisible to the single-stream
            // replay this dump feeds.
            ts_regression: 0,
        };
        let blob_len = r.u32("model blob len")? as usize;
        r.need(blob_len, "model blob")?;
        let model_blob = r.buf[..blob_len].to_vec();
        r.buf.advance(blob_len);
        let n_samples = r.u32("sample count")? as usize;
        r.need(n_samples * 25, "samples")?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let flags = r.u8("sample")?;
            let mut vals = [0f32; 6];
            for v in &mut vals {
                *v = r.f32("sample")?;
            }
            samples.push(SampleRecord {
                flags,
                accel: [vals[0], vals[1], vals[2]],
                gyro: [vals[3], vals[4], vals[5]],
            });
        }
        let n_windows = r.u32("window count")? as usize;
        let mut windows = Vec::with_capacity(n_windows.min(1 << 20));
        for _ in 0..n_windows {
            let at_sample = r.u64("window")?;
            let score = r.f32("window")?;
            let flags = r.u8("window")?;
            let n_branch = r.u8("window")?;
            if n_branch as usize > MAX_BRANCHES {
                return Err(BlackboxError::Format(format!(
                    "window holds {n_branch} branches (max {MAX_BRANCHES})"
                )));
            }
            let mut branches = [EMPTY_STAT; MAX_BRANCHES];
            for b in branches.iter_mut().take(n_branch as usize) {
                *b = BranchStat {
                    output_len: r.u32("branch")?,
                    l2: r.f32("branch")?,
                    mean_abs: r.f32("branch")?,
                    peak: r.f32("branch")?,
                };
            }
            windows.push(WindowRecord {
                at_sample,
                score,
                flags,
                n_branch,
                branches,
            });
        }
        let dump = Self {
            id,
            kind,
            reason,
            created_at_sample,
            truncated,
            trial,
            triggered_at,
            lead_time_ms,
            threshold,
            consecutive,
            guard_config,
            guard,
            model_blob,
            samples,
            windows,
        };
        if dump.config_hash() != config_hash {
            return Err(BlackboxError::Format("config hash mismatch".to_string()));
        }
        if dump.model_hash() != model_hash {
            return Err(BlackboxError::Format("model hash mismatch".to_string()));
        }
        Ok(dump)
    }

    /// The binary dump as lowercase hex (transport-safe for JSON).
    pub fn to_hex(&self) -> String {
        let bytes = self.to_bytes();
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Parses a dump from [`IncidentDump::to_hex`] output.
    ///
    /// # Errors
    ///
    /// [`BlackboxError::Format`] on non-hex input or any
    /// [`IncidentDump::from_bytes`] failure.
    pub fn from_hex(hex: &str) -> Result<Self, BlackboxError> {
        let hex = hex.trim();
        if !hex.len().is_multiple_of(2) {
            return Err(BlackboxError::Format("odd hex length".to_string()));
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let b = u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| BlackboxError::Format("non-hex digit".to_string()))?;
            bytes.push(b);
        }
        Self::from_bytes(&bytes)
    }

    /// Compact summary for the `/incidents` listing.
    pub fn summary_json(&self) -> JsonValue {
        let mut fields = vec![
            ("id".to_string(), JsonValue::Str(self.id.clone())),
            (
                "kind".to_string(),
                JsonValue::Str(self.kind.name().to_string()),
            ),
            ("reason".to_string(), JsonValue::Str(self.reason.clone())),
            (
                "created_at_sample".to_string(),
                JsonValue::U64(self.created_at_sample),
            ),
            ("truncated".to_string(), JsonValue::Bool(self.truncated)),
            (
                "samples".to_string(),
                JsonValue::U64(self.samples.len() as u64),
            ),
            (
                "windows".to_string(),
                JsonValue::U64(self.windows.len() as u64),
            ),
        ];
        if let Some(lt) = self.lead_time_ms {
            fields.push(("lead_time_ms".to_string(), JsonValue::F64(lt)));
        }
        if let Some(t) = self.triggered_at {
            fields.push(("triggered_at".to_string(), JsonValue::U64(t)));
        }
        JsonValue::Obj(fields)
    }

    /// Full detail document: the summary plus trial metadata, hashes,
    /// guard counters, the decision trace (score trajectory with
    /// per-branch attribution shares), and — when `include_blob` —
    /// the complete binary dump as `dump_hex` for download-and-replay.
    pub fn to_json(&self, include_blob: bool) -> JsonValue {
        let mut fields = match self.summary_json() {
            JsonValue::Obj(f) => f,
            _ => unreachable!("summary is an object"),
        };
        if let Some(t) = &self.trial {
            let mut tf = vec![
                ("subject".to_string(), JsonValue::U64(u64::from(t.subject))),
                ("task".to_string(), JsonValue::U64(u64::from(t.task))),
                (
                    "trial_index".to_string(),
                    JsonValue::U64(u64::from(t.trial_index)),
                ),
                ("is_fall".to_string(), JsonValue::Bool(t.is_fall)),
            ];
            if let Some(im) = t.impact {
                tf.push(("impact".to_string(), JsonValue::U64(im)));
            }
            fields.push(("trial".to_string(), JsonValue::Obj(tf)));
        }
        fields.push((
            "config_hash".to_string(),
            JsonValue::Str(format!("{:016x}", self.config_hash())),
        ));
        fields.push((
            "model_hash".to_string(),
            JsonValue::Str(format!("{:016x}", self.model_hash())),
        ));
        fields.push((
            "model_bytes".to_string(),
            JsonValue::U64(self.model_blob.len() as u64),
        ));
        fields.push((
            "guard".to_string(),
            JsonValue::Obj(
                [
                    ("samples", self.guard.samples),
                    ("nonfinite", self.guard.nonfinite),
                    ("clamped", self.guard.clamped),
                    ("gaps_filled", self.guard.gaps_filled),
                    ("gap_lost", self.guard.gap_lost),
                    ("stuck_events", self.guard.stuck_events),
                    ("degraded_samples", self.guard.degraded_samples),
                    ("degraded_windows", self.guard.degraded_windows),
                    ("window_flushes", self.guard.window_flushes),
                    ("suppressed_triggers", self.guard.suppressed_triggers),
                    ("engine_rejects", self.guard.engine_rejects),
                    ("windows", self.guard.windows),
                    ("faults", self.guard.faults()),
                ]
                .iter()
                .map(|(k, v)| (k.to_string(), JsonValue::U64(*v)))
                .collect(),
            ),
        ));
        let trace: Vec<JsonValue> = self
            .windows
            .iter()
            .map(|w| {
                let shares = BranchStat::shares(w.attribution());
                let mut wf = vec![
                    ("at_sample".to_string(), JsonValue::U64(w.at_sample)),
                    ("score".to_string(), JsonValue::F64(f64::from(w.score))),
                    ("armed".to_string(), JsonValue::Bool(w.armed())),
                    ("decision".to_string(), JsonValue::Bool(w.decision())),
                ];
                if w.n_branch > 0 {
                    wf.push((
                        "attribution".to_string(),
                        JsonValue::Arr(
                            shares
                                .iter()
                                .map(|&s| JsonValue::F64(f64::from(s)))
                                .collect(),
                        ),
                    ));
                }
                JsonValue::Obj(wf)
            })
            .collect();
        fields.push(("trace".to_string(), JsonValue::Arr(trace)));
        if include_blob {
            fields.push(("dump_hex".to_string(), JsonValue::Str(self.to_hex())));
        }
        JsonValue::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump() -> IncidentDump {
        IncidentDump {
            id: "inc-1".to_string(),
            kind: IncidentKind::Trigger,
            reason: "trigger decision went true".to_string(),
            created_at_sample: 321,
            truncated: false,
            trial: Some(TrialMeta {
                subject: 3,
                task: 20,
                trial_index: 1,
                is_fall: true,
                impact: Some(300),
            }),
            triggered_at: Some(280),
            lead_time_ms: Some(200.0),
            threshold: 0.5,
            consecutive: 1,
            guard_config: GuardConfig::default(),
            guard: GuardStatus {
                samples: 321,
                nonfinite: 6,
                ..GuardStatus::default()
            },
            model_blob: vec![1, 2, 3, 4, 5],
            samples: vec![
                SampleRecord {
                    flags: 0,
                    accel: [0.0, 0.0, 1.0],
                    gyro: [0.0; 3],
                },
                SampleRecord {
                    flags: SampleRecord::MISSING | SampleRecord::STALE,
                    accel: [f32::NAN, 0.5, -0.5],
                    gyro: [f32::INFINITY, 0.0, 0.0],
                },
            ],
            windows: vec![WindowRecord {
                at_sample: 2,
                score: 0.75,
                flags: WindowRecord::ARMED | WindowRecord::DECISION,
                n_branch: 2,
                branches: [
                    BranchStat {
                        output_len: 4,
                        l2: 1.5,
                        mean_abs: 0.5,
                        peak: 1.0,
                    },
                    BranchStat {
                        output_len: 4,
                        l2: 0.5,
                        mean_abs: 0.2,
                        peak: 0.4,
                    },
                    EMPTY_STAT,
                    EMPTY_STAT,
                ],
            }],
        }
    }

    #[test]
    fn binary_roundtrip_is_exact_including_nonfinite_floats() {
        let d = dump();
        let back = IncidentDump::from_bytes(&d.to_bytes()).unwrap();
        // NaN != NaN, so compare the bit patterns for the samples.
        assert_eq!(back.id, d.id);
        assert_eq!(back.kind, d.kind);
        assert_eq!(back.trial, d.trial);
        assert_eq!(back.guard, d.guard);
        assert_eq!(back.windows, d.windows);
        assert_eq!(back.samples.len(), d.samples.len());
        for (a, b) in back.samples.iter().zip(&d.samples) {
            assert_eq!(a.flags, b.flags);
            for k in 0..3 {
                assert_eq!(a.accel[k].to_bits(), b.accel[k].to_bits());
                assert_eq!(a.gyro[k].to_bits(), b.gyro[k].to_bits());
            }
        }
        let hex_back = IncidentDump::from_hex(&d.to_hex()).unwrap();
        assert_eq!(hex_back.to_bytes(), d.to_bytes());
    }

    #[test]
    fn corruption_is_rejected() {
        let d = dump();
        let blob = d.to_bytes();
        assert!(IncidentDump::from_bytes(b"nope").is_err());
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert!(IncidentDump::from_bytes(&bad_magic).is_err());
        let mut truncated = blob.clone();
        truncated.truncate(blob.len() - 3);
        assert!(IncidentDump::from_bytes(&truncated).is_err());
        // Flip a byte inside the model blob: the stored model hash no
        // longer matches and the dump must refuse to load.
        let needle = [5u8, 0, 0, 0, 1, 2, 3, 4, 5]; // u32 len + blob
        let at = (0..blob.len() - needle.len())
            .find(|&i| blob[i..i + needle.len()] == needle)
            .expect("model blob present in serialisation");
        let mut tampered = blob.clone();
        tampered[at + 4] ^= 0xff;
        assert!(IncidentDump::from_bytes(&tampered).is_err());
        assert!(IncidentDump::from_hex("zz").is_err());
        assert!(IncidentDump::from_hex("abc").is_err());
    }

    #[test]
    fn json_has_the_forensic_fields() {
        let d = dump();
        let doc = d.to_json(true);
        assert_eq!(doc.get("id").and_then(|v| v.as_str()), Some("inc-1"));
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("trigger"));
        assert!(doc.get("config_hash").is_some());
        assert!(doc.get("model_hash").is_some());
        assert!(doc.get("trial").and_then(|t| t.get("impact")).is_some());
        let trace = match doc.get("trace") {
            Some(JsonValue::Arr(t)) => t,
            other => panic!("trace missing: {other:?}"),
        };
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace[0].get("decision").and_then(|v| v.as_bool()),
            Some(true)
        );
        let hex = doc.get("dump_hex").and_then(|v| v.as_str()).unwrap();
        let back = IncidentDump::from_hex(hex).unwrap();
        assert_eq!(back.to_bytes(), d.to_bytes());
        assert!(d.to_json(false).get("dump_hex").is_none());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
