//! The flight recorder: an allocation-bounded [`DetectorTap`] that
//! continuously captures the last few seconds of detector activity
//! and freezes it into an [`IncidentDump`] when something noteworthy
//! happens.
//!
//! All storage is allocated up front ([`Ring`] buffers sized by
//! [`FlightConfig`]); the per-sample path copies fixed-size records
//! into the rings and never touches the heap. Allocation happens only
//! on the incident path — when a trigger fires, a fall trial ends
//! untriggered, `/healthz` degrades, or an operator asks for a manual
//! dump — which is rare by construction.
//!
//! Incidents that fire mid-trial (trigger dumps) are created
//! immediately with what is known at that instant, then patched with
//! trial identity and lead time when
//! [`StreamingDetector::notify_trial_end`] delivers the outcome.
//!
//! [`StreamingDetector::notify_trial_end`]: prefall_core::detector::StreamingDetector::notify_trial_end

use crate::dump::{
    IncidentDump, IncidentKind, SampleRecord, TrialMeta, WindowRecord, MAX_BRANCHES,
};
use crate::ring::Ring;
use crate::BlackboxError;
use prefall_core::detector::{
    DetectorConfig, GuardConfig, GuardStatus, StreamingDetector, TrialOutcome,
};
use prefall_core::persist::DetectorBundle;
use prefall_core::tap::{DetectorTap, SampleTapCtx};
use prefall_imu::trial::Trial;
use prefall_telemetry::Recorder;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Sizing of the flight recorder's pre-allocated storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Sample-ring capacity. The default (3000) holds 30 s of 100 Hz
    /// input — far more than the paper's 400 ms window plus the
    /// longest pre-fall phase in the protocol.
    pub ring_samples: usize,
    /// Window-ring capacity (600 ≈ the windows classified over the
    /// sample ring at 50 % overlap, with slack).
    pub ring_windows: usize,
    /// Most incidents held in memory; the oldest is evicted beyond
    /// this.
    pub max_incidents: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            ring_samples: 3000,
            ring_windows: 600,
            max_incidents: 8,
        }
    }
}

struct FlightState {
    cfg: FlightConfig,
    threshold: f32,
    consecutive: u32,
    guard_config: GuardConfig,
    model_blob: Arc<Vec<u8>>,
    samples: Ring<SampleRecord>,
    windows: Ring<WindowRecord>,
    last_guard: GuardStatus,
    prev_decision: bool,
    /// Recording has observed a stream reset, so the sample ring
    /// starts at the true stream start (until it wraps).
    synced: bool,
    health_degraded: bool,
    seq: u64,
    incidents: VecDeque<IncidentDump>,
    /// Ids of trigger incidents from the current stream, awaiting
    /// trial identity and lead time at trial end.
    pending: Vec<String>,
    rec: Arc<dyn Recorder>,
}

impl FlightState {
    fn truncated(&self) -> bool {
        self.samples.wrapped() || self.windows.wrapped() || !self.synced
    }

    fn make_dump(&mut self, kind: IncidentKind, reason: &str) -> IncidentDump {
        self.seq += 1;
        let dump = IncidentDump {
            id: format!("inc-{}", self.seq),
            kind,
            reason: reason.to_string(),
            created_at_sample: self.samples.total(),
            truncated: self.truncated(),
            trial: None,
            triggered_at: (kind == IncidentKind::Trigger).then(|| self.samples.total()),
            lead_time_ms: None,
            threshold: self.threshold,
            consecutive: self.consecutive,
            guard_config: self.guard_config,
            guard: self.last_guard,
            model_blob: self.model_blob.as_ref().clone(),
            samples: self.samples.iter().copied().collect(),
            windows: self.windows.iter().copied().collect(),
        };
        self.rec.counter_add("blackbox.incidents", 1);
        self.rec
            .counter_add(&format!("blackbox.incident.{}", kind.name()), 1);
        dump
    }

    fn store(&mut self, dump: IncidentDump) {
        while self.incidents.len() >= self.cfg.max_incidents.max(1) {
            if let Some(evicted) = self.incidents.pop_front() {
                self.pending.retain(|id| *id != evicted.id);
                self.rec.counter_add("blackbox.evicted", 1);
            }
        }
        self.incidents.push_back(dump);
        self.rec
            .gauge_set("blackbox.incidents.held", self.incidents.len() as f64);
    }
}

/// Shared, cloneable view of the flight recorder: lists and fetches
/// incidents, takes manual dumps, and (via the
/// [`IncidentSource`](prefall_obsd::IncidentSource) impl) backs the
/// obsd server's `/incidents` endpoints.
#[derive(Clone)]
pub struct FlightHandle {
    state: Arc<Mutex<FlightState>>,
}

impl std::fmt::Debug for FlightHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("flight state poisoned");
        f.debug_struct("FlightHandle")
            .field("incidents", &s.incidents.len())
            .field("samples_buffered", &s.samples.len())
            .finish()
    }
}

impl FlightHandle {
    /// Takes a manual dump of the current rings (kind
    /// [`IncidentKind::Manual`]), stores it, and returns a copy.
    pub fn dump_now(&self, reason: &str) -> IncidentDump {
        let mut s = self.state.lock().expect("flight state poisoned");
        let dump = s.make_dump(IncidentKind::Manual, reason);
        s.store(dump.clone());
        dump
    }

    /// Copies of all held incidents, oldest first.
    pub fn incidents(&self) -> Vec<IncidentDump> {
        let s = self.state.lock().expect("flight state poisoned");
        s.incidents.iter().cloned().collect()
    }

    /// The incident with the given id, if still held.
    pub fn incident(&self, id: &str) -> Option<IncidentDump> {
        let s = self.state.lock().expect("flight state poisoned");
        s.incidents.iter().find(|d| d.id == id).cloned()
    }

    /// The most recent incident, if any.
    pub fn latest(&self) -> Option<IncidentDump> {
        let s = self.state.lock().expect("flight state poisoned");
        s.incidents.back().cloned()
    }

    /// Number of incidents currently held.
    pub fn incident_count(&self) -> usize {
        let s = self.state.lock().expect("flight state poisoned");
        s.incidents.len()
    }

    /// Installs a telemetry recorder for the `blackbox.*` counters
    /// (incidents by kind, evictions, incidents held). The hot path
    /// emits nothing — only incident creation does.
    pub fn set_recorder(&self, rec: Arc<dyn Recorder>) {
        let mut s = self.state.lock().expect("flight state poisoned");
        s.rec = rec;
    }

    /// Records a `/healthz` verdict; a rising edge into degraded takes
    /// a [`IncidentKind::HealthDegraded`] dump. Exposed for the
    /// [`IncidentSource`](prefall_obsd::IncidentSource) impl and for
    /// deployments polling health out-of-band.
    pub fn record_health(&self, degraded: bool, reason: &str) {
        let mut s = self.state.lock().expect("flight state poisoned");
        let rising = degraded && !s.health_degraded;
        s.health_degraded = degraded;
        if rising {
            let dump = s.make_dump(IncidentKind::HealthDegraded, reason);
            s.store(dump);
        }
    }
}

/// The [`DetectorTap`] half of the flight recorder. Created by
/// [`FlightRecorder::install`]; you normally only keep the returned
/// [`FlightHandle`].
pub struct FlightRecorder {
    state: Arc<Mutex<FlightState>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FlightRecorder")
    }
}

impl FlightRecorder {
    /// Builds a flight recorder around `detector` (reading its live
    /// configuration), installs it as the detector's tap, and returns
    /// the shared [`FlightHandle`].
    ///
    /// `model_blob` is the serialized
    /// [`DetectorBundle`](prefall_core::persist::DetectorBundle) the
    /// detector was built from; it is embedded verbatim in every dump
    /// so replay reconstructs the exact same engine.
    pub fn install(
        detector: &mut StreamingDetector,
        model_blob: Vec<u8>,
        cfg: FlightConfig,
    ) -> FlightHandle {
        let dc = detector.config();
        let state = Arc::new(Mutex::new(FlightState {
            cfg,
            threshold: dc.threshold,
            consecutive: dc.consecutive as u32,
            guard_config: dc.guard,
            model_blob: Arc::new(model_blob),
            samples: Ring::new(cfg.ring_samples),
            windows: Ring::new(cfg.ring_windows),
            last_guard: GuardStatus::default(),
            prev_decision: false,
            synced: false,
            health_degraded: false,
            seq: 0,
            incidents: VecDeque::with_capacity(cfg.max_incidents.max(1)),
            pending: Vec::new(),
            rec: prefall_telemetry::noop(),
        }));
        detector.set_tap(Box::new(FlightRecorder {
            state: Arc::clone(&state),
        }));
        FlightHandle { state }
    }
}

impl DetectorTap for FlightRecorder {
    fn on_sample(&mut self, ctx: &SampleTapCtx<'_>) {
        let mut s = self.state.lock().expect("flight state poisoned");
        let s = &mut *s;
        let mut flags = 0u8;
        if ctx.missing {
            flags |= SampleRecord::MISSING;
        }
        if ctx.mode.accel_degraded {
            flags |= SampleRecord::ACCEL_DEGRADED;
        }
        if ctx.mode.gyro_degraded {
            flags |= SampleRecord::GYRO_DEGRADED;
        }
        if ctx.mode.stale {
            flags |= SampleRecord::STALE;
        }
        s.samples.push(SampleRecord {
            flags,
            accel: ctx.accel,
            gyro: ctx.gyro,
        });
        s.last_guard = ctx.guard;
        let Some(w) = &ctx.window else {
            return;
        };
        let mut wflags = 0u8;
        if w.armed {
            wflags |= WindowRecord::ARMED;
        }
        if w.decision {
            wflags |= WindowRecord::DECISION;
        }
        if ctx.mode.accel_degraded {
            wflags |= WindowRecord::ACCEL_DEGRADED;
        }
        if ctx.mode.gyro_degraded {
            wflags |= WindowRecord::GYRO_DEGRADED;
        }
        if ctx.mode.stale {
            wflags |= WindowRecord::STALE;
        }
        let mut record = WindowRecord {
            at_sample: s.samples.total(),
            score: w.score,
            flags: wflags,
            n_branch: w.attribution.len().min(MAX_BRANCHES) as u8,
            ..WindowRecord::default()
        };
        for (dst, src) in record.branches.iter_mut().zip(w.attribution.iter()) {
            *dst = *src;
        }
        s.windows.push(record);
        // Rising edge of the policy-aware decision: the airbag fired.
        // Freeze the rings now; trial identity and lead time are
        // patched in at trial end.
        if w.decision && !s.prev_decision {
            let dump = s.make_dump(IncidentKind::Trigger, "trigger decision went true");
            s.pending.push(dump.id.clone());
            s.store(dump);
        }
        s.prev_decision = w.decision;
    }

    fn on_stream_reset(&mut self) {
        let mut s = self.state.lock().expect("flight state poisoned");
        s.samples.clear();
        s.windows.clear();
        s.prev_decision = false;
        s.synced = true;
        s.pending.clear();
    }

    fn on_trial_end(&mut self, trial: &Trial, outcome: &TrialOutcome) {
        let mut s = self.state.lock().expect("flight state poisoned");
        let s = &mut *s;
        let meta = TrialMeta {
            subject: u32::from(trial.subject.0),
            task: u32::from(trial.task.get()),
            trial_index: u32::from(trial.trial_index),
            is_fall: trial.is_fall(),
            impact: trial.impact().map(|i| i as u64),
        };
        for id in s.pending.drain(..) {
            if let Some(d) = s.incidents.iter_mut().find(|d| d.id == id) {
                d.trial = Some(meta);
                d.lead_time_ms = outcome.lead_time_ms;
                if let Some(t) = outcome.triggered_at {
                    d.triggered_at = Some(t as u64 + 1);
                }
            }
        }
        // A fall trial that ended with no trigger is exactly the
        // incident a pre-impact system most needs forensics for.
        if trial.is_fall() && outcome.triggered_at.is_none() {
            let mut dump = s.make_dump(IncidentKind::MissedFall, "fall trial ended untriggered");
            dump.trial = Some(meta);
            s.store(dump);
        }
    }
}

/// Builds a [`StreamingDetector`] from serialized
/// [`DetectorBundle`](prefall_core::persist::DetectorBundle) bytes and
/// arms it with a flight recorder — the deployment entry point, and
/// the construction [`crate::replay`] mirrors.
///
/// # Errors
///
/// [`BlackboxError::Replay`] when the bundle bytes do not parse or the
/// detector rejects the configuration.
pub fn armed_detector_from_bundle(
    bundle_bytes: &[u8],
    threshold: f32,
    consecutive: usize,
    guard: GuardConfig,
    cfg: FlightConfig,
) -> Result<(StreamingDetector, FlightHandle), BlackboxError> {
    let bundle = DetectorBundle::from_bytes(bundle_bytes)
        .map_err(|e| BlackboxError::Replay(format!("bad detector bundle: {e}")))?;
    let config = DetectorConfig {
        pipeline: bundle.pipeline,
        threshold,
        consecutive,
        guard,
    };
    let mut detector = StreamingDetector::new(bundle.network, bundle.normalizer, config)
        .map_err(|e| BlackboxError::Replay(format!("detector rejected bundle: {e}")))?;
    let handle = FlightRecorder::install(&mut detector, bundle_bytes.to_vec(), cfg);
    Ok((detector, handle))
}
