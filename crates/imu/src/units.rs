//! Physical units and conversions.
//!
//! Both datasets are standardised to **gravitational acceleration (g)**
//! for the accelerometer and **rad/s** for the gyroscope (§IV-A: "we
//! standardized the units of measurement across both datasets, converting
//! all values to gravitational acceleration (g)"). The KFall-like data is
//! generated in m/s² and deg/s to force the alignment step to do real
//! work.

use serde::{Deserialize, Serialize};

/// Standard gravity in m/s².
pub const STANDARD_GRAVITY: f64 = 9.80665;

/// Converts an acceleration from m/s² to g.
pub fn ms2_to_g(a: f64) -> f64 {
    a / STANDARD_GRAVITY
}

/// Converts an acceleration from g to m/s².
pub fn g_to_ms2(a: f64) -> f64 {
    a * STANDARD_GRAVITY
}

/// Converts an angular rate from deg/s to rad/s.
pub fn degs_to_rads(w: f64) -> f64 {
    w.to_radians()
}

/// Converts an angular rate from rad/s to deg/s.
pub fn rads_to_degs(w: f64) -> f64 {
    w.to_degrees()
}

/// The unit system a trial's raw channels are expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitSystem {
    /// Accelerometer in g, gyroscope in rad/s — the canonical system every
    /// trial is aligned to before preprocessing.
    Canonical,
    /// Accelerometer in m/s², gyroscope in deg/s — how the KFall-like
    /// recordings come off the generator before alignment.
    KFallRaw,
}

impl UnitSystem {
    /// Converts one accelerometer value from this system to canonical g.
    pub fn accel_to_canonical(self, a: f64) -> f64 {
        match self {
            UnitSystem::Canonical => a,
            UnitSystem::KFallRaw => ms2_to_g(a),
        }
    }

    /// Converts one gyroscope value from this system to canonical rad/s.
    pub fn gyro_to_canonical(self, w: f64) -> f64 {
        match self {
            UnitSystem::Canonical => w,
            UnitSystem::KFallRaw => degs_to_rads(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        for v in [-3.7, 0.0, 1.0, 9.80665, 42.0] {
            assert!((ms2_to_g(g_to_ms2(v)) - v).abs() < 1e-12);
            assert!((degs_to_rads(rads_to_degs(v)) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn one_g_is_standard_gravity() {
        assert!((g_to_ms2(1.0) - 9.80665).abs() < 1e-12);
        assert!((ms2_to_g(9.80665) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degrees_to_radians() {
        assert!((degs_to_rads(180.0) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn unit_system_conversions() {
        assert_eq!(UnitSystem::Canonical.accel_to_canonical(2.5), 2.5);
        assert!((UnitSystem::KFallRaw.accel_to_canonical(9.80665) - 1.0).abs() < 1e-12);
        assert_eq!(UnitSystem::Canonical.gyro_to_canonical(1.0), 1.0);
        assert!(
            (UnitSystem::KFallRaw.gyro_to_canonical(90.0) - std::f64::consts::FRAC_PI_2).abs()
                < 1e-12
        );
    }
}
