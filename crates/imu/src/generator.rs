//! The signal synthesizer: renders motion scripts into 100 Hz
//! accelerometer/gyroscope streams with frame-accurate fall labels.
//!
//! ## Model
//!
//! The renderer first authors a *timeline* — per-sample trunk
//! orientation (pitch/roll/yaw), a free-fall factor, and body-frame
//! linear acceleration — then converts it to sensor readings:
//!
//! * **accelerometer** (specific force, g):
//!   `a = (1 − ff) · g_body(pitch, roll) + a_lin + bias + noise`, where
//!   `g_body = [−sin p, cos p · sin r, cos p · cos r]` is gravity seen in
//!   the body frame. During free fall `ff → freefall_depth`, so the
//!   magnitude sinks toward zero exactly as a falling IMU reads.
//! * **gyroscope** (rad/s): the finite-difference derivative of the
//!   authored orientation plus noise — so the rotation dynamics and the
//!   rate signal are automatically consistent.
//!
//! Euler channels are *not* authored: they are computed downstream by the
//! same complementary filter the acquisition firmware runs (see
//! [`crate::trial`]), keeping the full fidelity of the paper's on-edge
//! sensor-fusion step.

use crate::rng::GenRng;
use crate::script::{FallDirection, FallSpec, Phase, Posture};
use crate::subject::Subject;
use crate::SAMPLE_RATE_HZ;

/// Raw rendered signals (before sensor fusion), in canonical units
/// (g, rad/s).
#[derive(Debug, Clone)]
pub struct RenderedSignals {
    /// Accelerometer channels `[x, y, z]` in g.
    pub accel: [Vec<f64>; 3],
    /// Gyroscope channels `[x, y, z]` in rad/s.
    pub gyro: [Vec<f64>; 3],
    /// Sample index where the falling phase starts (cannot recover).
    pub fall_start: Option<usize>,
    /// Sample index of ground impact.
    pub impact: Option<usize>,
}

impl RenderedSignals {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.accel[0].len()
    }

    /// `true` when the rendering is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Authored per-sample motion state, filled phase by phase.
struct Timeline {
    pitch: Vec<f64>,
    roll: Vec<f64>,
    yaw: Vec<f64>,
    /// Free-fall factor in `[0, 1]`: fraction of gravity "missing".
    ff: Vec<f64>,
    /// Body-frame linear acceleration (g).
    lin: [Vec<f64>; 3],
    fall_start: Option<usize>,
    impact: Option<usize>,
}

impl Timeline {
    fn new() -> Self {
        Self {
            pitch: Vec::new(),
            roll: Vec::new(),
            yaw: Vec::new(),
            ff: Vec::new(),
            lin: [Vec::new(), Vec::new(), Vec::new()],
            fall_start: None,
            impact: None,
        }
    }

    fn len(&self) -> usize {
        self.pitch.len()
    }

    fn push(&mut self, pitch: f64, roll: f64, yaw: f64, ff: f64, lin: [f64; 3]) {
        self.pitch.push(pitch);
        self.roll.push(roll);
        self.yaw.push(yaw);
        self.ff.push(ff.clamp(0.0, 1.0));
        for (c, v) in self.lin.iter_mut().zip(lin) {
            c.push(v);
        }
    }
}

/// Smoothstep easing on `[0, 1]`.
fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

fn to_samples(duration_s: f64) -> usize {
    ((duration_s * SAMPLE_RATE_HZ).round() as usize).max(1)
}

/// Renders a motion script for a subject into raw sensor signals.
pub fn render_script(phases: &[Phase], subject: &Subject, rng: &mut GenRng) -> RenderedSignals {
    let mut tl = Timeline::new();
    // Orientation continuity: each phase starts from the previous end.
    let mut cur = phases
        .first()
        .map(initial_orientation)
        .unwrap_or((0.0, 0.0));
    let mut yaw = 0.0f64;

    for phase in phases {
        match phase {
            Phase::Still {
                posture,
                duration_s,
            } => {
                cur = render_still(&mut tl, *posture, *duration_s, cur, yaw, subject, rng);
            }
            Phase::Walk {
                speed,
                duration_s,
                turn_rad,
            } => {
                cur = render_gait(
                    &mut tl,
                    *speed,
                    *duration_s,
                    *turn_rad,
                    0.12,
                    0.0,
                    cur,
                    &mut yaw,
                    subject,
                    rng,
                );
            }
            Phase::Stairs {
                up,
                speed,
                duration_s,
            } => {
                let lean = if *up { 0.12 } else { -0.10 };
                cur = render_gait(
                    &mut tl,
                    *speed * 0.9,
                    *duration_s,
                    0.0,
                    0.20,
                    lean,
                    cur,
                    &mut yaw,
                    subject,
                    rng,
                );
            }
            Phase::Ladder { up, duration_s } => {
                cur = render_ladder(&mut tl, *up, *duration_s, cur, yaw, subject, rng);
            }
            Phase::Transition {
                from: _,
                to,
                duration_s,
                bump_g,
            } => {
                cur = render_transition(&mut tl, *to, *duration_s, *bump_g, cur, yaw, subject, rng);
            }
            Phase::Jump {
                flight_s,
                landing_g,
            } => {
                cur = render_jump(&mut tl, *flight_s, *landing_g, cur, yaw, subject, rng);
            }
            Phase::Stumble { severity_g } => {
                cur = render_stumble(&mut tl, *severity_g, cur, yaw, subject, rng);
            }
            Phase::Fall(spec) => {
                cur = render_fall(&mut tl, spec, cur, yaw, subject, rng);
            }
        }
    }

    finalize(tl, subject, rng)
}

fn initial_orientation(phase: &Phase) -> (f64, f64) {
    match phase {
        Phase::Still { posture, .. } => posture.orientation(),
        Phase::Transition { from, .. } => from.orientation(),
        _ => (0.0, 0.0),
    }
}

#[allow(clippy::too_many_arguments)]
fn render_still(
    tl: &mut Timeline,
    posture: Posture,
    duration_s: f64,
    cur: (f64, f64),
    yaw: f64,
    subject: &Subject,
    rng: &mut GenRng,
) -> (f64, f64) {
    let (tp, tr) = posture.orientation();
    let n = to_samples(duration_s);
    // Settle from `cur` to the posture over the first 300 ms, then sway.
    let settle = to_samples(0.3).min(n);
    let sway_amp = 0.012 * subject.amplitude_scale;
    let sway_f = rng.uniform(0.2, 0.35);
    let phase0 = rng.uniform(0.0, std::f64::consts::TAU);
    for i in 0..n {
        let t = i as f64 / SAMPLE_RATE_HZ;
        let s = if i < settle {
            smoothstep(i as f64 / settle as f64)
        } else {
            1.0
        };
        let sway = sway_amp * (std::f64::consts::TAU * sway_f * t + phase0).sin();
        let p = cur.0 + (tp - cur.0) * s + sway;
        let r = cur.1 + (tr - cur.1) * s + 0.6 * sway;
        tl.push(p, r, yaw, 0.0, [0.0, 0.0, 0.0]);
    }
    (tp, tr)
}

/// Shared rhythmic locomotion renderer (walking, jogging, stairs).
#[allow(clippy::too_many_arguments)]
fn render_gait(
    tl: &mut Timeline,
    speed: f64,
    duration_s: f64,
    turn_rad: f64,
    vert_amp_base: f64,
    lean: f64,
    cur: (f64, f64),
    yaw: &mut f64,
    subject: &Subject,
    rng: &mut GenRng,
) -> (f64, f64) {
    let n = to_samples(duration_s);
    let step_f = subject.gait_frequency_hz * (0.8 + 0.35 * speed);
    let amp = subject.amplitude_scale * speed.sqrt();
    let vert_amp = vert_amp_base * amp;
    let base_pitch = 0.06 * speed + lean;
    let settle = to_samples(0.25).min(n);
    let phase0 = rng.uniform(0.0, std::f64::consts::TAU);
    let yaw0 = *yaw;
    for i in 0..n {
        let t = i as f64 / SAMPLE_RATE_HZ;
        let s = if i < settle {
            smoothstep(i as f64 / settle as f64)
        } else {
            1.0
        };
        let w = std::f64::consts::TAU * step_f * t + phase0;
        // Torso bobs at step frequency, rocks laterally at half of it.
        let p = cur.0 + (base_pitch - cur.0) * s + 0.035 * amp * w.sin();
        let r = cur.1 * (1.0 - s) + 0.05 * amp * (0.5 * w).sin();
        // Turn concentrated in the middle of the phase.
        let yw = yaw0 + turn_rad * smoothstep((t / duration_s - 0.25) / 0.5);
        let v = vert_amp * (w + 0.6).sin() + 0.04 * amp * (2.0 * w).sin();
        let ap = 0.06 * amp * w.cos();
        tl.push(p, r, yw, 0.0, [ap, 0.0, v]);
        *yaw = yw;
    }
    (base_pitch, 0.0)
}

#[allow(clippy::too_many_arguments)]
fn render_ladder(
    tl: &mut Timeline,
    up: bool,
    duration_s: f64,
    cur: (f64, f64),
    yaw: f64,
    subject: &Subject,
    rng: &mut GenRng,
) -> (f64, f64) {
    let n = to_samples(duration_s);
    let rung_f = 0.7 * subject.tempo_scale; // slow, deliberate
    let lean = if up { 0.18 } else { 0.22 };
    let settle = to_samples(0.3).min(n);
    let phase0 = rng.uniform(0.0, std::f64::consts::TAU);
    for i in 0..n {
        let t = i as f64 / SAMPLE_RATE_HZ;
        let s = if i < settle {
            smoothstep(i as f64 / settle as f64)
        } else {
            1.0
        };
        let w = std::f64::consts::TAU * rung_f * t + phase0;
        let p = cur.0 + (lean - cur.0) * s + 0.02 * w.sin();
        let r = cur.1 * (1.0 - s) + 0.04 * (0.5 * w).sin();
        let v = 0.08 * subject.amplitude_scale * w.sin().max(0.0); // pull-ups per rung
        tl.push(p, r, yaw, 0.0, [0.0, 0.02 * w.cos(), v]);
    }
    (lean, 0.0)
}

#[allow(clippy::too_many_arguments)]
fn render_transition(
    tl: &mut Timeline,
    to: Posture,
    duration_s: f64,
    bump_g: f64,
    cur: (f64, f64),
    yaw: f64,
    subject: &Subject,
    _rng: &mut GenRng,
) -> (f64, f64) {
    let (tp, tr) = to.orientation();
    let n = to_samples(duration_s);
    // Fast drops produce a sub-1 g dip in the first half and the seat /
    // ground bump in the second half.
    let drop_depth = (bump_g * 0.30).clamp(0.0, 0.45);
    for i in 0..n {
        let u = i as f64 / n as f64;
        let s = smoothstep(u);
        let p = cur.0 + (tp - cur.0) * s;
        let r = cur.1 + (tr - cur.1) * s;
        let ff = if u < 0.55 {
            drop_depth * (std::f64::consts::PI * u / 0.55).sin().max(0.0)
        } else {
            0.0
        };
        let bump = if u >= 0.55 {
            bump_g * subject.amplitude_scale * (std::f64::consts::PI * (u - 0.55) / 0.45).sin()
        } else {
            0.0
        };
        tl.push(p, r, yaw, ff, [0.0, 0.0, bump]);
    }
    (tp, tr)
}

#[allow(clippy::too_many_arguments)]
fn render_jump(
    tl: &mut Timeline,
    flight_s: f64,
    landing_g: f64,
    cur: (f64, f64),
    yaw: f64,
    subject: &Subject,
    rng: &mut GenRng,
) -> (f64, f64) {
    let crouch = to_samples(0.25);
    let push = to_samples(0.16);
    let flight = to_samples(flight_s);
    let land = to_samples(0.08);
    let recover = to_samples(0.4);
    let amp = subject.amplitude_scale;

    // Crouch: dip down, slight forward pitch.
    for i in 0..crouch {
        let u = i as f64 / crouch as f64;
        let s = smoothstep(u);
        tl.push(
            cur.0 + 0.25 * s,
            cur.1 * (1.0 - s),
            yaw,
            0.12 * (std::f64::consts::PI * u).sin(),
            [0.0, 0.0, -0.1 * amp * (std::f64::consts::PI * u).sin()],
        );
    }
    // Push-off: strong upward acceleration.
    for i in 0..push {
        let u = i as f64 / push as f64;
        tl.push(
            cur.0 + 0.25 * (1.0 - smoothstep(u)),
            0.0,
            yaw,
            0.0,
            [0.0, 0.0, 0.9 * amp * (std::f64::consts::PI * u).sin()],
        );
    }
    // Flight: near free fall with *very little rotation* — the signature
    // that separates jumps from real falls for the gyro/Euler branches.
    for i in 0..flight {
        let u = i as f64 / flight as f64;
        let ff = 0.88 * (std::f64::consts::PI * u).sin().powf(0.3);
        let wob = 0.02 * (std::f64::consts::TAU * 3.0 * u + rng.uniform(0.0, 0.1)).sin();
        tl.push(cur.0 * 0.2 + wob, wob * 0.5, yaw, ff, [0.0, 0.0, 0.0]);
    }
    // Landing spike.
    for i in 0..land {
        let u = i as f64 / land as f64;
        let spike = (landing_g - 1.0) * amp * (std::f64::consts::PI * u).sin();
        tl.push(
            cur.0 * 0.1 + 0.1 * u,
            0.0,
            yaw,
            0.0,
            [0.05 * spike, 0.0, spike],
        );
    }
    // Recover to stand.
    for i in 0..recover {
        let u = i as f64 / recover as f64;
        let s = smoothstep(u);
        let ring = 0.06 * (1.0 - u) * (std::f64::consts::TAU * 4.0 * u).sin();
        tl.push(0.1 * (1.0 - s), 0.0, yaw, 0.0, [0.0, 0.0, ring]);
    }
    (0.0, 0.0)
}

#[allow(clippy::too_many_arguments)]
fn render_stumble(
    tl: &mut Timeline,
    severity_g: f64,
    cur: (f64, f64),
    yaw: f64,
    subject: &Subject,
    rng: &mut GenRng,
) -> (f64, f64) {
    let jerk = to_samples(0.12);
    let recover = to_samples(0.38);
    let amp = subject.amplitude_scale;
    let kick = rng.uniform(0.18, 0.3);
    // The trip: sharp forward pitch kick, brief sub-1 g, AP spike.
    for i in 0..jerk {
        let u = i as f64 / jerk as f64;
        let bump = (severity_g - 1.0) * amp * (std::f64::consts::PI * u).sin();
        tl.push(
            cur.0 + kick * (std::f64::consts::PI * u).sin(),
            cur.1,
            yaw,
            0.18 * (std::f64::consts::PI * u).sin(),
            [0.7 * bump, 0.1 * bump, 0.6 * bump],
        );
    }
    // Catch and recover.
    for i in 0..recover {
        let u = i as f64 / recover as f64;
        let ring = 0.12 * (1.0 - u) * (std::f64::consts::TAU * 3.0 * u).sin();
        tl.push(
            cur.0 + kick * (1.0 - smoothstep(u)) * 0.3,
            cur.1 * (1.0 - u),
            yaw,
            0.0,
            [ring, 0.0, ring],
        );
    }
    (cur.0, 0.0)
}

#[allow(clippy::too_many_arguments)]
fn render_fall(
    tl: &mut Timeline,
    spec: &FallSpec,
    cur: (f64, f64),
    yaw: f64,
    subject: &Subject,
    rng: &mut GenRng,
) -> (f64, f64) {
    let (fp, fr) = spec.direction.final_posture().orientation();
    let n_fall = to_samples(spec.duration_s);
    let n_impact = to_samples(0.06);
    let n_settle = to_samples(0.28);
    let amp = subject.amplitude_scale;

    tl.fall_start = Some(tl.len());

    // Falling phase: accelerating rotation toward (a fraction of) the
    // final orientation, deepening free fall, growing flail.
    let rot = spec.rotation_before_impact;
    // Smooth limb-flail oscillations (white orientation noise would alias
    // into huge fake gyro rates through the finite difference).
    let flail_f = rng.uniform(3.0, 5.0);
    let flail_phase = rng.uniform(0.0, std::f64::consts::TAU);
    for i in 0..n_fall {
        let u = i as f64 / n_fall as f64;
        let t = i as f64 / SAMPLE_RATE_HZ;
        let q = u * u; // accelerating angular progress
        let w = std::f64::consts::TAU * flail_f * t + flail_phase;
        let wob = 0.03 * u;
        let p = cur.0 + (fp - cur.0) * rot * q + wob * w.sin();
        let r = cur.1 + (fr - cur.1) * rot * q + 0.7 * wob * (1.31 * w).sin();
        let ff = spec.freefall_depth * smoothstep(u * 1.25);
        let flail = 0.05 * u * amp;
        tl.push(
            p,
            r,
            yaw + 0.4 * wob * (0.77 * w).sin(),
            ff,
            [
                rng.normal(0.0, flail),
                rng.normal(0.0, flail),
                rng.normal(0.0, flail),
            ],
        );
    }

    tl.impact = Some(tl.len());

    // Impact: spike along the fall direction; hands first if dampened.
    let (wx, wy, wz) = match spec.direction {
        FallDirection::Forward => (0.75, 0.1, 0.65),
        FallDirection::Backward => (-0.75, 0.1, 0.65),
        FallDirection::Lateral(s) => (0.15, 0.8 * f64::from(s.signum()), 0.6),
    };
    let peak = if spec.hands_dampen {
        spec.impact_g * 0.55
    } else {
        spec.impact_g
    };
    for i in 0..n_impact {
        let u = i as f64 / n_impact as f64;
        let env = (std::f64::consts::PI * u).sin();
        let mag = (peak - 0.2) * amp * env;
        // Rotation completes the remaining distance through the impact.
        let q = rot + (1.0 - rot) * smoothstep(u);
        tl.push(
            cur.0 + (fp - cur.0) * q,
            cur.1 + (fr - cur.1) * q,
            yaw,
            0.0,
            [wx * mag, wy * mag, wz * mag],
        );
    }
    if spec.hands_dampen {
        // Second, softer body impact right after the hands.
        for i in 0..n_impact {
            let u = i as f64 / n_impact as f64;
            let env = (std::f64::consts::PI * u).sin();
            let mag = spec.impact_g * 0.4 * amp * env;
            tl.push(fp, fr, yaw, 0.0, [wx * mag, wy * mag, wz * mag]);
        }
    }

    // Ring-down to rest.
    for i in 0..n_settle {
        let u = i as f64 / n_settle as f64;
        let ring = 0.25 * amp * (1.0 - u) * (std::f64::consts::TAU * 6.0 * u).sin();
        tl.push(fp, fr, yaw, 0.0, [wx * ring, wy * ring, wz * ring]);
    }
    (fp, fr)
}

/// Converts the authored timeline into noisy sensor readings.
fn finalize(tl: Timeline, subject: &Subject, rng: &mut GenRng) -> RenderedSignals {
    let n = tl.len();
    let dt = 1.0 / SAMPLE_RATE_HZ;
    let noise = subject.noise_scale;
    let accel_sigma = 0.015 * noise;
    let gyro_sigma = 0.03 * noise;
    let gyro_bias = [
        rng.normal(0.0, 0.005),
        rng.normal(0.0, 0.005),
        rng.normal(0.0, 0.005),
    ];

    let mut accel = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];
    let mut gyro = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];

    for i in 0..n {
        let p = tl.pitch[i];
        let r = tl.roll[i];
        let g_scale = 1.0 - tl.ff[i];
        // Gravity in the body frame (see module docs).
        let gx = -p.sin() * g_scale;
        let gy = p.cos() * r.sin() * g_scale;
        let gz = p.cos() * r.cos() * g_scale;
        accel[0].push(gx + tl.lin[0][i] + subject.accel_bias_g[0] + rng.normal(0.0, accel_sigma));
        accel[1].push(gy + tl.lin[1][i] + subject.accel_bias_g[1] + rng.normal(0.0, accel_sigma));
        accel[2].push(gz + tl.lin[2][i] + subject.accel_bias_g[2] + rng.normal(0.0, accel_sigma));

        // Gyro: derivative of the authored orientation. Channel layout
        // matches the complementary filter: x = roll rate, y = pitch
        // rate, z = yaw rate.
        let (dp, dr, dy) = if i == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                (tl.pitch[i] - tl.pitch[i - 1]) / dt,
                (tl.roll[i] - tl.roll[i - 1]) / dt,
                (tl.yaw[i] - tl.yaw[i - 1]) / dt,
            )
        };
        gyro[0].push(dr + gyro_bias[0] + rng.normal(0.0, gyro_sigma));
        gyro[1].push(dp + gyro_bias[1] + rng.normal(0.0, gyro_sigma));
        gyro[2].push(dy + gyro_bias[2] + rng.normal(0.0, gyro_sigma));
    }

    RenderedSignals {
        accel,
        gyro,
        fall_start: tl.fall_start,
        impact: tl.impact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::script::script_for_task;
    use crate::subject::{DatasetSource, Subject, SubjectId};

    fn test_subject(seed: u64) -> Subject {
        let mut rng = GenRng::seed_from_u64(seed);
        Subject::sample(SubjectId(0), DatasetSource::SelfCollected, &mut rng)
    }

    fn render_task(id: u8, seed: u64) -> RenderedSignals {
        let subject = test_subject(seed);
        let mut rng = GenRng::seed_from_u64(seed.wrapping_mul(77));
        let a = Activity::from_task(id).unwrap();
        let script = script_for_task(a, subject.tempo_scale, &mut rng);
        render_script(&script, &subject, &mut rng)
    }

    fn mag(sig: &RenderedSignals, i: usize) -> f64 {
        (sig.accel[0][i].powi(2) + sig.accel[1][i].powi(2) + sig.accel[2][i].powi(2)).sqrt()
    }

    #[test]
    fn standing_reads_one_g_on_z() {
        let sig = render_task(1, 5);
        assert!(sig.fall_start.is_none());
        let n = sig.len();
        let mid = n / 2;
        let m: f64 = (mid - 20..mid + 20).map(|i| mag(&sig, i)).sum::<f64>() / 40.0;
        assert!((m - 1.0).abs() < 0.08, "standing magnitude {m}");
        let z: f64 = (mid - 20..mid + 20).map(|i| sig.accel[2][i]).sum::<f64>() / 40.0;
        assert!(z > 0.9, "gravity on z: {z}");
    }

    #[test]
    fn lying_reorients_gravity() {
        let sig = render_task(17, 6); // lie on the floor
        let n = sig.len();
        let mid = n / 2;
        let x: f64 = (mid - 10..mid + 10).map(|i| sig.accel[0][i]).sum::<f64>() / 20.0;
        // LyingBack: pitch = -1.35 → a_x = -sin(-1.35) ≈ +0.976.
        assert!(x > 0.8, "gravity moved to +x when supine: {x}");
    }

    #[test]
    fn falls_have_labels_and_adls_do_not() {
        for id in 1..=44u8 {
            let a = Activity::from_task(id).unwrap();
            let sig = render_task(id, u64::from(id) + 100);
            if a.is_fall() {
                let fs = sig.fall_start.expect("fall_start");
                let im = sig.impact.expect("impact");
                assert!(fs < im, "task {id}: fall_start {fs} >= impact {im}");
                assert!(im < sig.len(), "task {id}: impact out of range");
            } else {
                assert!(sig.fall_start.is_none(), "task {id}");
                assert!(sig.impact.is_none(), "task {id}");
            }
        }
    }

    #[test]
    fn falling_phase_shows_freefall_signature() {
        let sig = render_task(30, 11); // forward fall while walking (trip)
        let fs = sig.fall_start.unwrap();
        let im = sig.impact.unwrap();
        // Late falling phase: magnitude well below 1 g.
        let late = im - 3;
        let m_late = mag(&sig, late);
        assert!(m_late < 0.65, "late falling magnitude {m_late}");
        // Before the fall (walking): magnitude near 1 g on average.
        let pre: f64 = (fs.saturating_sub(60)..fs.saturating_sub(10))
            .map(|i| mag(&sig, i))
            .sum::<f64>()
            / 50.0;
        assert!((pre - 1.0).abs() < 0.25, "pre-fall magnitude {pre}");
    }

    #[test]
    fn impact_spike_exceeds_three_g() {
        for id in [30u8, 31, 34, 39, 40] {
            let sig = render_task(id, u64::from(id) * 3 + 7);
            let im = sig.impact.unwrap();
            let peak = (im..(im + 12).min(sig.len()))
                .map(|i| mag(&sig, i))
                .fold(0.0f64, f64::max);
            assert!(peak > 2.5, "task {id}: impact peak {peak}");
        }
    }

    #[test]
    fn fall_rotation_visible_in_gyro_for_trip_falls() {
        let sig = render_task(30, 13);
        let fs = sig.fall_start.unwrap();
        let im = sig.impact.unwrap();
        let peak_rate = (fs..im)
            .map(|i| sig.gyro[1][i].abs()) // pitch rate for a forward fall
            .fold(0.0f64, f64::max);
        assert!(peak_rate > 1.0, "peak pitch rate {peak_rate} rad/s");
    }

    #[test]
    fn height_fall_rotates_less_than_trip_fall() {
        let mut trip_peak = 0.0;
        let mut height_peak = 0.0;
        for seed in 0..8u64 {
            let t = render_task(30, 1000 + seed);
            let h = render_task(40, 2000 + seed);
            let peak = |s: &RenderedSignals| {
                let fs = s.fall_start.unwrap();
                let im = s.impact.unwrap();
                (fs..im)
                    .map(|i| s.gyro[1][i].abs().max(s.gyro[0][i].abs()))
                    .fold(0.0f64, f64::max)
            };
            trip_peak += peak(&t);
            height_peak += peak(&h);
        }
        assert!(
            height_peak < 0.7 * trip_peak,
            "height {height_peak} vs trip {trip_peak}"
        );
    }

    #[test]
    fn jump_has_freefall_but_little_rotation() {
        let sig = render_task(4, 21);
        // Find the minimum-magnitude window (flight).
        let min_mag = (0..sig.len())
            .map(|i| mag(&sig, i))
            .fold(f64::MAX, f64::min);
        assert!(min_mag < 0.45, "flight magnitude {min_mag}");
        let max_rate = (0..sig.len())
            .map(|i| sig.gyro[0][i].abs().max(sig.gyro[1][i].abs()))
            .fold(0.0f64, f64::max);
        assert!(max_rate < 3.0, "jump peak rotation {max_rate} rad/s");
    }

    #[test]
    fn rendering_is_deterministic_per_seed() {
        let a = render_task(30, 99);
        let b = render_task(30, 99);
        assert_eq!(a.accel[0], b.accel[0]);
        assert_eq!(a.gyro[2], b.gyro[2]);
        assert_eq!(a.fall_start, b.fall_start);
    }

    #[test]
    fn different_subjects_render_differently() {
        let a = render_task(6, 1);
        let b = render_task(6, 2);
        assert_ne!(a.accel[2], b.accel[2]);
    }

    #[test]
    fn all_samples_finite_and_bounded() {
        for id in 1..=44u8 {
            let sig = render_task(id, u64::from(id) + 500);
            for c in 0..3 {
                for i in 0..sig.len() {
                    assert!(sig.accel[c][i].is_finite());
                    assert!(
                        sig.accel[c][i].abs() < 12.0,
                        "task {id} accel {}",
                        sig.accel[c][i]
                    );
                    assert!(sig.gyro[c][i].is_finite());
                    assert!(
                        sig.gyro[c][i].abs() < 40.0,
                        "task {id} gyro {}",
                        sig.gyro[c][i]
                    );
                }
            }
        }
    }

    #[test]
    fn trial_lengths_are_plausible() {
        for id in 1..=44u8 {
            let sig = render_task(id, u64::from(id) + 900);
            let secs = sig.len() as f64 / SAMPLE_RATE_HZ;
            assert!((2.0..40.0).contains(&secs), "task {id}: {secs} s");
        }
    }
}
