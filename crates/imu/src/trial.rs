//! A single recorded trial: one subject performing one Table II task.
//!
//! A trial carries the nine canonical channels (accelerometer in g,
//! gyroscope in rad/s, and Euler angles computed by the same
//! complementary filter the acquisition firmware runs) plus the
//! frame-accurate fall labels.

use crate::activity::{Activity, TaskId};
use crate::channel::{Channel, NUM_CHANNELS};
use crate::generator::RenderedSignals;
use crate::subject::{DatasetSource, SubjectId};
use crate::{ImuError, AIRBAG_INFLATION_SAMPLES, SAMPLE_RATE_HZ};
use prefall_dsp::fusion::ComplementaryFilter;
use serde::{Deserialize, Serialize};

/// The complementary-filter gyro-trust coefficient used by the
/// acquisition firmware model (time constant ≈ 0.5 s at 100 Hz).
pub const FUSION_ALPHA: f64 = 0.98;

/// One recorded trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trial {
    /// Subject who performed the trial.
    pub subject: SubjectId,
    /// The Table II task.
    pub task: TaskId,
    /// Repetition index (0-based) of this task by this subject.
    pub trial_index: u16,
    /// Originating dataset.
    pub source: DatasetSource,
    channels: Vec<Vec<f32>>,
    fall_start: Option<usize>,
    impact: Option<usize>,
}

impl Trial {
    /// Builds a trial from rendered raw signals, computing the Euler
    /// channels with the firmware's complementary filter.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::InvalidLabels`] when the labels are
    /// inconsistent with the signal length or each other.
    pub fn from_rendered(
        subject: SubjectId,
        task: TaskId,
        trial_index: u16,
        source: DatasetSource,
        signals: &RenderedSignals,
    ) -> Result<Self, ImuError> {
        let n = signals.len();
        validate_labels(signals.fall_start, signals.impact, n)?;

        let to_f32 = |v: &[f64]| v.iter().map(|&x| x as f32).collect::<Vec<f32>>();
        let ax = to_f32(&signals.accel[0]);
        let ay = to_f32(&signals.accel[1]);
        let az = to_f32(&signals.accel[2]);
        let gx = to_f32(&signals.gyro[0]);
        let gy = to_f32(&signals.gyro[1]);
        let gz = to_f32(&signals.gyro[2]);

        let mut fusion = ComplementaryFilter::new(SAMPLE_RATE_HZ, FUSION_ALPHA);
        let (pitch, roll, yaw) = fusion.process_channels([&ax, &ay, &az], [&gx, &gy, &gz]);

        Ok(Self {
            subject,
            task,
            trial_index,
            source,
            channels: vec![ax, ay, az, gx, gy, gz, pitch, roll, yaw],
            fall_start: signals.fall_start,
            impact: signals.impact,
        })
    }

    /// Builds a trial directly from nine canonical channels (used by the
    /// CSV loader and tests).
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::InvalidLabels`] for inconsistent labels or
    /// ragged/wrong channel counts.
    pub fn from_channels(
        subject: SubjectId,
        task: TaskId,
        trial_index: u16,
        source: DatasetSource,
        channels: Vec<Vec<f32>>,
        fall_start: Option<usize>,
        impact: Option<usize>,
    ) -> Result<Self, ImuError> {
        if channels.len() != NUM_CHANNELS {
            return Err(ImuError::InvalidLabels {
                reason: format!("expected {NUM_CHANNELS} channels, got {}", channels.len()),
            });
        }
        let n = channels[0].len();
        if channels.iter().any(|c| c.len() != n) {
            return Err(ImuError::InvalidLabels {
                reason: "channels have unequal lengths".to_string(),
            });
        }
        validate_labels(fall_start, impact, n)?;
        Ok(Self {
            subject,
            task,
            trial_index,
            source,
            channels,
            fall_start,
            impact,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// `true` when the trial carries no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Trial duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / SAMPLE_RATE_HZ
    }

    /// All nine channels in storage order.
    pub fn channels(&self) -> &[Vec<f32>] {
        &self.channels
    }

    /// One channel's samples.
    pub fn channel(&self, c: Channel) -> &[f32] {
        &self.channels[c.index()]
    }

    /// The activity metadata for this trial's task.
    pub fn activity(&self) -> &'static Activity {
        Activity::from_task(self.task.get()).expect("stored task id is valid")
    }

    /// `true` when the task ends in a fall.
    pub fn is_fall(&self) -> bool {
        self.fall_start.is_some()
    }

    /// Sample index where the falling phase starts, if any.
    pub fn fall_start(&self) -> Option<usize> {
        self.fall_start
    }

    /// Sample index of ground impact, if any.
    pub fn impact(&self) -> Option<usize> {
        self.impact
    }

    /// The *usable* falling range: fall start up to impact minus the
    /// 150 ms airbag inflation budget.
    ///
    /// Per the paper, segments in the final 150 ms are excluded from the
    /// falling class — a detector firing there cannot save the wearer.
    /// Returns `None` for ADL trials or when the falling phase is shorter
    /// than the budget.
    pub fn usable_fall_range(&self) -> Option<std::ops::Range<usize>> {
        let start = self.fall_start?;
        let impact = self.impact?;
        let end = impact.checked_sub(AIRBAG_INFLATION_SAMPLES)?;
        (start < end).then_some(start..end)
    }

    /// Replaces the Euler channels by re-running sensor fusion over the
    /// stored accel/gyro channels (used after alignment).
    pub fn recompute_euler(&mut self) {
        let mut fusion = ComplementaryFilter::new(SAMPLE_RATE_HZ, FUSION_ALPHA);
        let (pitch, roll, yaw) = {
            let (a, rest) = self.channels.split_at(3);
            let g = &rest[..3];
            fusion.process_channels([&a[0], &a[1], &a[2]], [&g[0], &g[1], &g[2]])
        };
        self.channels[6] = pitch;
        self.channels[7] = roll;
        self.channels[8] = yaw;
    }

    /// Mutable access to one channel (used by alignment and filtering).
    pub(crate) fn channel_mut(&mut self, c: Channel) -> &mut Vec<f32> {
        &mut self.channels[c.index()]
    }
}

fn validate_labels(
    fall_start: Option<usize>,
    impact: Option<usize>,
    len: usize,
) -> Result<(), ImuError> {
    match (fall_start, impact) {
        (None, None) => Ok(()),
        (Some(fs), Some(im)) => {
            if fs >= im {
                Err(ImuError::InvalidLabels {
                    reason: format!("fall_start {fs} is not before impact {im}"),
                })
            } else if im >= len {
                Err(ImuError::InvalidLabels {
                    reason: format!("impact {im} beyond trial length {len}"),
                })
            } else {
                Ok(())
            }
        }
        _ => Err(ImuError::InvalidLabels {
            reason: "fall_start and impact must both be present or both absent".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::generator::render_script;
    use crate::rng::GenRng;
    use crate::script::script_for_task;
    use crate::subject::Subject;

    fn make_trial(task: u8, seed: u64) -> Trial {
        let mut rng = GenRng::seed_from_u64(seed);
        let subject = Subject::sample(SubjectId(1), DatasetSource::SelfCollected, &mut rng);
        let a = Activity::from_task(task).unwrap();
        let script = script_for_task(a, subject.tempo_scale, &mut rng);
        let signals = render_script(&script, &subject, &mut rng);
        Trial::from_rendered(
            SubjectId(1),
            a.id,
            0,
            DatasetSource::SelfCollected,
            &signals,
        )
        .unwrap()
    }

    #[test]
    fn trial_has_nine_equal_channels() {
        let t = make_trial(6, 3);
        assert_eq!(t.channels().len(), NUM_CHANNELS);
        let n = t.len();
        for c in Channel::ALL {
            assert_eq!(t.channel(c).len(), n);
        }
        assert!(!t.is_empty());
        assert!(t.duration_s() > 1.0);
    }

    #[test]
    fn euler_channels_track_posture() {
        // A fall forward ends with pitch near +90° — the fused pitch
        // channel must see most of that change by the end of the trial.
        let t = make_trial(30, 5);
        let pitch = t.channel(Channel::Pitch);
        let early = pitch[10];
        let late = pitch[t.len() - 5];
        assert!(
            (late - early) > 0.7,
            "fused pitch change too small: {early} -> {late}"
        );
    }

    #[test]
    fn usable_fall_range_excludes_last_150ms() {
        let t = make_trial(30, 7);
        let r = t.usable_fall_range().expect("long fall has usable range");
        assert_eq!(r.start, t.fall_start().unwrap());
        assert_eq!(r.end, t.impact().unwrap() - AIRBAG_INFLATION_SAMPLES);
    }

    #[test]
    fn adl_trial_has_no_fall_labels() {
        let t = make_trial(6, 9);
        assert!(!t.is_fall());
        assert!(t.usable_fall_range().is_none());
        assert!(t.fall_start().is_none());
        assert!(t.impact().is_none());
    }

    #[test]
    fn label_validation_rejects_inconsistencies() {
        let ch = vec![vec![0.0f32; 100]; NUM_CHANNELS];
        let mk = |fs, im| {
            Trial::from_channels(
                SubjectId(0),
                TaskId::new(30).unwrap(),
                0,
                DatasetSource::SelfCollected,
                ch.clone(),
                fs,
                im,
            )
        };
        assert!(mk(Some(50), Some(40)).is_err(), "impact before start");
        assert!(mk(Some(50), Some(120)).is_err(), "impact out of range");
        assert!(mk(Some(50), None).is_err(), "half-labelled");
        assert!(mk(None, Some(50)).is_err(), "half-labelled");
        assert!(mk(Some(40), Some(80)).is_ok());
        assert!(mk(None, None).is_ok());
    }

    #[test]
    fn from_channels_rejects_bad_shapes() {
        let bad_count = vec![vec![0.0f32; 10]; 5];
        assert!(Trial::from_channels(
            SubjectId(0),
            TaskId::new(1).unwrap(),
            0,
            DatasetSource::KFall,
            bad_count,
            None,
            None
        )
        .is_err());

        let mut ragged = vec![vec![0.0f32; 10]; NUM_CHANNELS];
        ragged[3] = vec![0.0; 9];
        assert!(Trial::from_channels(
            SubjectId(0),
            TaskId::new(1).unwrap(),
            0,
            DatasetSource::KFall,
            ragged,
            None,
            None
        )
        .is_err());
    }

    #[test]
    fn short_fall_has_no_usable_range() {
        // Fall of only 10 samples (< 15-sample airbag budget).
        let ch = vec![vec![0.0f32; 100]; NUM_CHANNELS];
        let t = Trial::from_channels(
            SubjectId(0),
            TaskId::new(30).unwrap(),
            0,
            DatasetSource::SelfCollected,
            ch,
            Some(50),
            Some(60),
        )
        .unwrap();
        assert!(t.usable_fall_range().is_none());
    }

    #[test]
    fn recompute_euler_is_idempotent() {
        let mut t = make_trial(30, 21);
        let p1 = t.channel(Channel::Pitch).to_vec();
        t.recompute_euler();
        let p2 = t.channel(Channel::Pitch).to_vec();
        assert_eq!(p1, p2);
    }
}
