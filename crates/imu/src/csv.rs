//! CSV import/export of trials, for inspection and interoperability.
//!
//! Format: a header row, then one row per sample:
//!
//! ```text
//! sample,accel_x,accel_y,accel_z,gyro_x,gyro_y,gyro_z,pitch,roll,yaw,phase
//! ```
//!
//! The `phase` column carries the frame labels (`pre`, `falling`,
//! `inflation`, `impact`, `post`) so exported falls can be eyeballed in
//! any plotting tool — the synthetic stand-in for the paper's
//! video-synchronised annotation.

use crate::activity::TaskId;
use crate::channel::{Channel, NUM_CHANNELS};
use crate::subject::{DatasetSource, SubjectId};
use crate::trial::Trial;
use crate::{ImuError, AIRBAG_INFLATION_SAMPLES};
use std::io::{BufRead, Write};

/// The per-sample phase label used in CSV exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseLabel {
    /// Before the fall (or the entire trial, for ADLs).
    Pre,
    /// Falling, usable for detection (ends 150 ms before impact).
    Falling,
    /// Falling, inside the 150 ms airbag-inflation budget.
    Inflation,
    /// The impact itself (first 100 ms after contact).
    Impact,
    /// Lying on the ground afterwards.
    Post,
}

impl PhaseLabel {
    /// The label for sample `i` of a trial.
    pub fn of(trial: &Trial, i: usize) -> PhaseLabel {
        match (trial.fall_start(), trial.impact()) {
            (Some(fs), Some(im)) => {
                if i < fs {
                    PhaseLabel::Pre
                } else if i < im.saturating_sub(AIRBAG_INFLATION_SAMPLES) {
                    PhaseLabel::Falling
                } else if i < im {
                    PhaseLabel::Inflation
                } else if i < im + 10 {
                    PhaseLabel::Impact
                } else {
                    PhaseLabel::Post
                }
            }
            _ => PhaseLabel::Pre,
        }
    }

    /// The CSV token.
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseLabel::Pre => "pre",
            PhaseLabel::Falling => "falling",
            PhaseLabel::Inflation => "inflation",
            PhaseLabel::Impact => "impact",
            PhaseLabel::Post => "post",
        }
    }
}

impl std::fmt::Display for PhaseLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Writes a trial as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trial<W: Write>(trial: &Trial, mut w: W) -> std::io::Result<()> {
    write!(w, "sample")?;
    for c in Channel::ALL {
        write!(w, ",{}", c.name())?;
    }
    writeln!(w, ",phase")?;
    for i in 0..trial.len() {
        write!(w, "{i}")?;
        for c in Channel::ALL {
            write!(w, ",{:.6}", trial.channel(c)[i])?;
        }
        writeln!(w, ",{}", PhaseLabel::of(trial, i))?;
    }
    Ok(())
}

/// Reads a trial back from CSV produced by [`write_trial`].
///
/// Labels are reconstructed from the `phase` column: `fall_start` is the
/// first `falling`/`inflation` sample, `impact` the first `impact`
/// sample.
///
/// # Errors
///
/// Returns [`ImuError::ParseCsv`] on malformed input.
pub fn read_trial<R: BufRead>(
    r: R,
    subject: SubjectId,
    task: TaskId,
    source: DatasetSource,
) -> Result<Trial, ImuError> {
    let mut channels: Vec<Vec<f32>> = vec![Vec::new(); NUM_CHANNELS];
    let mut fall_start = None;
    let mut impact = None;

    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| ImuError::ParseCsv {
            line: lineno + 1,
            reason: e.to_string(),
        })?;
        if lineno == 0 {
            if !line.starts_with("sample,") {
                return Err(ImuError::ParseCsv {
                    line: 1,
                    reason: "missing header row".to_string(),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != NUM_CHANNELS + 2 {
            return Err(ImuError::ParseCsv {
                line: lineno + 1,
                reason: format!("expected {} fields, got {}", NUM_CHANNELS + 2, fields.len()),
            });
        }
        let idx = channels[0].len();
        for (c, field) in fields[1..=NUM_CHANNELS].iter().enumerate() {
            let v: f32 = field.parse().map_err(|_| ImuError::ParseCsv {
                line: lineno + 1,
                reason: format!("bad float {field:?}"),
            })?;
            channels[c].push(v);
        }
        match *fields.last().expect("length checked") {
            "falling" | "inflation" => {
                fall_start.get_or_insert(idx);
            }
            "impact" => {
                impact.get_or_insert(idx);
            }
            "pre" | "post" => {}
            other => {
                return Err(ImuError::ParseCsv {
                    line: lineno + 1,
                    reason: format!("unknown phase label {other:?}"),
                });
            }
        }
    }

    Trial::from_channels(subject, task, 0, source, channels, fall_start, impact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn sample_trials() -> Dataset {
        Dataset::combined_scaled(0, 1, 17).unwrap()
    }

    #[test]
    fn roundtrip_fall_trial() {
        let ds = sample_trials();
        let t = ds.trials().iter().find(|t| t.is_fall()).unwrap();
        let mut buf = Vec::new();
        write_trial(t, &mut buf).unwrap();
        let back = read_trial(&buf[..], t.subject, t.task, t.source).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.fall_start(), t.fall_start());
        assert_eq!(back.impact(), t.impact());
        for c in Channel::ALL {
            for i in 0..t.len() {
                assert!(
                    (back.channel(c)[i] - t.channel(c)[i]).abs() < 1e-5,
                    "{c} sample {i}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_adl_trial() {
        let ds = sample_trials();
        let t = ds.trials().iter().find(|t| !t.is_fall()).unwrap();
        let mut buf = Vec::new();
        write_trial(t, &mut buf).unwrap();
        let back = read_trial(&buf[..], t.subject, t.task, t.source).unwrap();
        assert!(!back.is_fall());
        assert_eq!(back.len(), t.len());
    }

    #[test]
    fn phase_labels_partition_fall_trial() {
        let ds = sample_trials();
        let t = ds.trials().iter().find(|t| t.is_fall()).unwrap();
        let labels: Vec<PhaseLabel> = (0..t.len()).map(|i| PhaseLabel::of(t, i)).collect();
        // Phases appear in order pre → falling → inflation → impact → post.
        let order = |l: PhaseLabel| match l {
            PhaseLabel::Pre => 0,
            PhaseLabel::Falling => 1,
            PhaseLabel::Inflation => 2,
            PhaseLabel::Impact => 3,
            PhaseLabel::Post => 4,
        };
        for w in labels.windows(2) {
            assert!(order(w[0]) <= order(w[1]), "{:?} then {:?}", w[0], w[1]);
        }
        assert!(labels.contains(&PhaseLabel::Falling));
        assert!(labels.contains(&PhaseLabel::Inflation));
        assert!(labels.contains(&PhaseLabel::Impact));
    }

    #[test]
    fn inflation_budget_is_150ms() {
        let ds = sample_trials();
        let t = ds.trials().iter().find(|t| t.is_fall()).unwrap();
        let n_inflation = (0..t.len())
            .filter(|&i| PhaseLabel::of(t, i) == PhaseLabel::Inflation)
            .count();
        assert_eq!(n_inflation, AIRBAG_INFLATION_SAMPLES);
    }

    #[test]
    fn rejects_malformed_csv() {
        let no_header = b"1,2,3\n" as &[u8];
        assert!(read_trial(
            no_header,
            SubjectId(0),
            TaskId::new(1).unwrap(),
            DatasetSource::KFall
        )
        .is_err());

        let bad_fields = b"sample,a\n0,1\n" as &[u8];
        assert!(read_trial(
            bad_fields,
            SubjectId(0),
            TaskId::new(1).unwrap(),
            DatasetSource::KFall
        )
        .is_err());

        let bad_float =
            b"sample,accel_x,accel_y,accel_z,gyro_x,gyro_y,gyro_z,pitch,roll,yaw,phase\n0,x,0,0,0,0,0,0,0,0,pre\n"
                as &[u8];
        assert!(read_trial(
            bad_float,
            SubjectId(0),
            TaskId::new(1).unwrap(),
            DatasetSource::KFall
        )
        .is_err());

        let bad_phase =
            b"sample,accel_x,accel_y,accel_z,gyro_x,gyro_y,gyro_z,pitch,roll,yaw,phase\n0,0,0,0,0,0,0,0,0,0,nope\n"
                as &[u8];
        assert!(read_trial(
            bad_phase,
            SubjectId(0),
            TaskId::new(1).unwrap(),
            DatasetSource::KFall
        )
        .is_err());
    }
}
