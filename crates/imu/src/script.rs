//! Motion scripts: every Table II task expressed as a sequence of motion
//! primitives the synthesizer can render.
//!
//! A script is a `Vec<Phase>`. Fall tasks contain exactly one
//! [`Phase::Fall`], whose rendering records the frame-accurate
//! `fall_start` and `impact` labels (the synthetic equivalent of the
//! paper's video-synchronised frame-by-frame annotation).

use crate::activity::{Activity, ActivityClass, FallCategory};
use crate::rng::GenRng;

/// Static body postures, each with a characteristic sensor orientation
/// (the unit is worn on the upper back).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Posture {
    /// Upright stance.
    Standing,
    /// Seated on a chair, slight recline.
    Sitting,
    /// Seated on the ground.
    SittingGround,
    /// Deep crouch / bend forward.
    Crouch,
    /// Lying face-down (after a forward fall).
    LyingFront,
    /// Lying on the back.
    LyingBack,
    /// Lying on the side; `+1` right, `-1` left.
    LyingSide(i8),
}

impl Posture {
    /// The nominal (pitch, roll) of the trunk sensor in this posture,
    /// radians. Pitch is positive tipping forward.
    pub fn orientation(self) -> (f64, f64) {
        match self {
            Posture::Standing => (0.0, 0.0),
            Posture::Sitting => (-0.12, 0.0),
            Posture::SittingGround => (-0.25, 0.0),
            Posture::Crouch => (0.85, 0.0),
            Posture::LyingFront => (1.35, 0.0),
            Posture::LyingBack => (-1.35, 0.0),
            Posture::LyingSide(s) => (0.0, 1.35 * f64::from(s.signum())),
        }
    }
}

/// Direction a fall throws the trunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallDirection {
    /// Face-first.
    Forward,
    /// Onto the back.
    Backward,
    /// Onto the side; `+1` right, `-1` left.
    Lateral(i8),
}

impl FallDirection {
    /// The lying posture the fall ends in.
    pub fn final_posture(self) -> Posture {
        match self {
            FallDirection::Forward => Posture::LyingFront,
            FallDirection::Backward => Posture::LyingBack,
            FallDirection::Lateral(s) => Posture::LyingSide(s),
        }
    }
}

/// Parameters of one fall event.
#[derive(Debug, Clone, PartialEq)]
pub struct FallSpec {
    /// Direction of the fall.
    pub direction: FallDirection,
    /// Posture at fall onset.
    pub from: Posture,
    /// Falling-phase duration in seconds (onset → impact). The paper
    /// reports 0.15–1.1 s in the wild.
    pub duration_s: f64,
    /// Peak free-fall depth in `[0, 1]`: how far the specific-force
    /// magnitude sinks below 1 g (1 = perfect free fall).
    pub freefall_depth: f64,
    /// Fraction of the posture rotation actually achieved *before*
    /// impact (vertical collapses rotate little until they hit).
    pub rotation_before_impact: f64,
    /// Peak impact magnitude in g.
    pub impact_g: f64,
    /// Whether the hands break the fall first (double impact, softer).
    pub hands_dampen: bool,
}

/// One motion primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Hold a posture with breathing sway.
    Still {
        /// Posture to hold.
        posture: Posture,
        /// Hold duration in seconds.
        duration_s: f64,
    },
    /// Rhythmic locomotion (walking/jogging).
    Walk {
        /// Speed multiplier (1 = normal walk, ~1.8 jog, ~2.2 fast jog).
        speed: f64,
        /// Duration in seconds.
        duration_s: f64,
        /// Net heading change over the phase, radians (the "with turn").
        turn_rad: f64,
    },
    /// Stair locomotion (stronger vertical bounce than level walking).
    Stairs {
        /// `true` for ascending.
        up: bool,
        /// Speed multiplier.
        speed: f64,
        /// Duration in seconds.
        duration_s: f64,
    },
    /// Slow rhythmic ladder climb with per-rung pauses.
    Ladder {
        /// `true` for ascending.
        up: bool,
        /// Duration in seconds.
        duration_s: f64,
    },
    /// Smooth posture change (sit down, stand up, bend, lie down).
    Transition {
        /// Starting posture.
        from: Posture,
        /// Ending posture.
        to: Posture,
        /// Duration in seconds (shorter = more vigorous).
        duration_s: f64,
        /// Peak linear-acceleration bump in g (vertical axis), signed:
        /// positive for decelerating into a seat, etc.
        bump_g: f64,
    },
    /// A vertical jump: crouch, push-off, flight (near free fall,
    /// little rotation), landing spike.
    Jump {
        /// Flight time in seconds.
        flight_s: f64,
        /// Landing-impact magnitude in g.
        landing_g: f64,
    },
    /// A walking perturbation with sharp spike and recovery, no fall.
    Stumble {
        /// Spike magnitude in g.
        severity_g: f64,
    },
    /// The fall event itself (falling phase + impact + settle).
    Fall(FallSpec),
}

impl Phase {
    /// Nominal duration of this phase in seconds (settle time after a
    /// fall impact is accounted for by the following `Still`).
    pub fn duration_s(&self) -> f64 {
        match self {
            Phase::Still { duration_s, .. }
            | Phase::Walk { duration_s, .. }
            | Phase::Stairs { duration_s, .. }
            | Phase::Ladder { duration_s, .. }
            | Phase::Transition { duration_s, .. } => *duration_s,
            Phase::Jump { flight_s, .. } => flight_s + 0.9, // crouch+push+land
            Phase::Stumble { .. } => 0.5,
            Phase::Fall(spec) => spec.duration_s + 0.35, // + impact ring-down
        }
    }
}

/// Builds the motion script for one (task, subject-jittered) trial.
///
/// `tempo` scales durations (subject tempo), `rng` jitters parameters.
pub fn script_for_task(activity: &Activity, tempo: f64, rng: &mut GenRng) -> Vec<Phase> {
    let t = |base: f64| (base / tempo).max(0.2);
    let j =
        |rng: &mut GenRng, base: f64, spread: f64| base * rng.uniform(1.0 - spread, 1.0 + spread);

    let id = activity.id.get();
    match activity.class {
        ActivityClass::Adl => adl_script(id, activity, t, |r, b, s| j(r, b, s), rng),
        ActivityClass::Fall => fall_script(id, activity, t, |r, b, s| j(r, b, s), rng),
    }
}

fn adl_script(
    id: u8,
    activity: &Activity,
    t: impl Fn(f64) -> f64,
    j: impl Fn(&mut GenRng, f64, f64) -> f64,
    rng: &mut GenRng,
) -> Vec<Phase> {
    use Posture::*;
    let d = activity.nominal_duration_s;
    match id {
        1 => vec![Phase::Still {
            posture: Standing,
            duration_s: t(d),
        }],
        2 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(1.5),
            },
            Phase::Transition {
                from: Standing,
                to: Crouch,
                duration_s: t(j(rng, 1.6, 0.2)),
                bump_g: 0.08,
            },
            Phase::Still {
                posture: Crouch,
                duration_s: t(2.5),
            },
            Phase::Transition {
                from: Crouch,
                to: Standing,
                duration_s: t(j(rng, 1.4, 0.2)),
                bump_g: 0.1,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
        ],
        3 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
            Phase::Transition {
                from: Standing,
                to: Crouch,
                duration_s: t(j(rng, 1.0, 0.2)),
                bump_g: 0.12,
            },
            Phase::Transition {
                from: Crouch,
                to: Standing,
                duration_s: t(j(rng, 1.0, 0.2)),
                bump_g: 0.12,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
        ],
        4 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(1.2),
            },
            Phase::Jump {
                flight_s: j(rng, 0.32, 0.3),
                landing_g: j(rng, 2.6, 0.3),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(1.5),
            },
        ],
        5 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
            Phase::Transition {
                from: Standing,
                to: SittingGround,
                duration_s: t(j(rng, 1.8, 0.2)),
                bump_g: 0.25,
            },
            Phase::Still {
                posture: SittingGround,
                duration_s: t(2.5),
            },
            Phase::Transition {
                from: SittingGround,
                to: Standing,
                duration_s: t(j(rng, 1.8, 0.2)),
                bump_g: 0.2,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
        ],
        6 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.8),
            },
            Phase::Walk {
                speed: 1.0,
                duration_s: t(d - 2.0),
                turn_rad: std::f64::consts::PI,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.8),
            },
        ],
        7 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
            Phase::Walk {
                speed: 1.4,
                duration_s: t(d - 1.5),
                turn_rad: std::f64::consts::PI,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
        ],
        8 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
            Phase::Walk {
                speed: 1.9,
                duration_s: t(d - 1.5),
                turn_rad: std::f64::consts::PI,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
        ],
        9 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
            Phase::Walk {
                speed: 2.3,
                duration_s: t(d - 1.2),
                turn_rad: std::f64::consts::PI,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
        ],
        10 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
            Phase::Walk {
                speed: 1.0,
                duration_s: t(2.2),
                turn_rad: 0.0,
            },
            Phase::Stumble {
                severity_g: j(rng, 2.0, 0.35),
            },
            Phase::Walk {
                speed: 1.0,
                duration_s: t(2.2),
                turn_rad: 0.0,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
        ],
        11 => vec![Phase::Still {
            posture: Sitting,
            duration_s: t(d),
        }],
        12 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
            Phase::Stairs {
                up: false,
                speed: 1.0,
                duration_s: t(d - 1.4),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
        ],
        13 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
            Phase::Transition {
                from: Standing,
                to: Sitting,
                duration_s: t(j(rng, 1.5, 0.2)),
                bump_g: 0.3,
            },
            Phase::Still {
                posture: Sitting,
                duration_s: t(2.0),
            },
            Phase::Transition {
                from: Sitting,
                to: Standing,
                duration_s: t(j(rng, 1.3, 0.2)),
                bump_g: 0.2,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
        ],
        14 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.8),
            },
            Phase::Transition {
                from: Standing,
                to: Sitting,
                duration_s: t(j(rng, 0.55, 0.2)),
                bump_g: 0.9,
            },
            Phase::Still {
                posture: Sitting,
                duration_s: t(1.2),
            },
            Phase::Transition {
                from: Sitting,
                to: Standing,
                duration_s: t(j(rng, 0.55, 0.2)),
                bump_g: 0.5,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.8),
            },
        ],
        15 => vec![
            Phase::Still {
                posture: Sitting,
                duration_s: t(1.5),
            },
            // Half-rise then collapse back: quick drop with a hard seat
            // impact and a brief sub-1 g dip — the classic hard negative.
            Phase::Transition {
                from: Sitting,
                to: Standing,
                duration_s: t(j(rng, 0.7, 0.2)),
                bump_g: 0.3,
            },
            Phase::Transition {
                from: Standing,
                to: Sitting,
                duration_s: t(j(rng, 0.32, 0.25)),
                bump_g: j(rng, 1.7, 0.3),
            },
            Phase::Still {
                posture: Sitting,
                duration_s: t(1.8),
            },
        ],
        16 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
            Phase::Stairs {
                up: false,
                speed: 1.6,
                duration_s: t(d - 1.2),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
        ],
        17 => vec![Phase::Still {
            posture: LyingBack,
            duration_s: t(d),
        }],
        18 => vec![
            Phase::Still {
                posture: SittingGround,
                duration_s: t(1.2),
            },
            Phase::Transition {
                from: SittingGround,
                to: LyingBack,
                duration_s: t(j(rng, 1.6, 0.2)),
                bump_g: 0.15,
            },
            Phase::Still {
                posture: LyingBack,
                duration_s: t(2.2),
            },
            Phase::Transition {
                from: LyingBack,
                to: SittingGround,
                duration_s: t(j(rng, 1.6, 0.2)),
                bump_g: 0.15,
            },
            Phase::Still {
                posture: SittingGround,
                duration_s: t(1.0),
            },
        ],
        19 => vec![
            Phase::Still {
                posture: SittingGround,
                duration_s: t(1.0),
            },
            Phase::Transition {
                from: SittingGround,
                to: LyingBack,
                duration_s: t(j(rng, 0.55, 0.25)),
                bump_g: 0.9,
            },
            Phase::Still {
                posture: LyingBack,
                duration_s: t(1.5),
            },
            Phase::Transition {
                from: LyingBack,
                to: SittingGround,
                duration_s: t(j(rng, 0.7, 0.25)),
                bump_g: 0.5,
            },
            Phase::Still {
                posture: SittingGround,
                duration_s: t(0.8),
            },
        ],
        35 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
            Phase::Stairs {
                up: true,
                speed: 1.0,
                duration_s: t(d - 1.4),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
        ],
        36 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
            Phase::Stairs {
                up: true,
                speed: 1.5,
                duration_s: t(d - 1.2),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
        ],
        43 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
            Phase::Stairs {
                up: true,
                speed: 1.1,
                duration_s: t((d - 2.0) / 2.0),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.8),
            },
            Phase::Stairs {
                up: false,
                speed: 1.1,
                duration_s: t((d - 2.0) / 2.0),
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
        ],
        44 => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
            Phase::Walk {
                speed: 0.8,
                duration_s: t(2.2),
                turn_rad: 0.0,
            },
            // Running-ish jump over an obstacle: long flight, hard landing
            // while moving — the most fall-like ADL (Table IVb: 20 % FP).
            Phase::Jump {
                flight_s: j(rng, 0.42, 0.25),
                landing_g: j(rng, 3.2, 0.3),
            },
            Phase::Walk {
                speed: 0.8,
                duration_s: t(2.0),
                turn_rad: 0.0,
            },
            Phase::Still {
                posture: Standing,
                duration_s: t(0.6),
            },
        ],
        _ => unreachable!("adl_script called for non-ADL task {id}"),
    }
}

fn fall_script(
    id: u8,
    activity: &Activity,
    t: impl Fn(f64) -> f64,
    j: impl Fn(&mut GenRng, f64, f64) -> f64,
    rng: &mut GenRng,
) -> Vec<Phase> {
    use FallDirection::*;
    use Posture::*;

    let side = if rng.chance(0.5) { 1 } else { -1 };
    // Per-task fall parameterisation. Duration, free-fall depth,
    // pre-impact rotation and impact severity control how *detectable*
    // the pre-impact phase is, shaping Table IVa.
    let (direction, from, dur, depth, rot, impact, hands) = match id {
        // Falls when trying to sit down: short, shallow — hard to catch.
        20 => (
            Forward,
            Standing,
            j(rng, 0.55, 0.25),
            0.55,
            0.75,
            3.6,
            false,
        ),
        21 => (
            Backward,
            Standing,
            j(rng, 0.50, 0.25),
            0.50,
            0.65,
            3.4,
            false,
        ),
        22 => (
            Lateral(side),
            Standing,
            j(rng, 0.50, 0.25),
            0.50,
            0.65,
            3.4,
            false,
        ),
        // Falls when trying to get up from sitting.
        23 => (Forward, Sitting, j(rng, 0.60, 0.25), 0.60, 0.75, 3.8, false),
        24 => (
            Lateral(side),
            Sitting,
            j(rng, 0.55, 0.25),
            0.55,
            0.70,
            3.6,
            false,
        ),
        // Fainting while sitting: slow slump, moderate signature.
        25 => (Forward, Sitting, j(rng, 0.70, 0.25), 0.55, 0.80, 3.2, false),
        26 => (
            Lateral(side),
            Sitting,
            j(rng, 0.65, 0.25),
            0.55,
            0.75,
            3.2,
            false,
        ),
        27 => (
            Backward,
            Sitting,
            j(rng, 0.60, 0.25),
            0.50,
            0.70,
            3.4,
            false,
        ),
        // Falls while walking/jogging: longer, pronounced — easiest.
        28 => (Forward, Standing, j(rng, 0.65, 0.2), 0.80, 0.45, 4.4, false), // vertical faint: low rotation
        29 => (Forward, Standing, j(rng, 0.70, 0.2), 0.70, 0.80, 2.8, true),
        30 => (Forward, Standing, j(rng, 0.75, 0.2), 0.75, 0.90, 4.6, false),
        31 => (Forward, Standing, j(rng, 0.70, 0.2), 0.80, 0.90, 5.2, false),
        32 => (Forward, Standing, j(rng, 0.75, 0.2), 0.70, 0.85, 4.4, false),
        33 => (
            Lateral(side),
            Standing,
            j(rng, 0.65, 0.2),
            0.65,
            0.80,
            4.2,
            false,
        ),
        34 => (
            Backward,
            Standing,
            j(rng, 0.70, 0.2),
            0.70,
            0.80,
            4.6,
            false,
        ),
        // Backward falls while moving back.
        37 => (
            Backward,
            Standing,
            j(rng, 0.65, 0.2),
            0.65,
            0.80,
            4.0,
            false,
        ),
        38 => (
            Backward,
            Standing,
            j(rng, 0.55, 0.2),
            0.70,
            0.80,
            4.6,
            false,
        ),
        // Falls from height: deep free fall but *little rotation* before
        // impact (a clean drop) — the gyro/Euler branches see almost
        // nothing, and only self-collected subjects provide examples;
        // the paper's Table IVa has these as the most-missed falls.
        39 => (
            Forward,
            Standing,
            j(rng, 0.60, 0.25),
            0.92,
            0.25,
            6.0,
            false,
        ),
        40 => (
            Backward,
            Standing,
            j(rng, 0.60, 0.25),
            0.92,
            0.20,
            6.0,
            false,
        ),
        41 => (
            Backward,
            Standing,
            j(rng, 0.55, 0.25),
            0.88,
            0.30,
            5.4,
            false,
        ),
        42 => (
            Backward,
            Standing,
            j(rng, 0.55, 0.25),
            0.85,
            0.30,
            5.2,
            false,
        ),
        _ => unreachable!("fall_script called for non-fall task {id}"),
    };

    let spec = FallSpec {
        direction,
        from,
        duration_s: dur.clamp(0.25, 1.1),
        freefall_depth: depth,
        rotation_before_impact: rot,
        impact_g: j(rng, impact, 0.2),
        hands_dampen: hands,
    };

    // Lead-in activity by fall category, then the fall, then lying still.
    let mut phases = match activity.fall_category.expect("fall task has category") {
        FallCategory::FromWalking => {
            let speed = if id == 31 { 1.9 } else { 1.0 };
            vec![
                Phase::Still {
                    posture: Standing,
                    duration_s: t(0.7),
                },
                Phase::Walk {
                    speed,
                    duration_s: t(j(rng, 2.4, 0.3)),
                    turn_rad: 0.0,
                },
            ]
        }
        FallCategory::FromSitting => vec![Phase::Still {
            posture: Sitting,
            duration_s: t(j(rng, 2.2, 0.3)),
        }],
        FallCategory::FromStanding => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(1.0),
            },
            Phase::Walk {
                speed: 0.7,
                duration_s: t(j(rng, 1.4, 0.3)),
                turn_rad: 0.0,
            },
        ],
        FallCategory::FromHeight => vec![
            Phase::Still {
                posture: Standing,
                duration_s: t(0.7),
            },
            Phase::Ladder {
                up: id == 41,
                duration_s: t(j(rng, 2.0, 0.3)),
            },
        ],
    };
    phases.push(Phase::Fall(spec));
    phases.push(Phase::Still {
        posture: direction.final_posture(),
        duration_s: t(j(rng, 2.0, 0.25)),
    });
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;

    #[test]
    fn every_task_has_a_script() {
        let mut rng = GenRng::seed_from_u64(1);
        for a in Activity::catalog() {
            let script = script_for_task(a, 1.0, &mut rng);
            assert!(!script.is_empty(), "task {} has empty script", a.id);
        }
    }

    #[test]
    fn fall_tasks_have_exactly_one_fall_phase() {
        let mut rng = GenRng::seed_from_u64(2);
        for a in Activity::catalog() {
            let script = script_for_task(a, 1.0, &mut rng);
            let n_falls = script
                .iter()
                .filter(|p| matches!(p, Phase::Fall(_)))
                .count();
            if a.is_fall() {
                assert_eq!(n_falls, 1, "task {}", a.id);
            } else {
                assert_eq!(n_falls, 0, "task {}", a.id);
            }
        }
    }

    #[test]
    fn fall_durations_within_paper_range() {
        let mut rng = GenRng::seed_from_u64(3);
        for a in Activity::falls() {
            for _ in 0..20 {
                let script = script_for_task(a, 1.0, &mut rng);
                for p in &script {
                    if let Phase::Fall(spec) = p {
                        assert!(
                            (0.15..=1.1).contains(&spec.duration_s),
                            "task {}: {} s",
                            a.id,
                            spec.duration_s
                        );
                        assert!((0.0..=1.0).contains(&spec.freefall_depth));
                        assert!((0.0..=1.0).contains(&spec.rotation_before_impact));
                        assert!(spec.impact_g > 1.5);
                    }
                }
            }
        }
    }

    #[test]
    fn height_falls_have_low_rotation_and_deep_freefall() {
        let mut rng = GenRng::seed_from_u64(4);
        for id in [39u8, 40, 41, 42] {
            let a = Activity::from_task(id).unwrap();
            let script = script_for_task(a, 1.0, &mut rng);
            let spec = script
                .iter()
                .find_map(|p| match p {
                    Phase::Fall(s) => Some(s),
                    _ => None,
                })
                .unwrap();
            assert!(spec.rotation_before_impact <= 0.3, "task {id}");
            assert!(spec.freefall_depth >= 0.85, "task {id}");
        }
    }

    #[test]
    fn fall_ends_lying() {
        let mut rng = GenRng::seed_from_u64(5);
        for a in Activity::falls() {
            let script = script_for_task(a, 1.0, &mut rng);
            match script.last().unwrap() {
                Phase::Still { posture, .. } => assert!(
                    matches!(
                        posture,
                        Posture::LyingFront | Posture::LyingBack | Posture::LyingSide(_)
                    ),
                    "task {}",
                    a.id
                ),
                other => panic!("task {} ends with {other:?}", a.id),
            }
        }
    }

    #[test]
    fn tempo_scales_phase_durations() {
        let mut rng = GenRng::seed_from_u64(6);
        let a = Activity::from_task(1).unwrap();
        let slow = script_for_task(a, 0.8, &mut rng);
        let fast = script_for_task(a, 1.25, &mut rng);
        let dur = |s: &[Phase]| s.iter().map(Phase::duration_s).sum::<f64>();
        assert!(dur(&slow) > dur(&fast));
    }

    #[test]
    fn scripts_are_seed_deterministic() {
        let a = Activity::from_task(30).unwrap();
        let mut r1 = GenRng::seed_from_u64(9);
        let mut r2 = GenRng::seed_from_u64(9);
        assert_eq!(
            script_for_task(a, 1.0, &mut r1),
            script_for_task(a, 1.0, &mut r2)
        );
    }

    #[test]
    fn posture_orientations_distinct() {
        let (p_stand, _) = Posture::Standing.orientation();
        let (p_front, _) = Posture::LyingFront.orientation();
        let (p_back, _) = Posture::LyingBack.orientation();
        assert!(p_front > 1.0);
        assert!(p_back < -1.0);
        assert_eq!(p_stand, 0.0);
        let (_, r_side) = Posture::LyingSide(-1).orientation();
        assert!(r_side < -1.0);
    }
}
