//! Deterministic random sampling helpers.
//!
//! All data generation is seeded, so every experiment in the repository
//! is exactly reproducible. Gaussian variates are produced with
//! Box–Muller on top of `rand`'s uniform source (avoiding an extra
//! dependency on `rand_distr`).

use rand::rngs::Xoshiro256PlusPlus;
use rand::{RngExt, SeedableRng};

/// A seeded random source for dataset generation.
#[derive(Debug, Clone)]
pub struct GenRng {
    inner: Xoshiro256PlusPlus,
    spare_gaussian: Option<f64>,
}

impl GenRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Derives an independent child stream, e.g. one per (subject, task,
    /// trial) so regenerating any single trial is order-independent.
    pub fn derive(&self, stream: u64) -> Self {
        // Mix the stream id through SplitMix64 so near-by ids diverge.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let base: u64 = {
            let mut c = self.inner.clone();
            c.random()
        };
        Self::seed_from_u64(base ^ z)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform requires lo < hi");
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "uniform_usize requires lo <= hi");
        self.inner.random_range(lo..=hi)
    }

    /// Standard normal sample (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Avoid u1 == 0 which would produce ln(0).
        let u1: f64 = loop {
            let u: f64 = self.inner.random::<f64>();
            if u > 1e-300 {
                break u;
            }
        };
        let u2: f64 = self.inner.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Normal sample clamped to `[lo, hi]` (truncation by clamping — fine
    /// for anthropometric jitter).
    pub fn normal_clamped(&mut self, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std).clamp(lo, hi)
    }

    /// Bernoulli draw.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.inner.random::<f64>() < p
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.uniform_usize(0, items.len() - 1)]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = GenRng::seed_from_u64(42);
        let mut b = GenRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.gaussian(), b.gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GenRng::seed_from_u64(1);
        let mut b = GenRng::seed_from_u64(2);
        let va: Vec<f64> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_streams_are_independent_of_each_other() {
        let root = GenRng::seed_from_u64(7);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let v1: Vec<f64> = (0..8).map(|_| c1.uniform(0.0, 1.0)).collect();
        let v2: Vec<f64> = (0..8).map(|_| c2.uniform(0.0, 1.0)).collect();
        assert_ne!(v1, v2);
        // Deriving the same stream twice yields identical sequences.
        let mut c1b = root.derive(1);
        let v1b: Vec<f64> = (0..8).map(|_| c1b.uniform(0.0, 1.0)).collect();
        assert_eq!(v1, v1b);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = GenRng::seed_from_u64(123);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_clamped_respects_bounds() {
        let mut rng = GenRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = GenRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let k = rng.uniform_usize(4, 6);
            assert!((4..=6).contains(&k));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = GenRng::seed_from_u64(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = GenRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = GenRng::seed_from_u64(17);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
