//! The nine signal channels every trial carries.
//!
//! The paper fixes `m = 9` features per snapshot: accelerometer `(x, y,
//! z)`, gyroscope `(x, y, z)` and Euler angles `(pitch, roll, yaw)`. The
//! model architecture later splits these into three `n × 3` branches by
//! *modality*.

use serde::{Deserialize, Serialize};

/// Number of channels per snapshot (`m` in the paper).
pub const NUM_CHANNELS: usize = 9;

/// The three sensor modalities, each contributing three channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modality {
    /// Tri-axial accelerometer (g).
    Accelerometer,
    /// Tri-axial gyroscope (rad/s).
    Gyroscope,
    /// Euler angles from on-edge sensor fusion (rad).
    Euler,
}

impl Modality {
    /// All modalities in channel order.
    pub const ALL: [Modality; 3] = [
        Modality::Accelerometer,
        Modality::Gyroscope,
        Modality::Euler,
    ];

    /// The channel indices belonging to this modality, in order.
    pub fn channel_indices(self) -> [usize; 3] {
        match self {
            Modality::Accelerometer => [0, 1, 2],
            Modality::Gyroscope => [3, 4, 5],
            Modality::Euler => [6, 7, 8],
        }
    }
}

impl std::fmt::Display for Modality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Modality::Accelerometer => "accelerometer",
            Modality::Gyroscope => "gyroscope",
            Modality::Euler => "euler",
        };
        f.write_str(s)
    }
}

/// One of the nine channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Channel {
    AccelX,
    AccelY,
    AccelZ,
    GyroX,
    GyroY,
    GyroZ,
    Pitch,
    Roll,
    Yaw,
}

impl Channel {
    /// All channels, in storage order.
    pub const ALL: [Channel; NUM_CHANNELS] = [
        Channel::AccelX,
        Channel::AccelY,
        Channel::AccelZ,
        Channel::GyroX,
        Channel::GyroY,
        Channel::GyroZ,
        Channel::Pitch,
        Channel::Roll,
        Channel::Yaw,
    ];

    /// The channel's index in storage order (`0..9`).
    pub fn index(self) -> usize {
        Channel::ALL
            .iter()
            .position(|&c| c == self)
            .expect("channel is in ALL")
    }

    /// The modality the channel belongs to.
    pub fn modality(self) -> Modality {
        match self {
            Channel::AccelX | Channel::AccelY | Channel::AccelZ => Modality::Accelerometer,
            Channel::GyroX | Channel::GyroY | Channel::GyroZ => Modality::Gyroscope,
            Channel::Pitch | Channel::Roll | Channel::Yaw => Modality::Euler,
        }
    }

    /// Short lower-case name used in CSV headers.
    pub fn name(self) -> &'static str {
        match self {
            Channel::AccelX => "accel_x",
            Channel::AccelY => "accel_y",
            Channel::AccelZ => "accel_z",
            Channel::GyroX => "gyro_x",
            Channel::GyroY => "gyro_y",
            Channel::GyroZ => "gyro_z",
            Channel::Pitch => "pitch",
            Channel::Roll => "roll",
            Channel::Yaw => "yaw",
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_channels_three_modalities() {
        assert_eq!(Channel::ALL.len(), NUM_CHANNELS);
        for m in Modality::ALL {
            let idx = m.channel_indices();
            assert_eq!(idx.len(), 3);
            for i in idx {
                assert_eq!(Channel::ALL[i].modality(), m);
            }
        }
    }

    #[test]
    fn index_is_position_in_all() {
        for (i, c) in Channel::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Channel::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CHANNELS);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Channel::AccelX.to_string(), "accel_x");
        assert_eq!(Modality::Euler.to_string(), "euler");
    }
}
