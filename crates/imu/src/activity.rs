//! The activity taxonomy of Table II: 44 tasks — 23 ADLs and 21 fall
//! types — with the metadata the evaluation needs (fall category,
//! KFall membership, red/green risk grouping for Table IVb).

use crate::ImuError;
use serde::{Deserialize, Serialize};

/// Identifier of a Table II task (`1..=44`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u8);

impl TaskId {
    /// Creates a task id, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::UnknownTask`] outside `1..=44`.
    pub fn new(id: u8) -> Result<Self, ImuError> {
        if (1..=44).contains(&id) {
            Ok(Self(id))
        } else {
            Err(ImuError::UnknownTask { task: id })
        }
    }

    /// The numeric id (`1..=44`).
    pub fn get(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:02}", self.0)
    }
}

/// Whether a task ends in a fall or is an activity of daily living.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityClass {
    /// Activity of daily living (green/red rows of Table II that do not
    /// end in a fall).
    Adl,
    /// Task concluded by a fall (red rows of Table II).
    Fall,
}

/// The paper's fall macro-categories (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FallCategory {
    /// Falls from walking/jogging (slips, trips, fainting).
    FromWalking,
    /// Falls from sitting (fainting, failing to get up).
    FromSitting,
    /// Falls from standing (trying to sit down, moving backward).
    FromStanding,
    /// Falls from height (ladder, scaffold) — self-collected dataset only.
    FromHeight,
}

/// Risk grouping of ADLs used by Table IVb.
///
/// *Red* ADLs are dynamic/unconventional movements rarely performed by
/// people at risk (elderly, construction workers in hazardous spots);
/// *green* ADLs occur frequently. False positives on green ADLs are the
/// costly ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RiskGroup {
    /// Unconventional for at-risk wearers (e.g. jumping, jogging).
    Red,
    /// Common daily movements (e.g. walking, sitting).
    Green,
}

/// Static description of one Table II task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Task identifier (Table II numbering).
    pub id: TaskId,
    /// Human-readable description from Table II.
    pub description: &'static str,
    /// Fall or ADL.
    pub class: ActivityClass,
    /// Fall macro-category; `None` for ADLs.
    pub fall_category: Option<FallCategory>,
    /// Risk grouping for ADLs (Table IVb); `None` for falls.
    pub risk_group: Option<RiskGroup>,
    /// Whether the task also exists in the KFall dataset (tasks 37–44 are
    /// exclusive to the self-collected dataset).
    pub in_kfall: bool,
    /// Nominal trial duration in seconds (before subject jitter and
    /// dataset-wide scaling).
    pub nominal_duration_s: f64,
}

impl Activity {
    /// Looks an activity up by task number.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::UnknownTask`] outside `1..=44`.
    pub fn from_task(id: u8) -> Result<&'static Activity, ImuError> {
        let tid = TaskId::new(id)?;
        Ok(&CATALOG[(tid.get() - 1) as usize])
    }

    /// The full 44-task catalogue in Table II order.
    pub fn catalog() -> &'static [Activity; 44] {
        &CATALOG
    }

    /// All fall tasks.
    pub fn falls() -> impl Iterator<Item = &'static Activity> {
        CATALOG.iter().filter(|a| a.class == ActivityClass::Fall)
    }

    /// All ADL tasks.
    pub fn adls() -> impl Iterator<Item = &'static Activity> {
        CATALOG.iter().filter(|a| a.class == ActivityClass::Adl)
    }

    /// `true` when the task ends in a fall.
    pub fn is_fall(&self) -> bool {
        self.class == ActivityClass::Fall
    }
}

const fn adl(
    id: u8,
    description: &'static str,
    risk: RiskGroup,
    in_kfall: bool,
    dur: f64,
) -> Activity {
    Activity {
        id: TaskId(id),
        description,
        class: ActivityClass::Adl,
        fall_category: None,
        risk_group: Some(risk),
        in_kfall,
        nominal_duration_s: dur,
    }
}

const fn fall(
    id: u8,
    description: &'static str,
    category: FallCategory,
    in_kfall: bool,
    dur: f64,
) -> Activity {
    Activity {
        id: TaskId(id),
        description,
        class: ActivityClass::Fall,
        fall_category: Some(category),
        risk_group: None,
        in_kfall,
        nominal_duration_s: dur,
    }
}

use FallCategory::{FromHeight, FromSitting, FromStanding, FromWalking};
use RiskGroup::{Green, Red};

/// The Table II catalogue.
///
/// Durations are nominal trial lengths; long static holds ("stand for 30
/// seconds") are kept shorter than the protocol's 30 s because they carry
/// no extra information for the classifier and dominate compute — the
/// class imbalance the paper reports (~3.6 % falling segments) is
/// preserved by the overall mix.
static CATALOG: [Activity; 44] = [
    adl(1, "Stand for 30 seconds", Green, true, 12.0),
    adl(
        2,
        "Stand, slowly bend, tie shoe lace, and get up",
        Green,
        true,
        8.0,
    ),
    adl(3, "Pick up an object from the floor", Green, true, 5.0),
    adl(4, "Gently jump (try to reach an object)", Red, true, 5.0),
    adl(
        5,
        "Stand, sit to the ground, wait a moment, and get up with normal speed",
        Red,
        true,
        9.0,
    ),
    adl(6, "Walk normally with turn", Green, true, 9.0),
    adl(7, "Walk quickly with turn", Green, true, 8.0),
    adl(8, "Jog normally with turn", Red, true, 8.0),
    adl(9, "Jog quickly with turn", Red, true, 7.0),
    adl(10, "Stumble with obstacle while walking", Red, true, 7.0),
    adl(11, "Sit on a chair for 30 seconds", Green, true, 12.0),
    adl(12, "Walk downstairs normally", Green, true, 8.0),
    adl(
        13,
        "Sit down to a chair normally, and get up from a chair normally",
        Green,
        true,
        8.0,
    ),
    adl(
        14,
        "Sit down to a chair quickly, and get up from a chair quickly",
        Red,
        true,
        6.0,
    ),
    adl(
        15,
        "Sit a moment, trying to get up, and collapse into a chair",
        Red,
        true,
        7.0,
    ),
    adl(16, "Walk downstairs quickly", Red, true, 6.0),
    adl(17, "Lie on the floor for 30 seconds", Green, true, 12.0),
    adl(
        18,
        "Sit a moment, lie down to the floor normally, and get up normally",
        Red,
        true,
        9.0,
    ),
    adl(
        19,
        "Sit a moment, lie down to the floor quickly, and get up quickly",
        Red,
        true,
        7.0,
    ),
    fall(
        20,
        "Forward fall when trying to sit down",
        FromStanding,
        true,
        6.0,
    ),
    fall(
        21,
        "Backward fall when trying to sit down",
        FromStanding,
        true,
        6.0,
    ),
    fall(
        22,
        "Lateral fall when trying to sit down",
        FromStanding,
        true,
        6.0,
    ),
    fall(
        23,
        "Forward fall when trying to get up",
        FromSitting,
        true,
        6.0,
    ),
    fall(
        24,
        "Lateral fall when trying to get up",
        FromSitting,
        true,
        6.0,
    ),
    fall(
        25,
        "Forward fall while sitting, caused by fainting",
        FromSitting,
        true,
        6.0,
    ),
    fall(
        26,
        "Lateral fall while sitting, caused by fainting",
        FromSitting,
        true,
        6.0,
    ),
    fall(
        27,
        "Backward fall while sitting, caused by fainting",
        FromSitting,
        true,
        6.0,
    ),
    fall(
        28,
        "Vertical (forward) fall while walking caused by fainting",
        FromWalking,
        true,
        7.0,
    ),
    fall(
        29,
        "Fall while walking, use of hands to dampen fall, caused by fainting",
        FromWalking,
        true,
        7.0,
    ),
    fall(
        30,
        "Forward fall while walking caused by a trip",
        FromWalking,
        true,
        7.0,
    ),
    fall(
        31,
        "Forward fall while jogging caused by a trip",
        FromWalking,
        true,
        7.0,
    ),
    fall(
        32,
        "Forward fall while walking caused by a slip",
        FromWalking,
        true,
        7.0,
    ),
    fall(
        33,
        "Lateral fall while walking caused by a slip",
        FromWalking,
        true,
        7.0,
    ),
    fall(
        34,
        "Backward fall while walking caused by a slip",
        FromWalking,
        true,
        7.0,
    ),
    adl(35, "Walk upstairs normally", Green, true, 8.0),
    adl(36, "Walk upstairs quickly", Red, true, 6.0),
    fall(
        37,
        "Backward fall while slowly moving back",
        FromStanding,
        false,
        6.0,
    ),
    fall(
        38,
        "Backward fall while quickly moving back",
        FromStanding,
        false,
        6.0,
    ),
    fall(39, "Forward fall from height", FromHeight, false, 7.0),
    fall(40, "Backward fall from height", FromHeight, false, 7.0),
    fall(
        41,
        "Backward fall while trying to climb up the ladder",
        FromHeight,
        false,
        7.0,
    ),
    fall(
        42,
        "Backward fall while trying to climb down the ladder",
        FromHeight,
        false,
        7.0,
    ),
    adl(43, "Climb up and climb down the stairs", Green, false, 10.0),
    adl(
        44,
        "Walk slowly and jump over the obstacle",
        Red,
        false,
        8.0,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_counts_match_table_ii() {
        assert_eq!(Activity::catalog().len(), 44);
        assert_eq!(Activity::adls().count(), 23, "23 ADL types");
        assert_eq!(Activity::falls().count(), 21, "21 fall types");
    }

    #[test]
    fn kfall_subset_counts() {
        // KFall contributes 21 ADLs and 15 falls.
        let kfall_adls = Activity::adls().filter(|a| a.in_kfall).count();
        let kfall_falls = Activity::falls().filter(|a| a.in_kfall).count();
        assert_eq!(kfall_adls, 21);
        assert_eq!(kfall_falls, 15);
    }

    #[test]
    fn ids_are_one_to_forty_four_in_order() {
        for (i, a) in Activity::catalog().iter().enumerate() {
            assert_eq!(a.id.get() as usize, i + 1);
        }
    }

    #[test]
    fn task_id_validation() {
        assert!(TaskId::new(0).is_err());
        assert!(TaskId::new(45).is_err());
        assert_eq!(TaskId::new(44).unwrap().get(), 44);
        assert_eq!(TaskId::new(7).unwrap().to_string(), "07");
    }

    #[test]
    fn from_task_round_trips() {
        for id in 1..=44u8 {
            let a = Activity::from_task(id).unwrap();
            assert_eq!(a.id.get(), id);
        }
        assert!(matches!(
            Activity::from_task(99),
            Err(ImuError::UnknownTask { task: 99 })
        ));
    }

    #[test]
    fn falls_have_categories_adls_have_risk_groups() {
        for a in Activity::catalog() {
            match a.class {
                ActivityClass::Fall => {
                    assert!(a.fall_category.is_some(), "task {}", a.id);
                    assert!(a.risk_group.is_none(), "task {}", a.id);
                }
                ActivityClass::Adl => {
                    assert!(a.fall_category.is_none(), "task {}", a.id);
                    assert!(a.risk_group.is_some(), "task {}", a.id);
                }
            }
        }
    }

    #[test]
    fn height_falls_are_self_collected_only() {
        for a in Activity::falls() {
            if a.fall_category == Some(FallCategory::FromHeight) {
                assert!(!a.in_kfall, "task {} is from-height but in KFall", a.id);
            }
        }
    }

    #[test]
    fn jump_over_obstacle_is_red_and_not_in_kfall() {
        let a = Activity::from_task(44).unwrap();
        assert_eq!(a.risk_group, Some(RiskGroup::Red));
        assert!(!a.in_kfall);
    }

    #[test]
    fn durations_are_positive_and_bounded() {
        for a in Activity::catalog() {
            assert!(a.nominal_duration_s > 1.0);
            assert!(a.nominal_duration_s <= 15.0);
        }
    }
}
