use std::error::Error;
use std::fmt;

/// Errors produced while generating or loading IMU datasets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImuError {
    /// A dataset was requested with zero subjects.
    NoSubjects,
    /// An unknown task identifier was referenced.
    UnknownTask {
        /// The rejected task number.
        task: u8,
    },
    /// CSV parsing failed.
    ParseCsv {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A trial's label indices are inconsistent (e.g. impact before fall
    /// start, or beyond the signal length).
    InvalidLabels {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for ImuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImuError::NoSubjects => write!(f, "dataset must contain at least one subject"),
            ImuError::UnknownTask { task } => {
                write!(f, "unknown task identifier {task}; valid tasks are 1..=44")
            }
            ImuError::ParseCsv { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
            ImuError::InvalidLabels { reason } => write!(f, "invalid trial labels: {reason}"),
        }
    }
}

impl Error for ImuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImuError>();
        assert!(ImuError::NoSubjects.to_string().contains("subject"));
        assert!(ImuError::UnknownTask { task: 99 }
            .to_string()
            .contains("99"));
    }
}
