//! Synthetic IMU dataset substrate for the pre-impact fall-detection
//! reproduction.
//!
//! The paper evaluates on two datasets we cannot redistribute or access:
//! the public **KFall** dataset (32 subjects) and a **self-collected**
//! dataset recorded with a Protechto safety jacket (29 subjects, the 44
//! tasks of Table II). This crate substitutes both with a *parametric
//! synthetic generator* that preserves everything the downstream method
//! consumes:
//!
//! * 9 channels at 100 Hz — accelerometer x/y/z (g), gyroscope x/y/z
//!   (rad/s), Euler pitch/roll/yaw (rad) computed by the same
//!   complementary filter the acquisition firmware runs;
//! * frame-accurate `fall_start` and `impact` labels;
//! * the full Table II task taxonomy (21 fall types, 23 ADLs), including
//!   the construction-site falls from height that only exist in the
//!   self-collected data;
//! * subject-level structure (anthropometrics, motion style) so
//!   subject-independent cross-validation is meaningful;
//! * the KFall sensor-frame/unit mismatch, so the Rodrigues-rotation
//!   alignment step of §IV-A is exercised for real.
//!
//! # Example
//!
//! ```
//! use prefall_imu::dataset::Dataset;
//!
//! // A small combined dataset: 2 KFall-like + 2 self-collected subjects.
//! let ds = Dataset::combined_scaled(2, 2, 7).expect("generation succeeds");
//! assert_eq!(ds.subjects().len(), 4);
//! let falls = ds.trials().iter().filter(|t| t.is_fall()).count();
//! assert!(falls > 0);
//! ```

#![deny(missing_docs)]

pub mod activity;
pub mod alignment;
pub mod channel;
pub mod csv;
pub mod dataset;
pub mod generator;
pub mod rng;
pub mod script;
pub mod subject;
pub mod trial;
pub mod units;

mod error;

pub use error::ImuError;

/// The sampling rate shared by both datasets (samples per second).
pub const SAMPLE_RATE_HZ: f64 = 100.0;

/// The sampling period in milliseconds (one "snapshot" every 10 ms).
pub const SAMPLE_PERIOD_MS: f64 = 1000.0 / SAMPLE_RATE_HZ;

/// Airbag inflation budget: the trailing portion of every falling phase
/// that cannot be used for detection (150 ms = 15 samples at 100 Hz).
pub const AIRBAG_INFLATION_MS: f64 = 150.0;

/// [`AIRBAG_INFLATION_MS`] expressed in samples at [`SAMPLE_RATE_HZ`].
pub const AIRBAG_INFLATION_SAMPLES: usize = 15;
