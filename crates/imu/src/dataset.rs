//! Dataset assembly: KFall-like, self-collected-like and the combined
//! 61-subject dataset the paper trains on.

use crate::activity::Activity;
use crate::alignment::{align_trial, dealign_trial};
use crate::generator::render_script;
use crate::rng::GenRng;
use crate::script::script_for_task;
use crate::subject::{DatasetSource, Subject, SubjectId};
use crate::trial::Trial;
use crate::ImuError;
use serde::{Deserialize, Serialize};

/// Configuration for dataset generation.
///
/// # Example
///
/// ```
/// use prefall_imu::dataset::{Dataset, DatasetConfig};
///
/// let config = DatasetConfig {
///     kfall_subjects: 1,
///     self_collected_subjects: 1,
///     trials_per_task: 1,
///     duration_scale: 0.5,
///     seed: 42,
/// };
/// let ds = Dataset::generate(&config).unwrap();
/// assert_eq!(ds.subjects().len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of KFall-like subjects (paper: 32).
    pub kfall_subjects: usize,
    /// Number of self-collected-like subjects (paper: 29).
    pub self_collected_subjects: usize,
    /// Repetitions of every task per subject.
    pub trials_per_task: usize,
    /// Multiplier on ambient/hold durations (1.0 = nominal protocol;
    /// smaller values shrink the ADL lead-ins/holds but never the falling
    /// phases themselves).
    pub duration_scale: f64,
    /// Master seed: everything downstream is derived from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// The paper's full combined dataset: 32 + 29 subjects, one trial per
    /// task, nominal durations.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            kfall_subjects: 32,
            self_collected_subjects: 29,
            trials_per_task: 1,
            duration_scale: 1.0,
            seed,
        }
    }

    /// A laptop-friendly scaled-down configuration.
    pub fn scaled(kfall: usize, self_collected: usize, seed: u64) -> Self {
        Self {
            kfall_subjects: kfall,
            self_collected_subjects: self_collected,
            trials_per_task: 1,
            duration_scale: 0.5,
            seed,
        }
    }
}

/// Aggregate statistics of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of trials.
    pub trials: usize,
    /// Number of fall trials.
    pub fall_trials: usize,
    /// Total samples across all trials.
    pub samples: usize,
    /// Samples inside *usable* falling ranges (fall start → impact−150 ms).
    pub falling_samples: usize,
    /// Fraction of samples that are falling (the paper's datasets sit
    /// around 1–4 %).
    pub falling_fraction: f64,
}

/// A generated dataset: subjects plus all their trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    subjects: Vec<Subject>,
    trials: Vec<Trial>,
}

impl Dataset {
    /// Generates a dataset from a configuration.
    ///
    /// KFall-like subjects perform the 36 KFall tasks; their recordings
    /// are manufactured in the KFall sensor frame/units and then passed
    /// through the §IV-A Rodrigues alignment, exactly like the real
    /// pipeline. Self-collected subjects perform all 44 tasks in the
    /// canonical frame.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::NoSubjects`] when both subject counts are 0.
    pub fn generate(config: &DatasetConfig) -> Result<Self, ImuError> {
        let total = config.kfall_subjects + config.self_collected_subjects;
        if total == 0 {
            return Err(ImuError::NoSubjects);
        }
        let root = GenRng::seed_from_u64(config.seed);
        let mut subject_rng = root.derive(0xA11CE);

        let mut subjects = Vec::with_capacity(total);
        for i in 0..total {
            let source = if i < config.kfall_subjects {
                DatasetSource::KFall
            } else {
                DatasetSource::SelfCollected
            };
            subjects.push(Subject::sample(
                SubjectId(i as u16),
                source,
                &mut subject_rng,
            ));
        }

        let mut trials = Vec::new();
        for subject in &subjects {
            for activity in Activity::catalog() {
                if subject.source == DatasetSource::KFall && !activity.in_kfall {
                    continue;
                }
                for rep in 0..config.trials_per_task {
                    let stream = (u64::from(subject.id.0) << 24)
                        | (u64::from(activity.id.get()) << 8)
                        | rep as u64;
                    let mut rng = root.derive(stream);
                    // duration_scale stretches the effective tempo used
                    // for ambient phases; fall-phase durations are
                    // sampled independently inside the script builder.
                    let tempo = subject.tempo_scale / config.duration_scale.max(0.05);
                    let script = script_for_task(activity, tempo, &mut rng);
                    let signals = render_script(&script, subject, &mut rng);
                    let mut trial = Trial::from_rendered(
                        subject.id,
                        activity.id,
                        rep as u16,
                        subject.source,
                        &signals,
                    )?;
                    if subject.source == DatasetSource::KFall {
                        // Manufacture authentic KFall raw data, then align
                        // it back (exercising §IV-A for real).
                        dealign_trial(&mut trial);
                        align_trial(&mut trial);
                    }
                    trials.push(trial);
                }
            }
        }

        Ok(Self { subjects, trials })
    }

    /// The paper's combined dataset (61 subjects) with the given seed.
    ///
    /// # Errors
    ///
    /// Propagates generation errors (none for this fixed configuration).
    pub fn combined(seed: u64) -> Result<Self, ImuError> {
        Self::generate(&DatasetConfig::paper_scale(seed))
    }

    /// A scaled-down combined dataset for tests and laptop runs.
    ///
    /// # Errors
    ///
    /// Returns [`ImuError::NoSubjects`] when both counts are 0.
    pub fn combined_scaled(
        kfall: usize,
        self_collected: usize,
        seed: u64,
    ) -> Result<Self, ImuError> {
        Self::generate(&DatasetConfig::scaled(kfall, self_collected, seed))
    }

    /// All subjects.
    pub fn subjects(&self) -> &[Subject] {
        &self.subjects
    }

    /// All trials.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// All subject ids, in order.
    pub fn subject_ids(&self) -> Vec<SubjectId> {
        self.subjects.iter().map(|s| s.id).collect()
    }

    /// Trials belonging to one subject.
    pub fn trials_for_subject(&self, id: SubjectId) -> impl Iterator<Item = &Trial> {
        self.trials.iter().filter(move |t| t.subject == id)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DatasetStats {
        let trials = self.trials.len();
        let fall_trials = self.trials.iter().filter(|t| t.is_fall()).count();
        let samples: usize = self.trials.iter().map(Trial::len).sum();
        let falling_samples: usize = self
            .trials
            .iter()
            .filter_map(|t| t.usable_fall_range().map(|r| r.len()))
            .sum();
        DatasetStats {
            trials,
            fall_trials,
            samples,
            falling_samples,
            falling_fraction: if samples == 0 {
                0.0
            } else {
                falling_samples as f64 / samples as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityClass;

    #[test]
    fn rejects_empty_config() {
        let cfg = DatasetConfig {
            kfall_subjects: 0,
            self_collected_subjects: 0,
            trials_per_task: 1,
            duration_scale: 1.0,
            seed: 1,
        };
        assert!(matches!(Dataset::generate(&cfg), Err(ImuError::NoSubjects)));
    }

    #[test]
    fn kfall_subjects_perform_36_tasks_self_collected_44() {
        let ds = Dataset::combined_scaled(1, 1, 3).unwrap();
        let kfall_id = ds.subjects()[0].id;
        let self_id = ds.subjects()[1].id;
        assert_eq!(ds.trials_for_subject(kfall_id).count(), 36);
        assert_eq!(ds.trials_for_subject(self_id).count(), 44);
        assert_eq!(ds.trials().len(), 80);
    }

    #[test]
    fn fall_trials_match_taxonomy() {
        let ds = Dataset::combined_scaled(1, 1, 5).unwrap();
        for t in ds.trials() {
            let is_fall_task = t.activity().class == ActivityClass::Fall;
            assert_eq!(t.is_fall(), is_fall_task, "task {}", t.task);
        }
        // 15 KFall falls + 21 self-collected falls.
        let stats = ds.stats();
        assert_eq!(stats.fall_trials, 36);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::combined_scaled(1, 1, 11).unwrap();
        let b = Dataset::combined_scaled(1, 1, 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::combined_scaled(1, 0, 1).unwrap();
        let b = Dataset::combined_scaled(1, 0, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn falling_fraction_is_minority_class() {
        let ds = Dataset::combined_scaled(2, 2, 7).unwrap();
        let stats = ds.stats();
        assert!(
            stats.falling_fraction > 0.005 && stats.falling_fraction < 0.12,
            "falling fraction {}",
            stats.falling_fraction
        );
        assert!(stats.samples > 0);
        assert!(stats.falling_samples > 0);
    }

    #[test]
    fn kfall_trials_are_aligned_to_canonical_units() {
        // After §IV-A alignment, an upright KFall subject reads ~+1 g on
        // the canonical z axis (not −9.8 m/s² on y).
        let ds = Dataset::combined_scaled(1, 0, 13).unwrap();
        let t = ds
            .trials()
            .iter()
            .find(|t| t.task.get() == 1)
            .expect("standing trial");
        let mid = t.len() / 2;
        let z = t.channel(crate::channel::Channel::AccelZ)[mid];
        assert!((0.8..1.2).contains(&z), "aligned gravity on z: {z}");
    }

    #[test]
    fn duration_scale_shrinks_trials() {
        let long = Dataset::generate(&DatasetConfig {
            kfall_subjects: 0,
            self_collected_subjects: 1,
            trials_per_task: 1,
            duration_scale: 1.0,
            seed: 9,
        })
        .unwrap();
        let short = Dataset::generate(&DatasetConfig {
            kfall_subjects: 0,
            self_collected_subjects: 1,
            trials_per_task: 1,
            duration_scale: 0.4,
            seed: 9,
        })
        .unwrap();
        let sum = |d: &Dataset| d.trials().iter().map(Trial::len).sum::<usize>();
        assert!(sum(&short) < sum(&long) * 7 / 10);
    }

    #[test]
    fn trials_per_task_multiplies_trials() {
        let cfg = DatasetConfig {
            kfall_subjects: 0,
            self_collected_subjects: 1,
            trials_per_task: 2,
            duration_scale: 0.4,
            seed: 21,
        };
        let ds = Dataset::generate(&cfg).unwrap();
        assert_eq!(ds.trials().len(), 88);
        // Repetitions differ from each other (fresh RNG stream each).
        let t0 = &ds.trials()[0];
        let t1 = &ds.trials()[1];
        assert_eq!(t0.task, t1.task);
        assert_ne!(t0.channels()[0], t1.channels()[0]);
    }
}
