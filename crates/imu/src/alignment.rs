//! Dataset alignment (§IV-A): bring KFall-frame recordings into the
//! canonical sensor frame and unit system.
//!
//! The two datasets use "identical sensor placements but not orientation";
//! the paper aligns KFall with a rotation matrix computed through
//! **Rodrigues' rotation formula** and converts all accelerations to g.
//! We reproduce that exactly: the KFall-like generator emits vectors in a
//! rotated frame (gravity along −Y when upright instead of +Z) in m/s²
//! and deg/s; [`align_trial`] computes the Rodrigues rotation taking the
//! KFall gravity axis onto ours and applies it to every accelerometer and
//! gyroscope sample, converts units, and recomputes the Euler channels.

use crate::channel::Channel;
use crate::trial::Trial;
use crate::units::{degs_to_rads, ms2_to_g};
use prefall_dsp::rotation::{Mat3, Vec3};

/// Direction gravity pulls on the *KFall-frame* accelerometer when the
/// wearer stands upright.
pub const KFALL_GRAVITY_AXIS: Vec3 = Vec3::new(0.0, -1.0, 0.0);

/// Direction gravity pulls in the canonical (self-collected) frame when
/// upright.
pub const CANONICAL_GRAVITY_AXIS: Vec3 = Vec3::new(0.0, 0.0, 1.0);

/// The rotation taking KFall-frame vectors into the canonical frame,
/// via Rodrigues' formula.
pub fn kfall_to_canonical() -> Mat3 {
    Mat3::rotation_between(KFALL_GRAVITY_AXIS, CANONICAL_GRAVITY_AXIS)
        .expect("gravity axes are non-zero")
}

/// The inverse rotation (canonical → KFall frame), used by the generator
/// to emit authentic KFall-style raw data.
pub fn canonical_to_kfall() -> Mat3 {
    kfall_to_canonical().transpose()
}

/// Rotates the accel/gyro channels of a trial **in place** from the KFall
/// frame into the canonical frame, converts m/s² → g and deg/s → rad/s,
/// and recomputes the Euler channels with the firmware fusion filter.
pub fn align_trial(trial: &mut Trial) {
    let r = kfall_to_canonical();
    rotate_channels(
        trial,
        &r,
        [Channel::AccelX, Channel::AccelY, Channel::AccelZ],
        ms2_to_g,
    );
    rotate_channels(
        trial,
        &r,
        [Channel::GyroX, Channel::GyroY, Channel::GyroZ],
        degs_to_rads,
    );
    trial.recompute_euler();
}

/// Rotates the given trial's accel/gyro channels from canonical into the
/// KFall frame and converts units to m/s² and deg/s (the generator-side
/// "de-alignment" used to manufacture raw KFall-style recordings).
pub fn dealign_trial(trial: &mut Trial) {
    let r = canonical_to_kfall();
    rotate_channels(
        trial,
        &r,
        [Channel::AccelX, Channel::AccelY, Channel::AccelZ],
        crate::units::g_to_ms2,
    );
    rotate_channels(
        trial,
        &r,
        [Channel::GyroX, Channel::GyroY, Channel::GyroZ],
        crate::units::rads_to_degs,
    );
}

fn rotate_channels(trial: &mut Trial, r: &Mat3, chans: [Channel; 3], unit: impl Fn(f64) -> f64) {
    let n = trial.len();
    let mut out = [
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    ];
    for i in 0..n {
        let v = Vec3::new(
            f64::from(trial.channel(chans[0])[i]),
            f64::from(trial.channel(chans[1])[i]),
            f64::from(trial.channel(chans[2])[i]),
        );
        let w = r.apply(v);
        out[0].push(unit(w.x) as f32);
        out[1].push(unit(w.y) as f32);
        out[2].push(unit(w.z) as f32);
    }
    for (c, o) in chans.into_iter().zip(out) {
        *trial.channel_mut(c) = o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Activity, TaskId};
    use crate::channel::NUM_CHANNELS;
    use crate::generator::render_script;
    use crate::rng::GenRng;
    use crate::script::script_for_task;
    use crate::subject::{DatasetSource, Subject, SubjectId};
    use crate::trial::Trial;

    #[test]
    fn rotation_maps_kfall_gravity_onto_canonical() {
        let r = kfall_to_canonical();
        let g = r.apply(KFALL_GRAVITY_AXIS);
        assert!((g - CANONICAL_GRAVITY_AXIS).norm() < 1e-12);
        assert!(r.is_rotation(1e-12));
    }

    #[test]
    fn dealign_then_align_round_trips() {
        // Render a canonical trial, de-align it into KFall raw form,
        // align it back; the accel/gyro channels must match the original.
        let mut rng = GenRng::seed_from_u64(31);
        let subject = Subject::sample(SubjectId(5), DatasetSource::KFall, &mut rng);
        let a = Activity::from_task(30).unwrap();
        let script = script_for_task(a, subject.tempo_scale, &mut rng);
        let signals = render_script(&script, &subject, &mut rng);
        let original =
            Trial::from_rendered(SubjectId(5), a.id, 0, DatasetSource::KFall, &signals).unwrap();

        let mut t = original.clone();
        dealign_trial(&mut t);
        // In the KFall raw frame the upright gravity is on −Y in m/s².
        let mid = 30;
        assert!(
            t.channel(Channel::AccelY)[mid] < -7.0,
            "raw KFall gravity on -y: {}",
            t.channel(Channel::AccelY)[mid]
        );
        align_trial(&mut t);
        for c in [
            Channel::AccelX,
            Channel::AccelZ,
            Channel::GyroX,
            Channel::GyroZ,
        ] {
            for i in 0..original.len() {
                let a = original.channel(c)[i];
                let b = t.channel(c)[i];
                assert!((a - b).abs() < 1e-3, "{c} sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn alignment_recovers_fused_euler() {
        let mut rng = GenRng::seed_from_u64(77);
        let subject = Subject::sample(SubjectId(6), DatasetSource::KFall, &mut rng);
        let a = Activity::from_task(17).unwrap(); // lying: strong pitch
        let script = script_for_task(a, subject.tempo_scale, &mut rng);
        let signals = render_script(&script, &subject, &mut rng);
        let original =
            Trial::from_rendered(SubjectId(6), a.id, 0, DatasetSource::KFall, &signals).unwrap();
        let mut t = original.clone();
        dealign_trial(&mut t);
        align_trial(&mut t);
        let mid = original.len() / 2;
        let p0 = original.channel(Channel::Pitch)[mid];
        let p1 = t.channel(Channel::Pitch)[mid];
        assert!((p0 - p1).abs() < 0.02, "pitch {p0} vs {p1}");
    }

    #[test]
    fn alignment_preserves_labels_and_length() {
        let ch = vec![vec![1.0f32; 50]; NUM_CHANNELS];
        let mut t = Trial::from_channels(
            SubjectId(0),
            TaskId::new(30).unwrap(),
            0,
            DatasetSource::KFall,
            ch,
            Some(10),
            Some(40),
        )
        .unwrap();
        align_trial(&mut t);
        assert_eq!(t.len(), 50);
        assert_eq!(t.fall_start(), Some(10));
        assert_eq!(t.impact(), Some(40));
    }
}
