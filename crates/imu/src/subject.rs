//! Study participants and their motion-style parameters.
//!
//! Subject-level variation is what makes *subject-independent*
//! cross-validation meaningful: two trials of the same task by the same
//! subject are more alike than trials by different subjects. Each subject
//! gets anthropometrics drawn from the paper's population statistics
//! (age 23.5 ± 6.3 y, weight 71.5 ± 13.2 kg, height 178 ± 8 cm) plus a
//! persistent motion style (gait frequency, movement amplitude, sensor
//! mounting bias, noisiness).

use crate::rng::GenRng;
use serde::{Deserialize, Serialize};

/// Identifier of a subject within the combined dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubjectId(pub u16);

impl std::fmt::Display for SubjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{:03}", self.0)
    }
}

/// Which dataset a subject (and their trials) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetSource {
    /// KFall-like subject: tasks 1–36, recorded in the KFall sensor frame
    /// and units (m/s², deg/s) until aligned.
    KFall,
    /// Self-collected-like subject: all 44 tasks, canonical frame/units.
    SelfCollected,
}

impl std::fmt::Display for DatasetSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetSource::KFall => f.write_str("kfall"),
            DatasetSource::SelfCollected => f.write_str("self-collected"),
        }
    }
}

/// Biological sex of a participant (the cohort is 24 M / 5 F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Sex {
    Male,
    Female,
}

/// A study participant with anthropometrics and persistent motion style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subject {
    /// Identifier within the combined dataset.
    pub id: SubjectId,
    /// Which dataset the subject belongs to.
    pub source: DatasetSource,
    /// Biological sex.
    pub sex: Sex,
    /// Age in years.
    pub age_years: f64,
    /// Height in centimetres.
    pub height_cm: f64,
    /// Weight in kilograms.
    pub weight_kg: f64,
    /// Preferred step frequency while walking, Hz (typical 1.6–2.2).
    pub gait_frequency_hz: f64,
    /// Multiplier on movement amplitudes (0.8–1.2).
    pub amplitude_scale: f64,
    /// Multiplier on movement speed / fall violence (0.85–1.15).
    pub tempo_scale: f64,
    /// Per-axis accelerometer mounting bias in g (sensor not perfectly
    /// aligned with the spine).
    pub accel_bias_g: [f64; 3],
    /// Multiplier on sensor noise level (0.7–1.4).
    pub noise_scale: f64,
}

impl Subject {
    /// Samples a subject from the population model.
    pub fn sample(id: SubjectId, source: DatasetSource, rng: &mut GenRng) -> Self {
        let sex = if rng.chance(24.0 / 29.0) {
            Sex::Male
        } else {
            Sex::Female
        };
        let height_cm = rng.normal_clamped(178.0, 8.0, 150.0, 205.0);
        // Weight loosely correlated with height.
        let weight_kg = rng.normal_clamped(71.5 + 0.4 * (height_cm - 178.0), 13.2, 45.0, 120.0);
        let age_years = rng.normal_clamped(23.5, 6.3, 18.0, 60.0);
        Self {
            id,
            source,
            sex,
            age_years,
            height_cm,
            weight_kg,
            // Taller subjects tend to step slower.
            gait_frequency_hz: rng.normal_clamped(1.9 - 0.01 * (height_cm - 178.0), 0.15, 1.5, 2.4),
            amplitude_scale: rng.normal_clamped(1.0, 0.1, 0.8, 1.25),
            tempo_scale: rng.normal_clamped(1.0, 0.08, 0.8, 1.2),
            accel_bias_g: [
                rng.normal_clamped(0.0, 0.01, -0.04, 0.04),
                rng.normal_clamped(0.0, 0.01, -0.04, 0.04),
                rng.normal_clamped(0.0, 0.01, -0.04, 0.04),
            ],
            noise_scale: rng.normal_clamped(1.0, 0.15, 0.7, 1.4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_n(n: usize, seed: u64) -> Vec<Subject> {
        let mut rng = GenRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Subject::sample(SubjectId(i as u16), DatasetSource::SelfCollected, &mut rng))
            .collect()
    }

    #[test]
    fn anthropometrics_within_clamps() {
        for s in sample_n(500, 3) {
            assert!((150.0..=205.0).contains(&s.height_cm));
            assert!((45.0..=120.0).contains(&s.weight_kg));
            assert!((18.0..=60.0).contains(&s.age_years));
            assert!((1.5..=2.4).contains(&s.gait_frequency_hz));
            assert!((0.8..=1.25).contains(&s.amplitude_scale));
            assert!((0.7..=1.4).contains(&s.noise_scale));
        }
    }

    #[test]
    fn population_statistics_roughly_match_paper() {
        let subjects = sample_n(2000, 11);
        let mean_h = subjects.iter().map(|s| s.height_cm).sum::<f64>() / 2000.0;
        let mean_w = subjects.iter().map(|s| s.weight_kg).sum::<f64>() / 2000.0;
        let mean_a = subjects.iter().map(|s| s.age_years).sum::<f64>() / 2000.0;
        assert!((mean_h - 178.0).abs() < 2.0, "height mean {mean_h}");
        assert!((mean_w - 71.5).abs() < 3.0, "weight mean {mean_w}");
        // Age clamp at 18 skews the mean up slightly.
        assert!((mean_a - 24.5).abs() < 2.5, "age mean {mean_a}");
        let males = subjects.iter().filter(|s| s.sex == Sex::Male).count();
        let frac = males as f64 / 2000.0;
        assert!((frac - 24.0 / 29.0).abs() < 0.05, "male fraction {frac}");
    }

    #[test]
    fn subjects_differ_from_each_other() {
        let subjects = sample_n(10, 17);
        let distinct_heights: std::collections::BTreeSet<_> = subjects
            .iter()
            .map(|s| (s.height_cm * 1000.0) as i64)
            .collect();
        assert!(distinct_heights.len() > 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SubjectId(7).to_string(), "S007");
        assert_eq!(DatasetSource::KFall.to_string(), "kfall");
    }
}
