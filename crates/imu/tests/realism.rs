//! Statistical realism checks on the synthetic substrate — the
//! properties the downstream evaluation *depends on* must hold across
//! seeds, not just for one lucky draw.

use prefall_imu::activity::{Activity, FallCategory};
use prefall_imu::channel::Channel;
use prefall_imu::dataset::{Dataset, DatasetConfig};
use prefall_imu::trial::Trial;

fn gen(seed: u64, subjects: usize) -> Dataset {
    Dataset::generate(&DatasetConfig {
        kfall_subjects: 0,
        self_collected_subjects: subjects,
        trials_per_task: 1,
        duration_scale: 0.6,
        seed,
    })
    .expect("generation succeeds")
}

fn accel_mag(t: &Trial, i: usize) -> f32 {
    let x = t.channel(Channel::AccelX)[i];
    let y = t.channel(Channel::AccelY)[i];
    let z = t.channel(Channel::AccelZ)[i];
    (x * x + y * y + z * z).sqrt()
}

fn mean_usable_fall_ms(ds: &Dataset, pred: impl Fn(&Activity) -> bool) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for t in ds
        .trials()
        .iter()
        .filter(|t| t.is_fall() && pred(t.activity()))
    {
        let usable = t
            .usable_fall_range()
            .map(|r| r.len() as f64 * 10.0)
            .unwrap_or(0.0);
        total += usable;
        n += 1;
    }
    total / n.max(1) as f64
}

#[test]
fn sit_down_falls_are_shorter_than_walking_falls() {
    // Table IVa's hardest non-height falls are the short "when trying to
    // sit down" ones (tasks 20-22); they must have less usable
    // pre-impact signal than walking falls on average.
    let mut sit = 0.0;
    let mut walk = 0.0;
    for seed in 0..4u64 {
        let ds = gen(100 + seed, 2);
        sit += mean_usable_fall_ms(&ds, |a| matches!(a.id.get(), 20..=22));
        walk += mean_usable_fall_ms(&ds, |a| a.fall_category == Some(FallCategory::FromWalking));
    }
    assert!(
        sit < walk,
        "sit-down falls usable {sit:.0} ms should be shorter than walking falls {walk:.0} ms"
    );
}

#[test]
fn every_fall_category_shows_freefall_before_impact() {
    let ds = gen(7, 2);
    for t in ds.trials().iter().filter(|t| t.is_fall()) {
        let im = t.impact().unwrap();
        let min_before = (t.fall_start().unwrap()..im)
            .map(|i| accel_mag(t, i))
            .fold(f32::MAX, f32::min);
        assert!(
            min_before < 0.85,
            "task {}: min pre-impact magnitude {min_before}",
            t.task
        );
    }
}

#[test]
fn adls_without_jumps_stay_near_one_g_envelope() {
    // Quiet ADLs (stand, sit, lie, walk) never show deep free fall —
    // only the dynamic red tasks (jump/stumble/collapse families) may.
    let ds = gen(11, 2);
    for t in ds.trials().iter().filter(|t| !t.is_fall()) {
        let quiet = matches!(t.task.get(), 1 | 2 | 3 | 6 | 11 | 13 | 17 | 18 | 35 | 43);
        if quiet {
            let min = (10..t.len())
                .map(|i| accel_mag(t, i))
                .fold(f32::MAX, f32::min);
            assert!(min > 0.55, "task {}: min magnitude {min}", t.task);
        }
    }
}

#[test]
fn jump_tasks_do_show_freefall() {
    let ds = gen(13, 3);
    let mut seen = 0;
    for t in ds
        .trials()
        .iter()
        .filter(|t| matches!(t.task.get(), 4 | 44))
    {
        let min = (10..t.len())
            .map(|i| accel_mag(t, i))
            .fold(f32::MAX, f32::min);
        assert!(min < 0.5, "task {}: flight magnitude {min}", t.task);
        seen += 1;
    }
    assert!(seen >= 6);
}

#[test]
fn impact_is_the_magnitude_peak_of_fall_trials() {
    let ds = gen(17, 2);
    for t in ds.trials().iter().filter(|t| t.is_fall()) {
        let im = t.impact().unwrap();
        let peak_all = (0..t.len()).map(|i| accel_mag(t, i)).fold(0.0f32, f32::max);
        let peak_impact = (im..(im + 15).min(t.len()))
            .map(|i| accel_mag(t, i))
            .fold(0.0f32, f32::max);
        assert!(
            peak_impact > 0.75 * peak_all,
            "task {}: impact window peak {peak_impact} vs global {peak_all}",
            t.task
        );
    }
}

#[test]
fn fall_durations_span_the_paper_range_across_population() {
    // Across many trials the onset→impact durations should cover a wide
    // band inside 150–1100 ms (the paper: half of falls < 500 ms).
    let ds = gen(23, 4);
    let durations: Vec<f64> = ds
        .trials()
        .iter()
        .filter(|t| t.is_fall())
        .map(|t| (t.impact().unwrap() - t.fall_start().unwrap()) as f64 * 10.0)
        .collect();
    assert!(durations.len() > 60);
    let min = durations.iter().cloned().fold(f64::MAX, f64::min);
    let max = durations.iter().cloned().fold(0.0f64, f64::max);
    assert!(min >= 150.0, "min fall {min} ms");
    assert!(max <= 1200.0, "max fall {max} ms");
    assert!(max - min > 250.0, "durations too uniform: {min}..{max}");
    // The paper's "50% of falls < 500 ms" describes real-world falls;
    // protocol falls (KFall-style, reproduced here) skew longer. Require
    // a non-trivial share of short falls without demanding the
    // real-world split.
    let below_550 = durations.iter().filter(|&&d| d < 550.0).count();
    let frac = below_550 as f64 / durations.len() as f64;
    assert!(
        (0.08..0.95).contains(&frac),
        "fraction of sub-550 ms falls {frac}"
    );
}

#[test]
fn euler_pitch_tracks_forward_vs_backward_falls() {
    let ds = gen(29, 2);
    let end_pitch = |t: &Trial| {
        let p = t.channel(Channel::Pitch);
        p[t.len() - 5]
    };
    for t in ds.trials() {
        match t.task.get() {
            30..=32 => assert!(
                end_pitch(t) > 0.6,
                "forward fall task {} ends with pitch {}",
                t.task,
                end_pitch(t)
            ),
            34 | 37 | 38 | 40 => assert!(
                end_pitch(t) < -0.6,
                "backward fall task {} ends with pitch {}",
                t.task,
                end_pitch(t)
            ),
            _ => {}
        }
    }
}

#[test]
fn subjects_differ_but_seeds_reproduce() {
    let a = gen(31, 2);
    let b = gen(31, 2);
    assert_eq!(a, b);
    // The two subjects' walking trials differ in step frequency
    // signature (zero crossings of the vertical oscillation).
    let walk: Vec<&Trial> = a.trials().iter().filter(|t| t.task.get() == 6).collect();
    assert_eq!(walk.len(), 2);
    assert_ne!(walk[0].channels()[2], walk[1].channels()[2]);
}
