//! Umbrella crate for the reproduction of *A Lightweight CNN for
//! Real-Time Pre-Impact Fall Detection* (DATE 2025).
//!
//! This crate simply re-exports the workspace members so examples and
//! downstream users can depend on one name:
//!
//! * [`imu`] — synthetic IMU dataset substrate (activities of Table II,
//!   KFall-like and self-collected-like datasets).
//! * [`dsp`] — Butterworth filtering, segmentation, sensor fusion,
//!   Rodrigues rotations.
//! * [`nn`] — from-scratch training stack and int8 quantization.
//! * [`mcu`] — STM32F722 deployment model.
//! * [`core`] — the paper's contribution: pipeline, lightweight CNN,
//!   baselines, cross-validation, event-level evaluation, airbag trigger.
//! * [`telemetry`] — zero-dependency metrics/tracing: counters, gauges,
//!   latency histograms, RAII spans, JSONL event streams.
//! * [`trace`] — always-on timeline tracer: thread-local ring buffers
//!   of fixed-size span events, drained into Chrome trace-event JSON
//!   (Perfetto-loadable) and wall-clock attribution reports.
//! * [`obsd`] — observability daemon: Prometheus `/metrics` exposition,
//!   `/healthz` lead-time-budget probe, `/snapshot` JSON, served by a
//!   hand-rolled HTTP listener.
//! * [`faults`] — seeded, composable sensor fault injection (dropout,
//!   NaN bursts, stuck axes, saturation, spikes, noise, outages) for
//!   exercising the hardened ingest path and the robustness sweep.
//! * [`blackbox`] — flight recorder: ring-buffered capture of raw
//!   samples, guard state and per-branch score attribution; versioned
//!   incident dumps on trigger / missed fall / health degradation; and
//!   deterministic bit-exact incident replay.
//! * [`watch`] — in-process time-series store over the live registry,
//!   declarative SLOs evaluated as multi-window burn rates, and an
//!   alert sink that degrades `/healthz` and asks the blackbox for an
//!   incident dump on quality breaches.
//! * [`drift`] — label-free model & data health: integer-quantized
//!   feature/score sketches merged into mergeable fingerprints, PSI and
//!   quantile-shift scoring against a committed reference, and a
//!   zero-alloc detector tap that publishes `drift.*` gauges.
//! * [`fleet`] — fault-tolerant multi-stream serving: a sharded
//!   session pool over one shared model, batched tick-sequenced
//!   ingest with backpressure and load shedding, a supervisor that
//!   parks idle sessions as checkpoints, and a hand-rolled TCP ingest
//!   server with per-connection deadlines.
//!
//! # Quickstart
//!
//! ```no_run
//! use prefall::core::experiment::{Experiment, ExperimentConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ExperimentConfig::fast();
//! let report = Experiment::new(config).run()?;
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

pub use prefall_blackbox as blackbox;
pub use prefall_core as core;
pub use prefall_drift as drift;
pub use prefall_dsp as dsp;
pub use prefall_faults as faults;
pub use prefall_fleet as fleet;
pub use prefall_imu as imu;
pub use prefall_mcu as mcu;
pub use prefall_nn as nn;
pub use prefall_obsd as obsd;
pub use prefall_telemetry as telemetry;
pub use prefall_trace as trace;
pub use prefall_watch as watch;
