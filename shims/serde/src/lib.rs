//! Offline stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `serde` cannot be vendored. Nothing in the repository actually
//! serializes through serde traits — the `#[derive(Serialize, Deserialize)]`
//! annotations on config and model structs are declarations of intent, and
//! all real persistence goes through the hand-rolled binary format in
//! `prefall-nn::serialize` / `prefall-core::persist` and the hand-rolled
//! JSON in `prefall-telemetry`. This shim keeps those derives compiling:
//! marker traits in the type namespace, no-op derive macros in the macro
//! namespace, same import shape as the real crate.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Never used as a bound here.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`. Never used as a bound here.
pub trait Deserialize<'de> {}
