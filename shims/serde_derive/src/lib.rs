//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace. The repository never serializes through serde traits (there is
//! no `serde_json` in the tree); the derives on config/model structs are
//! documentation of intent. These macros accept the same syntax (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
