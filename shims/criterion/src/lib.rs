//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock timer instead of criterion's statistical
//! machinery. Good enough to eyeball regressions offline; the serious
//! numbers flow through `prefall-telemetry` instead.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing callback holder.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: a short warm-up, then `sample_size` timed
    /// batches whose batch size is auto-scaled so one batch is ≥ ~1 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        // Scale the batch so timer quantisation doesn't dominate.
        let mut batch = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t0.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().checked_div(batch).unwrap_or_default());
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }
}

fn report(id: &str, b: &Bencher) {
    let med = b.median();
    println!("bench {id:<48} median {:>12.3} µs", med.as_secs_f64() * 1e6);
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

const DEFAULT_SAMPLES: usize = 15;

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLES),
        };
        f(&mut b);
        report(&id, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.unwrap_or(DEFAULT_SAMPLES),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&id, &b);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }
}
