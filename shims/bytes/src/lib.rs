//! Offline stand-in for the `bytes` crate covering the little-endian
//! cursor surface this workspace's binary formats use. `BytesMut` is a
//! plain growable buffer, `Bytes` a frozen immutable one, and `Buf` a
//! consuming-reader view implemented for `&[u8]` (reads advance the
//! slice), matching the real crate's semantics for these methods.

use std::ops::Deref;

/// Immutable byte buffer (frozen form of [`BytesMut`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side cursor methods (little-endian).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
}

/// Read-side cursor methods (little-endian). Implemented for `&[u8]`:
/// each read consumes from the front of the slice.
///
/// # Panics
///
/// Like the real crate, reads past the end of the buffer panic; callers
/// are expected to check [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 4);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_consumes() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r, &[3, 4, 5]);
    }
}
