//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the `proptest!` macro (with `#![proptest_config(...)]`),
//! numeric range strategies, tuple strategies, `prop::collection::vec`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` macros. There is no shrinking: a failing case reports
//! its case index and the runner's fixed seed, which together make the
//! failure exactly reproducible (the generator is deterministic per test
//! name).

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs out; the case is not counted.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name so every test gets its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, span)` via widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    impl Strategy for bool {
        type Value = bool;
        fn new_value(&self, _rng: &mut TestRng) -> bool {
            *self
        }
    }

    /// Constant strategy, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
        A, B, C, D, E, F
    ));

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (**self).new_value(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type so heterogeneous
    /// strategies of the same `Value` can share a collection (the
    /// building block of [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Weighted choice among boxed strategies, built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        /// `(weight, strategy)` pairs; weights need not sum to anything.
        pub options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            let mut pick = rng.below(total);
            for (w, s) in &self.options {
                if pick < u64::from(*w) {
                    return s.new_value(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick out of range")
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace mirroring `proptest::prop` as used via the prelude
/// (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted (`w => strategy`) or uniform (`strategy, strategy, …`)
/// choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$(($weight, $crate::strategy::boxed($strategy))),+],
        }
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strategy),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// The `proptest!` block macro: zero or more `#[test]` functions whose
/// arguments are drawn from strategies, optionally preceded by
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                case += 1;
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "prop_assume! rejected too many cases in {}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed on case {case}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn tuples_and_assume((a, b) in (0i32..100, 0i32..100)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
