//! Offline stand-in for `rand`, exposing exactly the surface this workspace
//! uses: `rngs::Xoshiro256PlusPlus`, `SeedableRng::seed_from_u64`, and
//! `RngExt::{random, random_range}`.
//!
//! The generator is a faithful xoshiro256++ implementation (Blackman &
//! Vigna), seeded through SplitMix64 exactly like `rand_xoshiro`, so
//! sequences are high-quality and deterministic per seed. Only the API
//! shape is a stub — the randomness is real.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only seeding path used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable into a value of type `T`.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end);
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        debug_assert!(self.start < self.end);
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased integer draw in `[0, span)` via 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange<usize> for Range<usize> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        debug_assert!(self.start < self.end);
        self.start + below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi);
        if lo == 0 && hi == usize::MAX {
            return u64::sample_standard(rng) as usize;
        }
        lo + below(rng, (hi - lo + 1) as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        debug_assert!(self.start < self.end);
        self.start + below(rng, self.end - self.start)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna, 2019). 256-bit state, period 2^256-1.
    #[derive(Debug, Clone)]
    pub struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl SeedableRng for Xoshiro256PlusPlus {
        /// Expands the seed through SplitMix64, matching `rand_xoshiro`'s
        /// `seed_from_u64` so distinct seeds give uncorrelated states and a
        /// zero seed is safe (the all-zero state is unreachable).
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for Xoshiro256PlusPlus {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::Xoshiro256PlusPlus;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&x));
            let k = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&k));
        }
    }

    #[test]
    fn reasonably_uniform() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
