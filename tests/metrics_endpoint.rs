//! End-to-end exporter test: a real detector-shaped registry served by
//! [`prefall::obsd::MetricsServer`] and scraped through a plain
//! `TcpStream`, exercising the same HTTP path a Prometheus scraper (or
//! the README's `curl` examples) would take.

use prefall::obsd::{MetricsServer, ServerConfig};
use prefall::telemetry::{Recorder, Registry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// One raw HTTP GET, returning (status-line, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

fn detector_shaped_registry() -> Arc<Registry> {
    let reg = Arc::new(Registry::new());
    reg.counter_add("detector.windows", 1234);
    reg.counter_add("quality.fall_events{task=39}", 5);
    reg.counter_add("quality.fall_missed{task=39}", 1);
    reg.counter_add("quality.adl_false_activations{risk=red}", 2);
    reg.gauge_set("quality.lead_budget_fraction", 0.93);
    reg.gauge_set("quality.lead_budget_ms", 150.0);
    reg.register_histogram("detector.infer_seconds", vec![1e-5, 1e-4, 1e-3]);
    for v in [2e-5, 5e-5, 8e-5, 2e-4] {
        reg.observe("detector.infer_seconds", v);
    }
    reg.register_histogram("detector.lead_time_ms", vec![150.0, 300.0, 600.0]);
    for v in [120.0, 250.0, 400.0, 500.0] {
        reg.observe("detector.lead_time_ms", v);
    }
    reg
}

#[test]
fn metrics_endpoint_round_trip() {
    let reg = detector_shaped_registry();
    let server = MetricsServer::start("127.0.0.1:0", reg, ServerConfig::default()).expect("server");
    let addr = server.addr();

    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");

    // Inference-latency histogram with cumulative buckets.
    assert!(body.contains("# TYPE prefall_detector_infer_seconds histogram"));
    assert!(body.contains("prefall_detector_infer_seconds_bucket{le=\"0.0001\"} 3"));
    assert!(body.contains("prefall_detector_infer_seconds_bucket{le=\"+Inf\"} 4"));
    assert!(body.contains("prefall_detector_infer_seconds_count 4"));

    // Per-activity confusion counters with real labels.
    assert!(body.contains("prefall_quality_fall_events_total{task=\"39\"} 5"));
    assert!(body.contains("prefall_quality_fall_missed_total{task=\"39\"} 1"));
    assert!(body.contains("prefall_quality_adl_false_activations_total{risk=\"red\"} 2"));

    // Lead-time-budget gauge.
    assert!(body.contains("prefall_quality_lead_budget_fraction 0.93"));
    assert!(body.contains("prefall_quality_lead_budget_ms 150.0"));
}

#[test]
fn healthz_reflects_lead_time_budget() {
    let reg = detector_shaped_registry();
    // 3 of 4 recorded lead times ≥ 150 ms; the 0.9 default floor makes
    // that degraded, a 0.5 floor healthy.
    let degraded =
        MetricsServer::start("127.0.0.1:0", reg.clone(), ServerConfig::default()).expect("server");
    let (status, body) = get(degraded.addr(), "/healthz");
    assert!(status.contains("503"), "{status}: {body}");
    assert!(body.contains("degraded"));

    let relaxed = MetricsServer::start(
        "127.0.0.1:0",
        reg,
        ServerConfig {
            min_budget_fraction: 0.5,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let (status, body) = get(relaxed.addr(), "/healthz");
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("ok"));
}

#[test]
fn snapshot_endpoint_serves_registry_json() {
    let reg = detector_shaped_registry();
    let server = MetricsServer::start("127.0.0.1:0", reg, ServerConfig::default()).expect("server");
    let (status, body) = get(server.addr(), "/snapshot");
    assert!(status.contains("200"));
    let doc = prefall::telemetry::JsonValue::parse(body.trim()).expect("valid JSON");
    let counters = doc.get("counters").expect("counters section");
    assert_eq!(
        counters.get("detector.windows").and_then(|v| v.as_f64()),
        Some(1234.0)
    );
}

#[test]
fn trace_endpoint_serves_a_drained_timeline() {
    // Record a real (tiny) timeline through the public tracing API,
    // drain it to Chrome JSON, and serve it the way `prefall-profile`
    // does: `LastTrace` attached via `start_full`.
    prefall::trace::arm(256);
    let span = prefall::trace::intern("e2e.trace_span");
    {
        let _g = prefall::trace::trace_span!(span);
    }
    prefall::trace::disarm();
    let chrome = prefall::trace::drain().to_chrome_json();
    assert!(chrome.contains("e2e.trace_span"), "span survives the drain");

    let store = Arc::new(prefall::trace::LastTrace::new());
    let server = MetricsServer::start_full(
        "127.0.0.1:0",
        Arc::new(Registry::new()),
        ServerConfig::default(),
        None,
        Some(store.clone()),
    )
    .expect("server");

    // Before any trace is published: 404, not an empty document.
    let (status, _) = get(server.addr(), "/trace");
    assert!(status.contains("404"), "{status}");

    store.store(chrome);
    let (status, body) = get(server.addr(), "/trace");
    assert!(status.contains("200"), "{status}");
    let doc = prefall::telemetry::JsonValue::parse(body.trim()).expect("valid JSON");
    let events = doc.get("traceEvents").expect("traceEvents array");
    let rendered = events.to_string();
    assert!(rendered.contains("e2e.trace_span"), "{rendered}");
}

#[test]
fn unknown_path_is_404_and_post_is_405() {
    let reg = Arc::new(Registry::new());
    let server = MetricsServer::start("127.0.0.1:0", reg, ServerConfig::default()).expect("server");
    let (status, _) = get(server.addr(), "/nope");
    assert!(status.contains("404"), "{status}");

    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(
        stream,
        "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 405"), "{response}");
}
