//! Proof that disabled telemetry is (near-)free: with the default
//! [`NoopRecorder`] installed, a steady-state [`StreamingDetector::push_sample`]
//! call on a non-classifying sample performs **zero heap allocations**
//! and never reads the clock (the span holds no start time). The same
//! holds with the flight recorder armed: its rings are pre-allocated,
//! so the per-sample tap path stays allocation-free after warm-up.
//!
//! A counting global allocator makes the claim checkable; the file
//! holds exactly one test so no concurrent test pollutes the counter.

use prefall_blackbox::{FlightConfig, FlightRecorder};
use prefall_core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall_core::models::ModelKind;
use prefall_core::pipeline::PipelineConfig;
use prefall_drift::{DriftConfig, DriftMonitor, Fingerprint};
use prefall_dsp::segment::Overlap;
use prefall_dsp::stats::Normalizer;
use prefall_telemetry::{NoopRecorder, Recorder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn noop_recorder_push_sample_does_not_allocate() {
    assert!(!NoopRecorder.enabled());

    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(200.0, Overlap::Half),
        threshold: 0.5,
        consecutive: 1,
        // The guard stays on: the zero-allocation claim must hold for
        // the hardened ingest path, not just the legacy one.
        guard: GuardConfig::default(),
    };
    let window = cfg.pipeline.segmentation.window();
    let hop = cfg.pipeline.segmentation.hop();
    let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();

    // Reach steady state: the window ring is full and a classification
    // just happened, so the next `hop - 1` samples are pure streaming.
    for _ in 0..window {
        let _ = det.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..hop - 1 {
        let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
        assert!(p.is_none(), "these samples must not complete a hop");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state push_sample with the no-op recorder must not allocate"
    );

    // The classification itself is allocation-free too: inference runs
    // through the detector-owned workspace (fused conv+ReLU+pool and
    // buffered dense kernels write into reusable scratch), and the
    // window is assembled into a reusable segment buffer. Warm up with
    // one classified window (first use sizes the buffers), then demand
    // zero allocations across entire hop cycles *including* their
    // classified windows.
    let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
    assert!(p.is_some(), "warm-up sample must complete the hop");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut classified = 0;
    for _ in 0..2 * hop {
        if det
            .push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0])
            .is_some()
        {
            classified += 1;
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(classified, 2, "two hop cycles classify twice");
    assert_eq!(
        after - before,
        0,
        "a classified window on the workspace inference path must not allocate"
    );

    // Same claim with the flight recorder armed: the tap path copies
    // fixed-size records into pre-allocated rings, so a steady-state
    // streaming sample still performs zero heap allocations, and a
    // full hop cycle (including one traced classification) allocates
    // exactly as much as the previous cycle — nothing accumulates.
    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(200.0, Overlap::Half),
        // Unreachable threshold: the sigmoid never exceeds 1, so no
        // trigger fires and no incident dump (which may allocate) is
        // taken mid-measurement.
        threshold: 1.1,
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
    let flight = FlightRecorder::install(&mut det, Vec::new(), FlightConfig::default());
    det.reset(); // sync the recorder to the stream start

    // Warm up: fill the window, classify once (warms the branch-trace
    // buffer), then settle into steady state.
    for _ in 0..window + hop {
        let _ = det.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..hop - 1 {
        let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
        assert!(p.is_none(), "these samples must not complete a hop");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state push_sample with the flight recorder armed must not allocate"
    );

    // Two consecutive full hop cycles allocate identically: the traced
    // inference reuses its buffers, and the ring writes are in-place.
    let measure_cycle = |det: &mut StreamingDetector| {
        let start = ALLOCATIONS.load(Ordering::Relaxed);
        let mut classified = 0;
        for _ in 0..hop {
            if det
                .push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0])
                .is_some()
            {
                classified += 1;
            }
        }
        assert_eq!(classified, 1, "each hop cycle classifies exactly once");
        ALLOCATIONS.load(Ordering::Relaxed) - start
    };
    let first = measure_cycle(&mut det);
    let second = measure_cycle(&mut det);
    assert_eq!(
        first, second,
        "hop cycles with the flight recorder armed must not accumulate allocations"
    );
    assert_eq!(flight.incident_count(), 0, "no incident should have fired");

    // Same claim with the drift monitor armed and scoring: every
    // sketch is fixed-size and updated in place, branch shares fold
    // through a stack array, epoch rotation is a `mem::swap`, and the
    // rescore (forced every window via `publish_every: 1`, with a
    // reference set so `compare` actually runs) merges into a
    // pre-allocated scratch fingerprint and publishes through static
    // gauge names. Steady-state streaming allocates zero; full hop
    // cycles — each including a traced classification *and* a rescore
    // against the reference — allocate nothing beyond their first.
    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(200.0, Overlap::Half),
        threshold: 1.1, // never trigger: no incident path mid-measurement
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
    let handle = DriftMonitor::install(
        &mut det,
        DriftConfig {
            publish_every: 1,
            ..DriftConfig::default()
        },
    );
    // A small but non-empty reference so the PSI/quantile comparison
    // paths all execute.
    handle.set_reference({
        let mut reference = Fingerprint::new();
        for t in 0..200u64 {
            let x = t as f32 * 0.07;
            reference.observe_sample(
                [0.02 * x.sin(), -0.03 * x.cos(), 1.0],
                [0.5 * x.sin(), -0.4 * x.cos(), 0.1],
            );
        }
        reference.observe_score(0.01);
        reference
    });

    for _ in 0..window + hop {
        let _ = det.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..hop - 1 {
        let p = det.push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0]);
        assert!(p.is_none(), "these samples must not complete a hop");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state push_sample with the drift monitor armed must not allocate"
    );

    let first = measure_cycle(&mut det);
    let second = measure_cycle(&mut det);
    assert_eq!(
        first, second,
        "hop cycles with the drift monitor armed and scoring must not \
         accumulate allocations"
    );
    assert!(
        handle.score().is_some(),
        "the armed monitor really did rescore during the measurement"
    );

    // Same claim with timeline tracing armed — in full per-kernel
    // detail, the most event-dense configuration. Warm-up pays the
    // one-time costs (ring registration for this thread, span-name
    // interning through each crate's `OnceLock`); after that every
    // begin/end writes one fixed-size record into the pre-allocated
    // ring, so entire hop cycles *including* their traced
    // classification allocate nothing.
    let cfg = DetectorConfig {
        pipeline: PipelineConfig::paper(200.0, Overlap::Half),
        threshold: 1.1, // never trigger: no incident dump mid-measurement
        consecutive: 1,
        guard: GuardConfig::default(),
    };
    let net = ModelKind::ProposedCnn.build(window, 9, 1).unwrap();
    let mut det = StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap();
    prefall_trace::arm(4096);
    prefall_trace::set_detail(true);
    for _ in 0..window + hop {
        let _ = det.push_sample([0.0, 0.0, 1.0], [0.0, 0.0, 0.0]);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut classified = 0;
    for _ in 0..2 * hop {
        if det
            .push_sample([0.01, -0.02, 1.0], [0.0, 0.1, 0.0])
            .is_some()
        {
            classified += 1;
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    prefall_trace::disarm();
    assert_eq!(classified, 2, "two hop cycles classify twice");
    assert_eq!(
        after - before,
        0,
        "armed detail tracing must write spans without allocating"
    );

    // The rings really did record the traced classifications.
    let timeline = prefall_trace::drain();
    let attr = timeline.attribution();
    assert!(
        attr.total("nn.infer").count >= 2,
        "both traced classifications appear in the drained timeline"
    );

    // Finally, the watch sampler: after warm-up (first sight of each
    // series creates its pre-sized rings), a tick over a stable
    // registry is pure in-place work — the visitor reads counters and
    // gauges by `&str` lookup, histogram buckets copy into fixed
    // `Box<[f64]>` rings, and SLO evaluation is arithmetic over ring
    // indices. No alert transitions occur (transitions are the one
    // documented allocating path), so fifty ticks must allocate zero.
    let registry = std::sync::Arc::new(prefall_telemetry::Registry::new());
    registry.counter_add("detector.false_activations", 3);
    registry.gauge_set("par.queue_depth", 2.0);
    for i in 0..32 {
        registry.observe("detector.push_sample_seconds", 1e-5 * (i + 1) as f64);
    }
    let watch = prefall_watch::Watch::new(
        std::sync::Arc::clone(&registry),
        prefall_watch::WatchConfig::production(),
    );
    for t in 0..3 {
        watch.tick_at(t as f64); // warm-up: series creation allocates
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for t in 3..53 {
        watch.tick_at(t as f64);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "a warm watch sampler tick must not allocate"
    );
    assert_eq!(watch.ticks(), 53);
}
