//! Acceptance tests for the robustness work: the hardened detector
//! survives the issue's 5 % dropout + NaN-burst plan on every fall
//! trial, its fault counters surface through the Prometheus exposition,
//! and the unhardened (guard-off) path demonstrably fails the same
//! plan — it cannot account for a single fault and goes silently blind
//! after the first NaN poisons the IIR filter state.

use prefall::core::detector::{DetectorConfig, GuardConfig, StreamingDetector};
use prefall::core::models::ModelKind;
use prefall::dsp::stats::Normalizer;
use prefall::faults::{run_on_faulted_trial, FaultPlan, SampleEvent};
use prefall::imu::dataset::Dataset;
use prefall::imu::trial::Trial;
use prefall::obsd::prometheus;
use prefall::telemetry::Registry;
use std::sync::Arc;

/// Untrained but seeded detector: enough to exercise the full ingest →
/// fusion → filter → window → engine path deterministically.
fn detector(guard: GuardConfig) -> StreamingDetector {
    let mut cfg = DetectorConfig::paper_400ms();
    cfg.guard = guard;
    let w = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn.build(w, 9, 7).unwrap();
    StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap()
}

fn fall_trials() -> Vec<Trial> {
    Dataset::combined_scaled(2, 2, 7)
        .unwrap()
        .trials()
        .iter()
        .filter(|t| t.is_fall())
        .cloned()
        .collect()
}

/// The issue's acceptance plan: 5 % dropout plus NaN bursts at seed 7.
fn acceptance_plan() -> FaultPlan {
    FaultPlan::dropout_nan(7, 0.05, 0.01, 5)
}

#[test]
fn hardened_detector_survives_the_acceptance_plan() {
    let falls = fall_trials();
    assert!(!falls.is_empty(), "dataset must contain fall trials");
    let registry = Arc::new(Registry::new());
    let mut det = detector(GuardConfig::default());
    det.set_recorder(registry.clone());
    let plan = acceptance_plan();

    for trial in &falls {
        let out = run_on_faulted_trial(&mut det, trial, &plan, registry.as_ref());
        if let Some(p) = out.peak_prob {
            assert!(p.is_finite(), "non-finite peak probability");
        }
    }

    let snap = registry.snapshot();
    assert_eq!(
        snap.counters.get("faults.nonfinite_probs").copied(),
        None,
        "no non-finite probability may escape the guard"
    );
    let status = det.guard_status();
    assert!(status.nonfinite > 0, "NaN bursts must have been caught");
    assert!(status.gaps_filled > 0, "dropout must have been bridged");
    assert_eq!(status.engine_rejects, 0, "guard cleans segments upstream");

    // The fault accounting is scrape-visible: the guard counters land
    // in the Prometheus exposition under the configured namespace.
    let text = prometheus::render(&snap, "prefall");
    assert!(
        text.contains("prefall_guard_faults_total"),
        "guard fault counter missing from /metrics:\n{text}"
    );
    assert!(
        text.contains("prefall_guard_samples_total"),
        "guard sample counter missing from /metrics:\n{text}"
    );
}

#[test]
fn non_monotone_ticks_are_counted_and_recoverable() {
    use prefall::core::session::ModelBundle;

    let cfg = DetectorConfig::paper_400ms();
    let w = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn.build(w, 9, 7).unwrap();
    let bundle = ModelBundle::new(net, Normalizer::identity(9), cfg).unwrap();
    let registry = Arc::new(Registry::new());

    // Every axis varies, so the stuck-axis watchdog stays quiet.
    let sample = |t: u64| {
        let x = t as f32 * 0.04;
        (
            [0.03 * x.sin(), 0.02 * x.cos(), 1.0 + 0.01 * (2.0 * x).sin()],
            [
                10.0 * x.cos(),
                -4.0 * (0.7 * x).sin(),
                0.5 * (1.3 * x).cos(),
            ],
        )
    };

    // A clean sequenced stream, as the bit-exact reference.
    let mut clean = bundle.new_session();
    let mut clean_probs = Vec::new();
    for t in 0..3 * w as u64 {
        let (a, g) = sample(t);
        clean.push_at(&bundle, t, a, g, &mut clean_probs);
    }

    // The same stream with the transport re-delivering old ticks: a
    // duplicate batch and an out-of-order straggler arrive mid-stream.
    let mut session = bundle.new_session();
    session.set_recorder(registry.clone());
    let mut probs = Vec::new();
    let mut regressions = 0u64;
    for t in 0..3 * w as u64 {
        let (a, g) = sample(t);
        let out = session.push_at(&bundle, t, a, g, &mut probs);
        assert!(!out.regressed, "in-order ticks must not count");
        if t == 50 {
            // Re-delivery of ticks 30..40 (behind the grid).
            for stale in 30..40 {
                let (a, g) = sample(stale);
                let out = session.push_at(&bundle, stale, a, g, &mut probs);
                assert!(out.regressed, "stale tick must be flagged");
                assert_eq!(out.windows, 0, "stale tick must not classify");
                regressions += 1;
            }
        }
    }

    // Counted as its own recoverable condition...
    let status = session.guard_status();
    assert_eq!(status.ts_regression, regressions);
    // ...that is *not* a fault: re-delivery is normal transport
    // behaviour and must not burn the /healthz fault-rate budget.
    assert_eq!(status.faults(), 0);
    // ...and the stream recovered bit-identically: the stale ticks
    // were dropped, not smeared into the gap-bridging math.
    let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&probs), bits(&clean_probs));

    // Scrape-visible like every other guard counter.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters.get("guard.ts_regression").copied(),
        Some(regressions)
    );
    let text = prometheus::render(&snap, "prefall");
    assert!(
        text.contains("prefall_guard_ts_regression_total"),
        "ts_regression missing from /metrics:\n{text}"
    );
}

#[test]
fn unhardened_path_fails_the_acceptance_plan() {
    let falls = fall_trials();
    let plan = acceptance_plan();
    let mut det = detector(GuardConfig::disabled());
    let window = DetectorConfig::paper_400ms().pipeline.segmentation.window();

    // Failure one: the legacy path has no fault accounting at all —
    // after streaming every corrupted fall it has counted nothing, so
    // the fleet-health story (fault rate over /metrics, degraded
    // /healthz) is impossible without the guard.
    for trial in &falls {
        run_on_faulted_trial(&mut det, trial, &plan, &prefall::telemetry::NoopRecorder);
    }
    let status = det.guard_status();
    assert_eq!(status.samples, 0, "unguarded ingest counts nothing");
    assert_eq!(status.faults(), 0, "unguarded ingest sees no faults");

    // Failure two: silent blindness. Once one NaN sample reaches the
    // Butterworth IIR state, every later filtered row is NaN; the
    // max-based layers then launder NaN to a constant, input-independent
    // score. Collect the probabilities emitted after a window has fully
    // filled with post-poison rows: they are frozen.
    let mut frozen_probs: Vec<f32> = Vec::new();
    'trials: for trial in &falls {
        det.reset();
        let mut poisoned_at: Option<usize> = None;
        let mut probs: Vec<f32> = Vec::new();
        for (i, ev) in plan.stream(trial).enumerate() {
            match ev {
                SampleEvent::Sample { accel, gyro } => {
                    if poisoned_at.is_none()
                        && accel.iter().chain(gyro.iter()).any(|v| !v.is_finite())
                    {
                        poisoned_at = Some(i);
                    }
                    if let Some(p) = det.push_sample(accel, gyro) {
                        if poisoned_at.is_some_and(|s| i >= s + window) {
                            probs.push(p);
                        }
                    }
                }
                SampleEvent::Dropped => {
                    // The legacy path cannot even represent a missing
                    // tick: push_missing is a documented no-op that
                    // desynchronises the stream from the sensor clock.
                    assert!(det.push_missing().is_none());
                }
            }
        }
        if probs.len() >= 2 {
            frozen_probs = probs;
            break 'trials;
        }
    }
    assert!(
        frozen_probs.len() >= 2,
        "at least one fall must emit several post-poison windows"
    );
    assert!(
        frozen_probs.windows(2).all(|w| w[0] == w[1]),
        "unguarded detector should be frozen at one constant score, got {frozen_probs:?}"
    );
    // And the score is finite — the failure is invisible to any
    // output-side non-finite check, which is why validation must happen
    // at the ingest boundary.
    assert!(frozen_probs[0].is_finite());
}
