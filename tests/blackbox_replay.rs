//! Acceptance tests for the flight recorder: every incident the
//! recorder dumps — on clean trials, under injected sensor faults, and
//! in degraded modes — survives a serialize → deserialize → replay
//! round trip with a **bit-exact** score trajectory, and dumps whose
//! ring wrapped refuse to replay rather than replaying wrongly.

use prefall::blackbox::{
    armed_detector_from_bundle, replay, BlackboxError, FlightConfig, IncidentDump, IncidentKind,
};
use prefall::core::detector::{run_on_trial, DetectorConfig, GuardConfig};
use prefall::core::models::ModelKind;
use prefall::core::persist::DetectorBundle;
use prefall::dsp::stats::Normalizer;
use prefall::faults::{run_on_faulted_trial, FaultPlan};
use prefall::imu::dataset::Dataset;
use prefall::imu::trial::Trial;
use prefall::obsd::IncidentSource;
use prefall::telemetry::NoopRecorder;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Serialized untrained-but-seeded detector bundle: enough to exercise
/// the full ingest → fusion → filter → window → engine path
/// deterministically, which is all bit-exact replay cares about.
fn bundle_blob() -> &'static [u8] {
    static BLOB: OnceLock<Vec<u8>> = OnceLock::new();
    BLOB.get_or_init(|| {
        let cfg = DetectorConfig::paper_400ms();
        let w = cfg.pipeline.segmentation.window();
        let mut bundle = DetectorBundle {
            model: ModelKind::ProposedCnn,
            window: w,
            channels: 9,
            init_seed: 7,
            pipeline: cfg.pipeline,
            normalizer: Normalizer::identity(9),
            network: ModelKind::ProposedCnn.build(w, 9, 7).unwrap(),
        };
        bundle.to_bytes()
    })
}

fn trials() -> &'static [Trial] {
    static DS: OnceLock<Vec<Trial>> = OnceLock::new();
    DS.get_or_init(|| Dataset::combined_scaled(2, 2, 7).unwrap().trials().to_vec())
}

/// Rings big enough that no test trial ever wraps them.
fn roomy() -> FlightConfig {
    FlightConfig {
        ring_samples: 20_000,
        ring_windows: 2_000,
        max_incidents: 64,
    }
}

/// Round-trips a dump through bytes and asserts the replay of the
/// decoded copy is bit-exact.
fn assert_replays_bit_exact(dump: &IncidentDump) {
    let decoded = IncidentDump::from_bytes(&dump.to_bytes()).expect("round trip");
    assert_eq!(decoded.to_bytes(), dump.to_bytes(), "encode is stable");
    let report = replay(&decoded).expect("replayable");
    assert!(
        report.bit_exact,
        "{} diverged: {:?}",
        dump.id, report.divergence
    );
    assert!(report.trigger_match, "{}: trigger flags diverged", dump.id);
    assert!(
        report.windows_compared > 0,
        "{}: no windows compared",
        dump.id
    );
    assert_eq!(report.samples_fed, dump.samples.len());
}

#[test]
fn clean_trials_dump_and_replay_bit_exact() {
    let (mut det, flight) =
        armed_detector_from_bundle(bundle_blob(), 0.5, 1, GuardConfig::default(), roomy()).unwrap();
    for trial in trials() {
        run_on_trial(&mut det, trial);
    }
    // Every fall trial ends in either a trigger dump or a missed-fall
    // dump, so the recorder cannot be empty.
    let incidents = flight.incidents();
    assert!(!incidents.is_empty(), "fall trials must produce incidents");
    let mut kinds = Vec::new();
    for dump in &incidents {
        assert!(!dump.truncated, "roomy rings must not truncate");
        let trial = dump.trial.expect("trial meta patched in at trial end");
        if dump.kind == IncidentKind::MissedFall {
            assert!(trial.is_fall, "missed-fall dumps only exist for falls");
            assert!(dump.triggered_at.is_none());
        }
        assert!(
            dump.windows.iter().any(|w| w.n_branch > 0),
            "float engine windows must carry per-branch attribution"
        );
        assert_replays_bit_exact(dump);
        kinds.push(dump.kind);
    }
    // The untrained seeded net triggers on some trials and misses
    // others; both forensic paths must have been exercised.
    assert!(
        kinds.contains(&IncidentKind::Trigger) || kinds.contains(&IncidentKind::MissedFall),
        "expected trigger or missed-fall incidents, got {kinds:?}"
    );
}

#[test]
fn trigger_dumps_carry_lead_time_and_attribution() {
    let (mut det, flight) =
        armed_detector_from_bundle(bundle_blob(), 0.5, 1, GuardConfig::default(), roomy()).unwrap();
    let mut any_trigger = false;
    for trial in trials() {
        let outcome = run_on_trial(&mut det, trial);
        if let (Some(dump), Some(t)) = (flight.latest(), outcome.triggered_at) {
            if dump.kind == IncidentKind::Trigger {
                any_trigger = true;
                assert_eq!(
                    dump.triggered_at,
                    Some(t as u64 + 1),
                    "patched trigger tick must match the outcome"
                );
                assert_eq!(dump.lead_time_ms, outcome.lead_time_ms);
                // The decision window is in the trace, flagged.
                assert!(dump.windows.iter().any(|w| w.decision()));
            }
        }
    }
    assert!(any_trigger, "threshold 0.5 must trigger on some trial");
}

#[test]
fn faulted_and_degraded_trials_replay_bit_exact() {
    let (mut det, flight) =
        armed_detector_from_bundle(bundle_blob(), 0.5, 1, GuardConfig::default(), roomy()).unwrap();
    // Dropout + NaN bursts (the robustness acceptance plan), then the
    // kitchen sink (stuck axes, saturation, outages) to push the guard
    // into degraded modes.
    for plan in [
        FaultPlan::dropout_nan(7, 0.05, 0.01, 5),
        FaultPlan::kitchen_sink(9),
    ] {
        for trial in trials().iter().filter(|t| t.is_fall()) {
            run_on_faulted_trial(&mut det, trial, &plan, &NoopRecorder);
        }
    }
    let incidents = flight.incidents();
    assert!(!incidents.is_empty());
    let mut saw_missing = false;
    let mut saw_degraded = false;
    for dump in &incidents {
        saw_missing |= dump.samples.iter().any(|s| s.missing());
        saw_degraded |= dump
            .samples
            .iter()
            .any(|s| s.flags & !prefall::blackbox::SampleRecord::MISSING != 0);
        assert_replays_bit_exact(dump);
    }
    assert!(saw_missing, "fault plans must have dropped samples");
    assert!(saw_degraded, "kitchen sink must have forced degraded modes");
}

#[test]
fn wrapped_rings_refuse_bit_exact_replay() {
    let tiny = FlightConfig {
        ring_samples: 64,
        ring_windows: 8,
        max_incidents: 4,
    };
    let (mut det, flight) =
        armed_detector_from_bundle(bundle_blob(), 0.5, 1, GuardConfig::default(), tiny).unwrap();
    let trial = &trials()[0];
    run_on_trial(&mut det, trial);
    let dump = flight.dump_now("operator snapshot");
    assert!(
        dump.truncated,
        "a {}-sample trial must wrap a 64-slot ring",
        trial.len()
    );
    assert_eq!(replay(&dump), Err(BlackboxError::Truncated));
}

#[test]
fn incident_source_serves_replayable_dumps() {
    let (mut det, flight) =
        armed_detector_from_bundle(bundle_blob(), 0.5, 1, GuardConfig::default(), roomy()).unwrap();
    for trial in trials().iter().filter(|t| t.is_fall()).take(2) {
        run_on_trial(&mut det, trial);
    }
    let listing = flight.list_json();
    let count = listing.get("count").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(count as usize, flight.incident_count());
    assert!(count > 0);

    // The detail document carries the full dump as hex; an analyst can
    // reconstruct and replay the incident from the HTTP response alone.
    let first_id = flight.incidents()[0].id.clone();
    let doc = flight.get_json(&first_id).expect("incident served");
    let hex = doc.get("dump_hex").and_then(|v| v.as_str()).unwrap();
    let decoded = IncidentDump::from_hex(hex).unwrap();
    assert_replays_bit_exact(&decoded);
    assert!(flight.get_json("inc-nope").is_none());

    // A /healthz degradation rising edge takes a dump automatically.
    let before = flight.incident_count();
    flight.on_health_status(true, &prefall::telemetry::JsonValue::Null);
    flight.on_health_status(true, &prefall::telemetry::JsonValue::Null);
    assert_eq!(flight.incident_count(), before + 1, "rising edge only");
    assert_eq!(flight.latest().unwrap().kind, IncidentKind::HealthDegraded);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Replay stays bit-exact for arbitrary dropout/NaN-burst fault
    /// plans: whatever the faults did to the stream, the dump captures
    /// the raw inputs faithfully enough to reproduce every score.
    #[test]
    fn replay_is_bit_exact_under_random_fault_plans(
        seed in 0u64..1000,
        dropout in 0.0f64..0.15,
        burst in 0.0f64..0.04,
    ) {
        let (mut det, flight) = armed_detector_from_bundle(
            bundle_blob(), 0.5, 1, GuardConfig::default(), roomy()).unwrap();
        let plan = FaultPlan::dropout_nan(seed, dropout, burst, 5);
        let trial = trials().iter().find(|t| t.is_fall()).unwrap();
        run_on_faulted_trial(&mut det, trial, &plan, &NoopRecorder);
        let dump = flight.latest().unwrap_or_else(|| flight.dump_now("proptest"));
        let report = replay(&IncidentDump::from_bytes(&dump.to_bytes()).unwrap()).unwrap();
        prop_assert!(report.bit_exact, "seed {} diverged: {:?}", seed, report.divergence);
        prop_assert!(report.trigger_match);
    }
}
