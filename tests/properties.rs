//! Property-based tests over the core invariants, spanning crates.

use prefall::dsp::butterworth::Butterworth;
use prefall::dsp::interp::{resample_linear, sample_catmull_rom, sample_linear};
use prefall::dsp::rotation::{Mat3, Vec3};
use prefall::dsp::segment::{Overlap, Segmentation};
use prefall::dsp::stats::Normalizer;
use prefall::nn::loss::{initial_output_bias, sigmoid, WeightedBce};
use prefall::nn::quant::{apply_multiplier, quantize_multiplier, ActQuant};
use prefall_core::augment::{time_warp_segment, window_warp_segment};
use prefall_imu::rng::GenRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid Butterworth design is stable, has unity DC gain and
    /// hits -3 dB at its cutoff.
    #[test]
    fn butterworth_designs_are_well_behaved(
        order in 1usize..8,
        cutoff in 0.5f64..45.0,
    ) {
        let f = Butterworth::lowpass(order, cutoff, 100.0).unwrap().into_filter();
        prop_assert!(f.is_stable());
        prop_assert!((f.magnitude_at(0.0, 100.0) - 1.0).abs() < 1e-9);
        let g = f.magnitude_at(cutoff, 100.0);
        prop_assert!((g - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }

    /// Window iteration never overruns the signal and respects the hop.
    #[test]
    fn segmentation_windows_are_in_bounds(
        window in 1usize..100,
        len in 0usize..1000,
        overlap_idx in 0usize..4,
    ) {
        let seg = Segmentation::new(window, Overlap::ALL[overlap_idx]).unwrap();
        let mut prev_start = None;
        let mut count = 0;
        for r in seg.windows(len) {
            prop_assert_eq!(r.len(), window);
            prop_assert!(r.end <= len);
            if let Some(p) = prev_start {
                prop_assert_eq!(r.start - p, seg.hop());
            }
            prev_start = Some(r.start);
            count += 1;
        }
        prop_assert_eq!(count, seg.num_windows(len));
    }

    /// Rodrigues rotations preserve norms and compose into proper
    /// rotations.
    #[test]
    fn rotations_preserve_geometry(
        ax in -1.0f64..1.0, ay in -1.0f64..1.0, az in -1.0f64..1.0,
        angle in -6.0f64..6.0,
        vx in -5.0f64..5.0, vy in -5.0f64..5.0, vz in -5.0f64..5.0,
    ) {
        let axis = Vec3::new(ax, ay, az);
        prop_assume!(axis.norm() > 1e-3);
        let r = Mat3::from_axis_angle(axis, angle).unwrap();
        prop_assert!(r.is_rotation(1e-9));
        let v = Vec3::new(vx, vy, vz);
        prop_assert!((r.apply(v).norm() - v.norm()).abs() < 1e-9);
    }

    /// Interpolation stays within the convex hull for linear sampling
    /// and is exact at integer knots for both schemes.
    #[test]
    fn interpolation_knots_are_exact(xs in prop::collection::vec(-10.0f32..10.0, 2..50)) {
        for (i, &x) in xs.iter().enumerate() {
            let l = sample_linear(&xs, i as f64);
            let c = sample_catmull_rom(&xs, i as f64);
            prop_assert!((l - x).abs() < 1e-4);
            prop_assert!((c - x).abs() < 1e-3);
        }
        let up = resample_linear(&xs, xs.len() * 3);
        let (lo, hi) = xs.iter().fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for &v in &up {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    /// The normaliser is an affine bijection: apply then invert by hand.
    #[test]
    fn normalizer_is_invertible(
        rows in prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 3), 2..20),
    ) {
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let norm = Normalizer::fit(std::slice::from_ref(&flat), 3);
        let z = norm.apply(&flat);
        for (i, (&orig, &zv)) in flat.iter().zip(&z).enumerate() {
            let ch = i % 3;
            let back = zv * norm.stds()[ch] + norm.means()[ch];
            prop_assert!((back - orig).abs() < 1e-2, "row {i}: {back} vs {orig}");
        }
    }

    /// BCE loss is non-negative, zero only for perfect confident
    /// predictions, and its gradient is bounded by the class weight.
    #[test]
    fn bce_loss_properties(logit in -30.0f32..30.0, w_pos in 0.1f32..20.0, w_neg in 0.1f32..20.0) {
        let loss = WeightedBce::new(w_pos, w_neg);
        for y in [0.0f32, 1.0] {
            let l = loss.loss(logit, y);
            prop_assert!(l >= 0.0);
            let g = loss.dloss_dlogit(logit, y);
            let w = if y > 0.5 { w_pos } else { w_neg };
            prop_assert!(g.abs() <= w + 1e-4);
        }
    }

    /// The output-bias initialisation inverts the sigmoid prior.
    #[test]
    fn bias_init_matches_prior(p in 0.001f64..0.999) {
        let b = initial_output_bias(p);
        prop_assert!((f64::from(sigmoid(b)) - p).abs() < 1e-3);
    }

    /// Activation quantization round-trips within half a quantum and
    /// always represents zero exactly.
    #[test]
    fn act_quant_roundtrip(min in -50.0f32..0.0, span in 0.001f32..100.0, x in -60.0f32..60.0) {
        let q = ActQuant::from_range(min, min + span);
        prop_assert_eq!(q.dequantize(q.quantize(0.0)), 0.0);
        let clamped = x.clamp(min.min(0.0), (min + span).max(0.0));
        let back = q.dequantize(q.quantize(clamped));
        prop_assert!((back - clamped).abs() <= q.scale * 0.51 + 1e-6);
    }

    /// The fixed-point multiplier decomposition reconstructs the real
    /// multiplier and scales accumulators accurately.
    #[test]
    fn fixed_point_multiplier_accurate(m in 1e-5f64..4.0, acc in -100_000i32..100_000) {
        let (m0, shift) = quantize_multiplier(m);
        let approx = apply_multiplier(acc, m0, shift);
        let exact = f64::from(acc) * m;
        prop_assert!((f64::from(approx) - exact).abs() <= exact.abs() * 1e-4 + 1.0);
    }

    /// Augmentations preserve segment shape and produce finite values.
    #[test]
    fn augmentations_preserve_shape(seed in 0u64..1000, t in 8usize..60) {
        let channels = 9;
        let seg: Vec<f32> = (0..t * channels).map(|i| ((i as f32) * 0.17).sin()).collect();
        let mut rng = GenRng::seed_from_u64(seed);
        let a = time_warp_segment(&seg, channels, 0.25, &mut rng);
        let b = window_warp_segment(&seg, channels, &mut rng);
        prop_assert_eq!(a.len(), seg.len());
        prop_assert_eq!(b.len(), seg.len());
        prop_assert!(a.iter().chain(&b).all(|v| v.is_finite()));
    }
}

/// A hardened streaming detector with an untrained but seeded network
/// and identity normalisation — enough to exercise the full ingest →
/// filter → window → engine path without a training run.
fn guarded_detector(seed: u64) -> prefall::core::detector::StreamingDetector {
    use prefall::core::detector::{DetectorConfig, StreamingDetector};
    use prefall::core::models::ModelKind;
    let cfg = DetectorConfig::paper_400ms();
    let w = cfg.pipeline.segmentation.window();
    let net = ModelKind::ProposedCnn.build(w, 9, seed).unwrap();
    StreamingDetector::new(net, Normalizer::identity(9), cfg).unwrap()
}

/// One sensor reading that may be garbage: finite in-range, finite
/// out-of-range, or non-finite.
fn hostile_value() -> impl Strategy<Value = f32> {
    prop_oneof![
        8 => -20.0f32..20.0,
        1 => Just(f32::NAN),
        1 => Just(f32::INFINITY),
        1 => Just(f32::NEG_INFINITY),
        1 => Just(f32::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The hardened ingest invariant: no matter what the sensor bus
    /// delivers — NaN, ±Inf, absurd magnitudes — `push_sample` never
    /// emits a non-finite probability, and every probability stays a
    /// valid sigmoid output in [0, 1].
    #[test]
    fn push_sample_never_emits_nonfinite(
        seed in 0u64..100,
        samples in prop::collection::vec(
            (hostile_value(), hostile_value(), hostile_value(),
             hostile_value(), hostile_value(), hostile_value()),
            100..220),
    ) {
        let mut det = guarded_detector(seed);
        for &(ax, ay, az, gx, gy, gz) in &samples {
            if let Some(p) = det.push_sample([ax, ay, az], [gx, gy, gz]) {
                prop_assert!(p.is_finite(), "non-finite probability {p}");
                prop_assert!((0.0..=1.0).contains(&p), "out-of-range probability {p}");
            }
        }
        // The guard saw every tick; its books must balance.
        prop_assert_eq!(det.guard_status().samples, samples.len() as u64);
    }

    /// `reset()` fully recovers a detector poisoned by a NaN burst:
    /// after the reset it produces bit-identical probabilities to a
    /// same-seed detector that never saw the burst (seeded builds are
    /// deterministic, so any divergence would be leaked filter or
    /// fusion state).
    #[test]
    fn reset_recovers_from_nan_burst(seed in 0u64..100, burst in 5usize..40) {
        let mut poisoned = guarded_detector(seed);
        let mut fresh = guarded_detector(seed);
        for _ in 0..burst {
            let _ = poisoned.push_sample([f32::NAN; 3], [f32::NAN; 3]);
        }
        for i in 0..60u32 {
            let x = (i as f32 * 0.37).sin() * 0.05;
            let _ = poisoned.push_sample([x, -x, 1.0 + x], [x, 0.1, -x]);
        }
        poisoned.reset();
        for i in 0..120u32 {
            let x = (i as f32 * 0.23).sin() * 0.1;
            let accel = [x, 0.02 - x, 1.0 - x * 0.5];
            let gyro = [0.3 * x, -0.2 * x, x];
            let a = poisoned.push_sample(accel, gyro);
            let b = fresh.push_sample(accel, gyro);
            prop_assert_eq!(a, b, "divergence at sample {}", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated trials always satisfy the label invariants regardless
    /// of seed: labels are ordered, in-range, and fall trials expose a
    /// usable range only when long enough.
    #[test]
    fn generated_trials_have_consistent_labels(seed in 0u64..200) {
        let ds = prefall::imu::dataset::Dataset::combined_scaled(0, 1, seed).unwrap();
        for t in ds.trials() {
            match (t.fall_start(), t.impact()) {
                (Some(fs), Some(im)) => {
                    prop_assert!(fs < im);
                    prop_assert!(im < t.len());
                    if let Some(r) = t.usable_fall_range() {
                        prop_assert_eq!(r.start, fs);
                        prop_assert!(r.end <= im);
                    }
                }
                (None, None) => {}
                other => prop_assert!(false, "half-labelled trial: {other:?}"),
            }
            for ch in t.channels() {
                prop_assert_eq!(ch.len(), t.len());
            }
        }
    }
}
