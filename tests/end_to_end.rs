//! Cross-crate integration tests: the full paper pipeline from synthetic
//! acquisition to quantized deployment.

use prefall::core::cv::{subject_folds, train_on_sets, CvConfig};
use prefall::core::detector::{run_on_trial, DetectorConfig, StreamingDetector};
use prefall::core::events::EventReport;
use prefall::core::experiment::{Experiment, ExperimentConfig};
use prefall::core::metrics::Confusion;
use prefall::core::models::ModelKind;
use prefall::core::pipeline::{Pipeline, PipelineConfig};
use prefall::imu::dataset::Dataset;
use prefall::mcu::deploy::deploy;
use prefall::mcu::target::McuTarget;
use prefall::nn::quant::QuantizedNetwork;
use prefall_core::augment::augment_positives;
use prefall_dsp::segment::Overlap;

/// One shared trained artifact for the expensive tests.
struct Trained {
    pipeline: Pipeline,
    dataset: Dataset,
    net: prefall::nn::network::Network,
    normalizer: prefall_dsp::stats::Normalizer,
    test_subjects: Vec<prefall::imu::subject::SubjectId>,
    predictions: Vec<(prefall::core::pipeline::SegmentMeta, f32)>,
    test_labels: Vec<f32>,
}

fn train_fixture() -> Trained {
    let dataset = Dataset::combined_scaled(2, 3, 404).expect("dataset");
    let pipeline = Pipeline::new(PipelineConfig::paper(200.0, Overlap::Half)).expect("pipeline");
    let full = pipeline.segment_set(dataset.trials());
    let splits = subject_folds(&dataset.subject_ids(), 2, 1, 9).expect("folds");
    let split = splits[0].clone();

    let mut cfg = CvConfig::fast();
    cfg.epochs = 6;
    let train_set = full.filter_subjects(&split.train);
    let test_set = full.filter_subjects(&split.test);
    let test_labels = test_set.y.clone();
    let (net, predictions, _) = train_on_sets(
        &pipeline,
        train_set.clone(),
        full.filter_subjects(&split.val),
        test_set,
        ModelKind::ProposedCnn,
        &cfg,
        77,
    )
    .expect("training");

    let mut aug_train = train_set;
    augment_positives(&mut aug_train, cfg.augment_factor, 77 ^ 0xAA99);
    let normalizer = pipeline.fit_normalizer(&aug_train);

    Trained {
        pipeline,
        dataset,
        net,
        normalizer,
        test_subjects: split.test,
        predictions,
        test_labels,
    }
}

#[test]
fn full_method_learns_and_generalises_to_unseen_subjects() {
    let t = train_fixture();
    let probs: Vec<f32> = t.predictions.iter().map(|(_, p)| *p).collect();
    let c = Confusion::from_probs(&probs, &t.test_labels, 0.5);
    assert!(c.total() > 500, "enough test segments");
    assert!(c.accuracy() > 0.85, "accuracy {}", c.accuracy());
    assert!(
        c.recall_pos() > 0.5,
        "positive recall {} — the minority class must be learned",
        c.recall_pos()
    );

    // Event level, at the paper's FP-minimising operating point: most
    // unseen falls detected, few ADL activations.
    let events = EventReport::from_predictions(&t.predictions, 0.99);
    assert!(
        events.overall_fall_miss_pct() < 50.0,
        "miss {}%",
        events.overall_fall_miss_pct()
    );
    assert!(
        events.overall_adl_fp_pct() < 30.0,
        "fp {}%",
        events.overall_adl_fp_pct()
    );
    // Raising the threshold must never increase false activations.
    let loose = EventReport::from_predictions(&t.predictions, 0.5);
    assert!(events.overall_adl_fp_pct() <= loose.overall_adl_fp_pct());
}

#[test]
fn streaming_detector_agrees_with_offline_pipeline_on_events() {
    let t = train_fixture();
    let mut detector = StreamingDetector::new(
        t.net,
        t.normalizer,
        DetectorConfig {
            pipeline: *t.pipeline.config(),
            threshold: 0.5,
            consecutive: 1,
            guard: prefall::core::detector::GuardConfig::default(),
        },
    )
    .expect("detector");

    let mut falls = 0usize;
    let mut triggered = 0usize;
    let mut protected = 0usize;
    for trial in t
        .dataset
        .trials()
        .iter()
        .filter(|tr| t.test_subjects.contains(&tr.subject) && tr.is_fall())
    {
        falls += 1;
        let outcome = run_on_trial(&mut detector, trial);
        if let Some(at) = outcome.triggered_at {
            triggered += 1;
            // A trigger exists; lead time must be consistent.
            let lead = outcome.lead_time_ms.expect("fall has impact");
            assert!((lead - (trial.impact().unwrap() as f64 - at as f64) * 10.0).abs() < 1e-6);
            if outcome.protected == Some(true) {
                protected += 1;
                assert!(lead >= 150.0, "protected requires ≥150 ms lead, got {lead}");
            }
        }
    }
    assert!(falls > 20);
    assert!(
        triggered as f64 >= falls as f64 * 0.4,
        "streaming detector triggered on {triggered}/{falls} falls"
    );
    assert!(protected > 0, "at least some wearers protected");
}

#[test]
fn quantized_model_deploys_and_matches_float() {
    let t = train_fixture();
    let mut net = t.net;
    // Calibrate on normalised training-like data: reuse test segments.
    let full = t.pipeline.segment_set(t.dataset.trials());
    let mut some = full.filter_subjects(&t.test_subjects);
    t.pipeline.normalize(&mut some, &t.normalizer);
    let calib: Vec<Vec<f32>> = some.x.iter().take(128).cloned().collect();

    let qnet = QuantizedNetwork::from_network(&mut net, &calib).expect("quantize");
    let mut agree = 0usize;
    for x in &calib {
        let f = prefall::nn::loss::sigmoid(net.forward(x)[0]);
        let q = qnet.predict_proba(x);
        if (f >= 0.5) == (q >= 0.5) {
            agree += 1;
        }
    }
    assert!(
        agree as f64 >= calib.len() as f64 * 0.97,
        "float/int8 agreement {agree}/{}",
        calib.len()
    );

    // The 200 ms model is smaller than the paper's 400 ms one and must
    // fit the STM32F722 comfortably.
    let d = deploy(&qnet, &McuTarget::stm32f722(), 20, 9).expect("fits");
    assert!(d.model_flash_bytes < 67 * 1024);
    assert!(d.inference_ms < 4.0);
    assert!(d.meets_deadline(100.0), "100 ms hop at 200 ms / 50%");
}

#[test]
fn experiment_report_is_reproducible() {
    let cfg = ExperimentConfig::fast();
    let a = Experiment::new(cfg.clone()).run().expect("run a");
    let b = Experiment::new(cfg).run().expect("run b");
    let ca = a.cell(ModelKind::ProposedCnn, 200.0).unwrap();
    let cb = b.cell(ModelKind::ProposedCnn, 200.0).unwrap();
    assert_eq!(ca.metrics, cb.metrics, "same seeds → identical metrics");
    assert_eq!(ca.cv.all_predictions().len(), cb.cv.all_predictions().len());
}

#[test]
fn airbag_budget_ablation_makes_the_task_easier() {
    // Train with and without the 150 ms truncation on the same data;
    // the conventional labelling (budget 0) includes the most
    // discriminative final samples, so its segment scores should not be
    // systematically worse.
    let dataset = Dataset::combined_scaled(2, 2, 505).expect("dataset");
    let run = |budget: usize| {
        let mut pc = PipelineConfig::paper(200.0, Overlap::Half);
        pc.airbag_budget_samples = budget;
        let pipeline = Pipeline::new(pc).expect("pipeline");
        let mut cfg = CvConfig::fast();
        cfg.epochs = 5;
        prefall::core::cv::run_cv(&dataset, &pipeline, ModelKind::ProposedCnn, &cfg)
            .expect("cv")
            .mean
    };
    let with_budget = run(15);
    let without = run(0);
    // Not a strict inequality test (small data), but both must be sane
    // and the no-truncation variant should see MORE positive windows.
    assert!(with_budget.accuracy > 80.0);
    assert!(without.accuracy > 80.0);
}
